"""Ablation bench: split vs monolithic counter organisation.

Split counters pack one page's 64 line-counters into one memory line
(Figure 9); monolithic 64-bit counters pack only 8. CWC's reach shrinks
8x under the monolithic layout, so SuperMem must coalesce more (and issue
fewer NVM writes) with split counters.
"""

from repro.experiments.ablations import counter_organization_ablation, drain_policy_ablation


def test_counter_organization(run_once, benchmark):
    rows = run_once(counter_organization_ablation, "smoke")
    by_label = {r.label: r for r in rows}
    assert by_label["split"].surviving_writes <= by_label["monolithic"].surviving_writes
    benchmark.extra_info["rows"] = {
        r.label: {"latency_ns": round(r.avg_latency_ns), "writes": r.surviving_writes}
        for r in rows
    }


def test_drain_policy(run_once, benchmark):
    """The deferred-counter drain must coalesce more than eager FR-FCFS."""
    rows = run_once(drain_policy_ablation, "smoke")
    by_label = {r.label: r for r in rows}
    assert by_label["defer-counters"].coalesced >= by_label["frfcfs"].coalesced
    benchmark.extra_info["rows"] = {
        r.label: {"latency_ns": round(r.avg_latency_ns), "coalesced": r.coalesced}
        for r in rows
    }
