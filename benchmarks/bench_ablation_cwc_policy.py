"""Ablation bench: CWC removal policy (Section 3.4.3's design argument).

The paper removes the *older* coalesced counter entry and appends the new
one at the tail, arguing the delay merges more writes than updating the
older entry in place. The check: remove-older must coalesce at least as
many counter writes as merge-in-place.
"""

from repro.experiments.ablations import cwc_policy_ablation


def test_cwc_policy(run_once, benchmark):
    rows = run_once(cwc_policy_ablation, "smoke")
    by_label = {r.label: r for r in rows}
    remove = by_label["remove-older"]
    merge = by_label["merge-in-place"]
    assert remove.coalesced >= merge.coalesced
    assert remove.surviving_writes <= merge.surviving_writes * 1.05
    benchmark.extra_info["rows"] = {
        r.label: {"latency_ns": round(r.avg_latency_ns), "writes": r.surviving_writes,
                  "coalesced": r.coalesced}
        for r in rows
    }
