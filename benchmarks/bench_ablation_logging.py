"""Ablation bench: undo vs redo logging under SuperMem.

Both durable-transaction protocols run on the same secure memory system.
Redo skips the prepare-stage old-data reads (it logs the new data it
already holds) at the cost of one extra header flush (the commit record);
on a write-bound encrypted NVM the two end up with nearly identical
traffic, confirming the paper's choice to analyse undo logging without
loss of generality (Table 1).
"""

import dataclasses

from repro.common.config import MemoryConfig, SimConfig
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.sim.engine import CoreEngine
from repro.common.stats import Stats
from repro.txn.log import LogRegion
from repro.txn.persist import TraceDomain
from repro.txn.transaction import TransactionManager

N_TXNS = 60
DATA_BASE = 64 * 4096


def run_mode(mode: str):
    domain = TraceDomain()
    manager = TransactionManager(
        domain, LogRegion(0, 16 * 4096), logging_mode=mode
    )
    for i in range(N_TXNS):
        addr = DATA_BASE + (i % 16) * 1024
        manager.run([(addr, 1024, None)])
    ops = domain.take_ops()

    cfg = dataclasses.replace(
        scheme_config(Scheme.SUPERMEM, SimConfig(memory=MemoryConfig(capacity=8 << 20))),
        functional=False,
    )
    stats = Stats()
    system = SecureMemorySystem(cfg, stats=stats)
    engine = CoreEngine(0, cfg, system, stats)
    engine.run(ops)
    system.drain()
    avg_latency = sum(engine.txn_latencies) / len(engine.txn_latencies)
    writes = stats.get("wq", "appends") - stats.get("wq", "cwc_coalesced")
    return avg_latency, int(writes)


def test_undo_vs_redo(run_once, benchmark):
    def run_both():
        return {mode: run_mode(mode) for mode in ("undo", "redo")}

    results = run_once(run_both)
    undo_latency, undo_writes = results["undo"]
    redo_latency, redo_writes = results["redo"]
    # The protocols must be within ~20 % of each other on both axes.
    assert 0.8 < redo_latency / undo_latency < 1.25
    assert 0.8 < redo_writes / undo_writes < 1.25
    benchmark.extra_info["results"] = {
        mode: {"latency_ns": round(lat), "writes": writes}
        for mode, (lat, writes) in results.items()
    }
