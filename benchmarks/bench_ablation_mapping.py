"""Ablation bench: bank-interleaving policy under SuperMem.

DESIGN.md commits to page interleaving (one page per bank, contiguous
allocations spanning adjacent banks) as the model consistent with the
paper's Section 3.3 premise and with split-counter physics. This bench
measures the alternatives:

* ``line`` interleaving maximises intra-burst bank parallelism (an
  idealisation — a page's counter line has no single home bank);
* ``contiguous`` slabs serialise a single program onto one bank — the
  strawman that shows why interleaving exists.
"""

import dataclasses

from repro.common.config import MemoryConfig, SimConfig
from repro.core.schemes import Scheme, scheme_config
from repro.sim.simulator import Simulator
from repro.workloads.generator import generate_trace

MAPPINGS = ("page", "line", "contiguous")


def test_bank_mapping(run_once, benchmark):
    def run_all():
        trace = generate_trace(
            "array", n_ops=60, request_size=1024, footprint=1 << 20, seed=1
        )
        results = {}
        for mapping in MAPPINGS:
            cfg = dataclasses.replace(
                scheme_config(
                    Scheme.SUPERMEM,
                    SimConfig(
                        memory=MemoryConfig(capacity=32 << 20, bank_mapping=mapping)
                    ),
                ),
                functional=False,
            )
            result = Simulator(cfg).run(list(trace.ops))
            results[mapping] = result.avg_txn_latency_ns
        return results

    latency = run_once(run_all)
    # Contiguous slabs must be the worst: one program, one busy bank.
    assert latency["contiguous"] >= max(latency["page"], latency["line"]) * 0.99
    # The chosen page interleaving must be within 2x of the idealised
    # line interleaving (they bound the design space).
    assert latency["page"] <= 2.0 * latency["line"]
    benchmark.extra_info["latency_ns"] = {m: round(v) for m, v in latency.items()}
