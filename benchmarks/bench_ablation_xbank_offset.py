"""Ablation bench: XBank offset sweep (Section 3.3's N/2 argument).

The paper stores the counter of bank X in bank (X + N/2): the largest
possible offset keeps an application's contiguous (adjacent-bank) pages
from colliding with their own counter writes. The check: the paper's
offset (4 of 8) performs at least as well as the worst small offset.
"""

from repro.experiments.ablations import xbank_offset_sweep


def test_xbank_offset(run_once, benchmark):
    rows = run_once(xbank_offset_sweep, "smoke")
    latency = {r.label: r.avg_latency_ns for r in rows}
    half_ring = latency["offset=4"]
    worst = max(latency.values())
    assert half_ring <= worst * 1.001
    benchmark.extra_info["latency_by_offset"] = {
        label: round(v) for label, v in latency.items()
    }
