"""Benchmark + shape check for Figure 13 (single-core txn latency).

One bench per request size, mirroring Figures 13a/13b/13c. Shape checks:
WT is 1.5-3.2x Unsec, SuperMem is within 15 % of the ideal WB, and both
CWC and XBank individually beat WT.
"""

import pytest

from repro.core.schemes import Scheme
from repro.experiments import fig13


@pytest.mark.parametrize("request_size", [256, 1024, 4096])
def test_fig13_latency(run_once, benchmark, request_size):
    points = run_once(fig13.run, "smoke", (request_size,))
    by_cell = {(p.workload, p.scheme): p.normalized for p in points}
    workloads = {p.workload for p in points}

    for workload in workloads:
        wt = by_cell[(workload, Scheme.WT_BASE)]
        # Read-heavy workloads (B-tree traversals) dilute the write
        # overhead at the smallest request size.
        floor = 1.25 if request_size == 256 else 1.4
        assert floor < wt < 3.5, f"{workload}: WT at {wt:.2f}x"
        wb = by_cell[(workload, Scheme.WB_IDEAL)]
        supermem = by_cell[(workload, Scheme.SUPERMEM)]
        assert supermem <= wb * 1.2, f"{workload}: SuperMem {supermem:.2f} vs WB {wb:.2f}"
        assert by_cell[(workload, Scheme.WT_CWC)] < wt
        assert by_cell[(workload, Scheme.WT_XBANK)] < wt

    benchmark.extra_info["normalized_latency"] = {
        f"{w}/{s.label}": round(v, 3) for (w, s), v in by_cell.items()
    }
