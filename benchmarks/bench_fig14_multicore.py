"""Benchmark + shape check for Figure 14 (multi-programmed latency).

Shape checks: WT stays the worst scheme at every program count; SuperMem
tracks the ideal WB; with 8 programs (every bank busy) CWC's benefit is at
least comparable to XBank's — the paper's Section 5.1.2 observation.
"""

from repro.core.schemes import Scheme
from repro.experiments import fig14


def test_fig14_multicore(run_once, benchmark):
    points = run_once(
        fig14.run, "smoke", (1, 4, 8), ("hashtable",), 1024
    )
    by_cell = {(p.n_programs, p.scheme): p.normalized for p in points}

    for count in (1, 4, 8):
        wt = by_cell[(count, Scheme.WT_BASE)]
        assert wt > 1.4
        assert by_cell[(count, Scheme.SUPERMEM)] <= by_cell[(count, Scheme.WB_IDEAL)] * 1.25
        assert by_cell[(count, Scheme.WT_CWC)] < wt
        assert by_cell[(count, Scheme.WT_XBANK)] < wt

    # All banks busy: coalescing >= spreading.
    assert by_cell[(8, Scheme.WT_CWC)] <= by_cell[(8, Scheme.WT_XBANK)] * 1.1

    benchmark.extra_info["normalized_latency"] = {
        f"{n}p/{s.label}": round(v, 3) for (n, s), v in by_cell.items()
    }
