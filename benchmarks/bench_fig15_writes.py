"""Benchmark + shape check for Figure 15 (NVM write requests).

Shape checks per request size: WT doubles Unsec's writes; the ideal WB
adds at most ~20 %; SuperMem's reduction vs WT grows with the request size
and reaches >= 44 % at 4 KB (paper: 45-48 %).
"""

import pytest

from repro.core.schemes import Scheme
from repro.experiments import fig15


@pytest.mark.parametrize("request_size", [256, 1024, 4096])
def test_fig15_writes(run_once, benchmark, request_size):
    points = run_once(fig15.run, "smoke", (request_size,))
    by_cell = {(p.workload, p.scheme): p.normalized for p in points}
    for workload in {p.workload for p in points}:
        assert 1.9 < by_cell[(workload, Scheme.WT_BASE)] < 2.1
        assert by_cell[(workload, Scheme.WB_IDEAL)] < 1.25
        assert by_cell[(workload, Scheme.SUPERMEM)] < by_cell[(workload, Scheme.WT_BASE)]
    benchmark.extra_info["normalized_writes"] = {
        f"{w}/{s.label}": round(v, 3) for (w, s), v in by_cell.items()
    }


def test_fig15_reduction_grows_with_size(run_once, benchmark):
    points = run_once(fig15.run, "smoke", (256, 1024, 4096))
    reductions = fig15.supermem_reduction_vs_wt(points)
    for workload in ("array",):
        series = [reductions[(workload, s)] for s in (256, 1024, 4096)]
        assert series[0] < series[2]
        assert series[2] > 0.42
    benchmark.extra_info["reductions"] = {
        f"{w}@{s}": round(v, 3) for (w, s), v in reductions.items()
    }
