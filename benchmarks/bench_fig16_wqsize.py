"""Benchmark + shape check for Figure 16 (write-queue size sensitivity).

Shape checks: the fraction of coalesced counter writes grows with the
queue length for every workload, and SuperMem's transaction latency at 32
entries is no worse than at 8 entries.
"""

from repro.experiments import fig16


def test_fig16_wq_sensitivity(run_once, benchmark):
    points = run_once(fig16.run, "smoke", (8, 16, 32, 64, 128))
    by_workload = {}
    for p in points:
        by_workload.setdefault(p.workload, {})[p.wq_entries] = p

    for workload, series in by_workload.items():
        fractions = [series[n].reduced_counter_write_fraction for n in (8, 32, 128)]
        assert fractions[0] < fractions[-1], f"{workload}: no growth"
        assert (
            series[32].supermem_latency_ns <= series[8].supermem_latency_ns * 1.02
        ), f"{workload}: longer queue must not hurt"

    benchmark.extra_info["coalesced_fraction"] = {
        f"{w}@{n}": round(series[n].reduced_counter_write_fraction, 3)
        for w, series in by_workload.items()
        for n in series
    }
