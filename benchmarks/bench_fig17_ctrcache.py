"""Benchmark + shape check for Figure 17 (counter-cache size sensitivity).

Shape checks: queue and B-tree hit rates are flat across cache sizes
(sequential/clustered accesses); the poor-locality workloads' hit rates
never degrade as the cache grows; execution time does not get worse with a
bigger cache.
"""

from repro.experiments import fig17

SIZES = (1 << 10, 16 << 10, 256 << 10)


def test_fig17_counter_cache_sensitivity(run_once, benchmark):
    points = run_once(fig17.run, "smoke", SIZES)
    by_cell = {(p.workload, p.counter_cache_size): p for p in points}

    for workload in ("queue", "btree"):
        rates = [by_cell[(workload, s)].hit_rate for s in SIZES]
        assert max(rates) - min(rates) < 0.1, f"{workload} should be size-insensitive"

    for workload in ("array", "hashtable", "rbtree"):
        small = by_cell[(workload, SIZES[0])]
        big = by_cell[(workload, SIZES[-1])]
        assert big.hit_rate >= small.hit_rate - 0.01
        assert big.total_time_ns <= small.total_time_ns * 1.02

    benchmark.extra_info["hit_rates"] = {
        f"{w}@{s}": round(by_cell[(w, s)].hit_rate, 4)
        for (w, s) in by_cell
    }
