"""Hot-path microbenchmark: per-component ns/op, fast path vs reference.

The hot-path overhaul (see docs/PERFORMANCE.md "Hot path & fidelity
modes") was profile-guided: a cProfile of the fig13 sweep attributed the
simulator's wall clock to the crypto pad generation, the per-access cache
walk, and the memory-controller scheduling scan, and each got a fast
path that is asserted bit-identical to the straight-line reference
implementation it replaced. This script measures both sides of each of
those pairs directly:

* ``xor_bytes`` — one 64 B line XOR (int-XOR fast path).
* ``aes_pad`` / ``prf_pad`` — one counter-mode pad, memoized (warm) and
  uncached (cold).
* ``cache_access`` — one L1/L2/L3 walk, flattened vs reference.
* ``engine_step`` — one full trace op through ``CoreEngine.step`` (cache
  walk + memory system + write queue), production ``hot_path=True`` vs
  the ``hot_path=False`` reference model, measured over a real workload
  replay.

It also runs one simulate_workload under cProfile and reports where the
cumulative time actually goes per top-level package component — the same
attribution that guided the optimisation; re-run it before chasing the
next bottleneck.

Run::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--ops 400] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _ns_per_call(fn, n: int, *, repeat: int = 3) -> float:
    """Best-of-``repeat`` average ns for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        for _ in range(n):
            fn()
        wall = time.perf_counter() - started
        best = min(best, wall / n)
    return best * 1e9


def bench_crypto(results: dict) -> None:
    from repro.crypto.engine import AESPadEngine, PRFPadEngine
    from repro.crypto.otp import xor_bytes

    data = bytes(range(64))
    pad = bytes(reversed(range(256)))[:64]
    results["xor_bytes"] = _ns_per_call(lambda: xor_bytes(data, pad), 20000)

    warm_aes = AESPadEngine(b"k" * 16)
    warm_aes.pad(7, 3)  # prime the memo
    results["aes_pad_memo_hit"] = _ns_per_call(lambda: warm_aes.pad(7, 3), 20000)
    cold_aes = AESPadEngine(b"k" * 16, memo_entries=0)
    results["aes_pad_uncached"] = _ns_per_call(lambda: cold_aes.pad(7, 3), 5000)

    warm_prf = PRFPadEngine(b"k" * 16)
    warm_prf.pad(7, 3)
    results["prf_pad_memo_hit"] = _ns_per_call(lambda: warm_prf.pad(7, 3), 20000)
    cold_prf = PRFPadEngine(b"k" * 16, memo_entries=0)
    results["prf_pad_uncached"] = _ns_per_call(lambda: cold_prf.pad(7, 3), 5000)


def bench_cache_walk(results: dict) -> None:
    from repro.cache.hierarchy import CacheHierarchy
    from repro.common.config import SimConfig
    from repro.common.stats import Stats

    cfg = SimConfig()
    lines = [i * 3 for i in range(512)]

    def hierarchy():
        return CacheHierarchy(cfg.l1, cfg.l2, cfg.l3, cfg.timing, Stats())

    fast = hierarchy()
    access = fast.access

    def walk_fast():
        for line in lines:
            access(line, False)

    results["cache_walk_fast"] = _ns_per_call(walk_fast, 100) / len(lines)

    ref = hierarchy()
    read_ref = ref.read_ref

    def walk_ref():
        for line in lines:
            read_ref(line)

    results["cache_walk_ref"] = _ns_per_call(walk_ref, 100) / len(lines)


def bench_engine_step(results: dict, n_ops: int) -> None:
    import dataclasses

    from repro.common.config import SimConfig
    from repro.core.schemes import Scheme, scheme_config
    from repro.sim.simulator import Simulator
    from repro.sim.trace_cache import cached_generate_trace

    base = scheme_config(Scheme.SUPERMEM, SimConfig())
    trace = cached_generate_trace(
        "btree", n_ops=n_ops, request_size=1024, footprint=1 << 20, seed=1
    )
    for name, hot in (("engine_step_fast", True), ("engine_step_ref", False)):
        cfg = dataclasses.replace(base, hot_path=hot, fidelity="timing")
        best = float("inf")
        for _ in range(3):
            sim = Simulator(cfg)
            started = time.perf_counter()
            sim.run(trace.ops)
            best = min(best, time.perf_counter() - started)
        results[name] = best * 1e9 / len(trace.ops)
    results["engine_trace_ops"] = len(trace.ops)


def profile_components(n_ops: int) -> dict:
    """cProfile one sweep point; cumulative seconds per package component."""
    import cProfile
    import pstats

    from repro.core.schemes import Scheme
    from repro.sim.simulator import simulate_workload

    profiler = cProfile.Profile()
    profiler.enable()
    simulate_workload("btree", Scheme.SUPERMEM, n_ops=n_ops, request_size=1024)
    profiler.disable()

    components: dict = {}
    stats = pstats.Stats(profiler)
    for (filename, _, _), (_, _, tottime, _, _) in stats.stats.items():
        for component in (
            "crypto", "cache", "memory", "core", "sim", "txn", "workloads"
        ):
            if f"repro/{component}/" in filename.replace("\\", "/"):
                components[component] = components.get(component, 0.0) + tottime
                break
    return {k: round(v, 4) for k, v in sorted(components.items())}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", type=int, default=400, help="trace transactions for engine_step"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write results as JSON"
    )
    args = parser.parse_args(argv)

    results: dict = {}
    bench_crypto(results)
    bench_cache_walk(results)
    bench_engine_step(results, args.ops)

    pairs = (
        ("aes_pad", "aes_pad_uncached", "aes_pad_memo_hit"),
        ("prf_pad", "prf_pad_uncached", "prf_pad_memo_hit"),
        ("cache_walk", "cache_walk_ref", "cache_walk_fast"),
        ("engine_step", "engine_step_ref", "engine_step_fast"),
    )
    print(f"{'component':>16} {'reference':>12} {'fast':>12} {'speedup':>9}")
    for name, ref_key, fast_key in pairs:
        ref, fast = results[ref_key], results[fast_key]
        print(
            f"{name:>16} {ref:10.0f}ns {fast:10.0f}ns "
            f"{ref / fast if fast else 0.0:8.2f}x"
        )
    print(f"{'xor_bytes':>16} {'':>12} {results['xor_bytes']:10.0f}ns")

    components = profile_components(args.ops)
    results["profile_components_s"] = components
    print("\ncProfile tottime by component (one supermem point):")
    for component, seconds in components.items():
        print(f"{component:>16} {seconds:10.4f}s")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
