"""Related-work comparison bench (paper Section 6, quantified).

Compares SuperMem against the two designs the paper positions itself
between:

* **SCA** (write-back counter cache + selective counter-atomicity):
  similar runtime write traffic for persistence-heavy workloads, but
  requires new programming primitives the application must adopt;
* **Osiris** (relaxed counter persistence + ECC recovery): fewer counter
  writes at runtime, but post-crash counter recovery whose cost grows
  linearly with the amount of written memory — while SuperMem's strict
  persistence needs zero recovery work.

Shape checks: Osiris < SuperMem < WT in counter-write traffic, and Osiris
recovery trials scale with footprint while SuperMem's stay at zero.
"""

import dataclasses

from repro.common.config import MemoryConfig, SimConfig
from repro.core.osiris import OsirisRecovery
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.sim.simulator import simulate_workload


def test_runtime_counter_traffic(run_once, benchmark):
    """Counter-write traffic: Osiris < SuperMem < WT."""

    def run_all():
        results = {}
        for scheme in (Scheme.WT_BASE, Scheme.SUPERMEM, Scheme.SCA, Scheme.OSIRIS):
            results[scheme] = simulate_workload(
                "array", scheme, n_ops=40, request_size=1024, footprint=1 << 20
            )
        return results

    results = run_once(run_all)
    wt = results[Scheme.WT_BASE]
    supermem = results[Scheme.SUPERMEM]
    osiris = results[Scheme.OSIRIS]
    sca = results[Scheme.SCA]

    surviving_counters = {
        s: r.counter_writes - r.coalesced_counter_writes for s, r in results.items()
    }
    # Both relaxation strategies cut counter traffic hard vs WT; notably,
    # CWC alone can beat Osiris's stop-loss-4 on local workloads.
    assert surviving_counters[Scheme.OSIRIS] < 0.5 * surviving_counters[Scheme.WT_BASE]
    assert surviving_counters[Scheme.SUPERMEM] < 0.5 * surviving_counters[Scheme.WT_BASE]
    # SCA pairs every persistent write: traffic comparable to WT's.
    assert surviving_counters[Scheme.SCA] >= surviving_counters[Scheme.SUPERMEM]

    benchmark.extra_info["surviving_counter_writes"] = {
        s.label: v for s, v in surviving_counters.items()
    }
    benchmark.extra_info["latency_ns"] = {
        s.label: round(r.avg_txn_latency_ns) for s, r in results.items()
    }


def test_recovery_work_scaling(run_once, benchmark):
    """Osiris recovery trials grow linearly with written memory."""

    def measure():
        trials = {}
        for n_lines in (64, 256):
            cfg = scheme_config(
                Scheme.OSIRIS, SimConfig(memory=MemoryConfig(capacity=8 << 20))
            )
            system = SecureMemorySystem(cfg)
            for i in range(n_lines):
                system.persist_line(float(i), line=i, payload=bytes([i % 250 + 1]) * 64)
            report = OsirisRecovery(system.crash()).recover()
            assert report.failed_lines == []
            trials[n_lines] = report.trial_decryptions
        return trials

    trials = run_once(measure)
    assert trials[256] > 3 * trials[64]  # linear-ish growth
    benchmark.extra_info["osiris_trial_decryptions"] = trials
    benchmark.extra_info["supermem_trial_decryptions"] = {64: 0, 256: 0}
