"""Benchmark + shape check for Table 1 (crash recoverability)."""

from repro.experiments import table1


def test_table1_recoverability(run_once, benchmark):
    rows = run_once(table1.run)
    by_key = {(r.system, r.stage): r for r in rows}

    # Paper Table 1 (unprotected encrypted NVM): Yes / No / No.
    assert by_key[("unprotected", "prepare")].recoverable
    assert not by_key[("unprotected", "mutate")].recoverable
    assert not by_key[("unprotected", "commit")].recoverable
    # SuperMem: recoverable at every stage.
    for stage in table1.STAGES:
        assert by_key[("supermem", stage)].recoverable

    benchmark.extra_info["rows"] = [
        (r.system, r.stage, r.recoverable, r.recovered_value) for r in rows
    ]
