"""Wall-clock benchmark of the sweep runner (reference vs hot path vs jobs).

Unlike the other files in this directory (pytest-benchmark shape checks of
*simulated* numbers), this one measures the harness itself: how long the
standard fig13 sweep takes under the reference timing model, under the
production hot path at both fidelities, and fanned out over worker
processes. It writes ``BENCH_SWEEP.json`` — the repo's perf trajectory
record.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --scale smoke --jobs 4

or through the CLI hook::

    python -m repro bench-sweep --scale smoke --jobs 4

``--profile`` additionally runs one serial timing-fidelity fig13 sweep
under :mod:`cProfile` and prints the top 20 functions by cumulative time
(written to ``--profile-output`` for the CI artifact) — the
profile-guided half of the hot-path work: optimisations land where this
table says the time goes.
"""

import argparse
import sys


def _profile_sweep(scale: str, output: str) -> str:
    """cProfile one serial timing-fidelity sweep; return the top-20 table."""
    import cProfile
    import io
    import pstats

    from repro.experiments import fig13
    from repro.sim import trace_cache

    trace_cache.clear()
    profiler = cProfile.Profile()
    profiler.enable()
    fig13.run(scale)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(20)
    table = buf.getvalue()
    with open(output, "w") as fh:
        fh.write(table)
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("smoke", "default", "full"), default="smoke"
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default="BENCH_SWEEP.json")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also cProfile one serial timing-fidelity sweep and print the "
        "top 20 functions by cumulative time",
    )
    parser.add_argument(
        "--profile-output",
        default="BENCH_PROFILE.txt",
        metavar="PATH",
        help="where --profile writes its top-20 table (default: BENCH_PROFILE.txt)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.bench import format_summary, run_sweep_benchmark

    payload = run_sweep_benchmark(
        scale=args.scale, jobs=args.jobs, output=args.output
    )
    print(format_summary(payload))
    print(f"wrote {args.output}", file=sys.stderr)
    if args.profile:
        print(_profile_sweep(args.scale, args.profile_output), end="")
        print(f"wrote {args.profile_output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
