"""Wall-clock benchmark of the sweep runner (serial vs cache vs parallel).

Unlike the other files in this directory (pytest-benchmark shape checks of
*simulated* numbers), this one measures the harness itself: how long the
standard fig13 sweep takes serial with a cold trace cache, serial with
memoization, and fanned out over worker processes. It writes
``BENCH_SWEEP.json`` — the repo's perf trajectory record.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --scale smoke --jobs 4

or through the CLI hook::

    python -m repro bench-sweep --scale smoke --jobs 4
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("smoke", "default", "full"), default="smoke"
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default="BENCH_SWEEP.json")
    args = parser.parse_args(argv)

    from repro.experiments.bench import format_summary, run_sweep_benchmark

    payload = run_sweep_benchmark(
        scale=args.scale, jobs=args.jobs, output=args.output
    )
    print(format_summary(payload))
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
