"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure) at smoke
scale inside the timed region, asserts the paper's shape on the produced
rows, and attaches the headline numbers to ``benchmark.extra_info`` so the
JSON output doubles as a results record.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the timed function exactly once (simulations are deterministic;
    repetition would only multiply runtime)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
