#!/usr/bin/env python3
"""Crash-consistency walkthrough: Figures 4 and 6, end to end.

Demonstrates, with real encrypted bytes in a functional memory system:

1. the hazard — persist the counter but not the data (or vice versa) and
   the line is garbage after recovery (paper Figure 4);
2. the broken write-through baseline — without the atomicity register a
   crash between the counter append and the data append corrupts the line
   (Figure 6);
3. SuperMem — data and counter enter the ADR domain as one unit, so every
   crash leaves every persisted line decryptable (Figure 7);
4. transactional recovery — a crash mid-transaction rolls back to the old
   value via the undo log (Table 1).

Run::

    python examples/crash_consistency.py
"""

import dataclasses

from repro import (
    CrashInjected,
    DirectDomain,
    LogRegion,
    RecoveredSystem,
    Scheme,
    SecureMemorySystem,
    TransactionManager,
    scheme_config,
)

OLD = bytes([0xAA]) * 64
NEW = bytes([0xBB]) * 64
DATA_LINE = 4 * 64  # first line of page 4


def fresh_supermem(**overrides):
    cfg = dataclasses.replace(scheme_config(Scheme.SUPERMEM), **overrides)
    return SecureMemorySystem(cfg)


def show(label: str, got: bytes) -> None:
    if got == OLD:
        verdict = "OLD value (consistent)"
    elif got == NEW:
        verdict = "NEW value (consistent)"
    else:
        verdict = "GARBAGE (inconsistent!)"
    print(f"  {label:<52} -> {verdict}")


def demo_broken_write_through() -> None:
    print("\n[1] Write-through WITHOUT the atomicity register (Figure 6)")
    system = fresh_supermem(atomicity_register=False)
    system.persist_line(0.0, DATA_LINE, payload=OLD)
    system.drain()
    # Crash in the window where the counter of the next write is already
    # in the ADR domain but the data is still being encrypted.
    system.crash_ctl.arm("wt-no-register-gap", occurrence=1)
    try:
        system.persist_line(100.0, DATA_LINE, payload=NEW)
    except CrashInjected:
        print("  power failed between the counter append and the data append")
    recovered = RecoveredSystem(system.crash())
    show("line after recovery", recovered.plaintext_of(DATA_LINE))


def demo_supermem_register() -> None:
    print("\n[2] SuperMem's atomicity register (Figure 7)")
    system = fresh_supermem()
    system.persist_line(0.0, DATA_LINE, payload=OLD)
    # Crash immediately after the next write's atomic pair append.
    system.crash_ctl.arm("after-pair-append", occurrence=1)
    try:
        system.persist_line(100.0, DATA_LINE, payload=NEW)
    except CrashInjected:
        print("  power failed right after the data+counter pair append")
    recovered = RecoveredSystem(system.crash())
    show("line after recovery", recovered.plaintext_of(DATA_LINE))


def demo_transaction_rollback() -> None:
    print("\n[3] Durable transaction + crash in the mutate stage (Table 1)")
    system = fresh_supermem()
    domain = DirectDomain(system)
    manager = TransactionManager(
        domain, LogRegion(0, 64 * 64), crash=system.crash_ctl
    )
    # Committed old state.
    domain.store(DATA_LINE * 64, 64, OLD)
    domain.clwb(DATA_LINE * 64, 64)
    domain.sfence()
    # Crash after the in-place mutate, before commit.
    manager.crash_ctl.arm("txn-after-mutate")
    try:
        manager.run([(DATA_LINE * 64, 64, NEW)])
    except CrashInjected:
        print("  power failed after mutate, before commit")
    recovered = RecoveredSystem(system.crash())

    from repro import recover_data_view

    report = recover_data_view(recovered, manager.log, [DATA_LINE])
    print(f"  undo log scan: {len(report.undone)} uncommitted entry rolled back")
    show("data after log recovery", report.view[DATA_LINE])


def main() -> None:
    print("SuperMem crash-consistency demonstration (functional encryption)")
    demo_broken_write_through()
    demo_supermem_register()
    demo_transaction_rollback()
    print(
        "\nSummary: counter-mode encryption makes (data, counter) a unit —\n"
        "SuperMem's write-through + staging register keeps that unit atomic\n"
        "all the way into the ADR domain, with no battery and no new\n"
        "programming primitives."
    )


if __name__ == "__main__":
    main()
