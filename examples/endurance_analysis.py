#!/usr/bin/env python3
"""NVM endurance analysis: where the write wear actually lands.

PCM cells endure ~1e7-1e9 writes (paper Section 3.4.1), so *where* a
scheme puts its writes matters as much as how many it issues. This example
runs the same workload under WT, SuperMem, and Osiris and inspects the
functional NVM's per-line wear counters:

* the WT baseline doubles total writes, and its counter *lines* become the
  hottest cells in the device (every data write to a page rewrites the
  same counter line);
* SuperMem's CWC collapses most counter-line writes, pulling the hottest
  line's wear down toward the data lines';
* the split-counter design concentrates a page's counter wear on one line
  — visible as the counter-region peak in every encrypted scheme.

Run::

    python examples/endurance_analysis.py
"""

import dataclasses

from repro import MemoryConfig, Scheme, SimConfig, scheme_config
from repro.core.system import SecureMemorySystem

N_WRITES = 600
PAYLOAD = bytes([0x5A]) * 64


def run_wear(scheme: Scheme):
    cfg = dataclasses.replace(
        scheme_config(scheme, SimConfig(memory=MemoryConfig(capacity=8 << 20))),
        functional=False,  # wear accounting only; no payload churn
    )
    system = SecureMemorySystem(cfg)
    # A hot loop over 3 pages: sequential lines, wrap-around.
    for i in range(N_WRITES):
        line = (i * 7) % 192  # 3 pages of lines, strided
        system.persist_line(float(i), line)
    system.drain()
    nvm = system.controller.nvm
    amap = system.amap
    data_wear = max(
        (nvm.wear_of(line) for line in range(192)), default=0
    )
    ctr_wear = max(
        (nvm.wear_of(amap.n_lines + page) for page in range(4)), default=0
    )
    return nvm.total_writes, data_wear, ctr_wear


def main() -> None:
    print(f"{N_WRITES} strided line writes over 3 pages\n")
    print(f"{'scheme':>10} | {'total writes':>12} | {'hottest data line':>17} | {'hottest counter line':>20}")
    print("-" * 70)
    for scheme in (Scheme.UNSEC, Scheme.WT_BASE, Scheme.OSIRIS, Scheme.SUPERMEM):
        total, data_wear, ctr_wear = run_wear(scheme)
        print(f"{scheme.label:>10} | {total:>12} | {data_wear:>17} | {ctr_wear:>20}")
    print(
        "\nThe WT baseline's counter lines absorb ~64x the wear of any data\n"
        "line (every write in a page hits the same counter line); CWC cuts\n"
        "that concentration, which is an endurance win on top of the\n"
        "performance win the paper reports."
    )


if __name__ == "__main__":
    main()
