#!/usr/bin/env python3
"""A crash-safe key-value store on encrypted persistent memory.

The scenario the paper's introduction motivates: an application keeps a
key-value store directly in NVM, every update is a durable transaction,
and the memory is encrypted — transparently, with no application changes.

This example builds a small persistent hash-table KV store on the public
API (``SecureMemorySystem`` + ``DirectDomain`` + ``TransactionManager``),
fills it, kills the power mid-update, and shows that recovery yields a
consistent store: every key holds either its pre-crash or post-crash
value, never garbage.

Run::

    python examples/kv_store.py
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import (
    CrashInjected,
    DirectDomain,
    LogRegion,
    PersistentHeap,
    RecoveredSystem,
    Scheme,
    SecureMemorySystem,
    TransactionManager,
    recover_data_view,
    scheme_config,
)

VALUE_SIZE = 192  # three lines per value
SLOT_SIZE = 64 + VALUE_SIZE  # one header line + value


class DurableKVStore:
    """A fixed-capacity open-addressing KV store with durable updates."""

    def __init__(self, n_slots: int = 64, scheme: Scheme = Scheme.SUPERMEM):
        self.system = SecureMemorySystem(scheme_config(scheme))
        self.domain = DirectDomain(self.system)
        heap = PersistentHeap(capacity=4 << 20)
        log_base = heap.alloc_pages(8)
        self.log = LogRegion(log_base, 8 * 4096)
        self.manager = TransactionManager(
            self.domain, self.log, crash=self.system.crash_ctl
        )
        self.n_slots = n_slots
        self.base = heap.alloc(n_slots * SLOT_SIZE)
        self._slot_of: Dict[str, int] = {}  # volatile directory

    # -- layout helpers --------------------------------------------------

    def _slot_addr(self, slot: int) -> int:
        return self.base + slot * SLOT_SIZE

    def _encode(self, key: str, value: bytes) -> bytes:
        header = key.encode().ljust(64, b"\0")[:64]
        body = value.ljust(VALUE_SIZE, b"\0")[:VALUE_SIZE]
        return header + body

    def _slot_for(self, key: str) -> int:
        if key in self._slot_of:
            return self._slot_of[key]
        slot = hash(key) % self.n_slots
        while slot in self._slot_of.values():
            slot = (slot + 1) % self.n_slots
        self._slot_of[key] = slot
        return slot

    # -- API ---------------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Durably update ``key`` in one transaction."""
        slot = self._slot_for(key)
        image = self._encode(key, value)
        self.manager.run([(self._slot_addr(slot), SLOT_SIZE, image)])

    def get(self, key: str) -> Optional[bytes]:
        slot = self._slot_of.get(key)
        if slot is None:
            return None
        raw = self.domain.load(self._slot_addr(slot), SLOT_SIZE)
        return raw[64:].rstrip(b"\0")

    # -- crash / recovery -----------------------------------------------

    def crash(self):
        """Power failure; returns the durable image."""
        return self.system.crash()

    def recover_value(self, image, key: str) -> Optional[bytes]:
        """Read ``key`` out of a recovered image (log replay included)."""
        slot = self._slot_of.get(key)
        if slot is None:
            return None
        recovered = RecoveredSystem(image)
        addr = self._slot_addr(slot)
        lines = list(range(addr // 64, (addr + SLOT_SIZE) // 64))
        report = recover_data_view(recovered, self.log, lines)
        raw = b"".join(report.view[line] for line in lines)
        if raw[:64].rstrip(b"\0") != key.encode():
            return None
        return raw[64 : 64 + VALUE_SIZE].rstrip(b"\0")


def main() -> None:
    print("Durable KV store on SuperMem (encrypted, crash-safe)\n")
    store = DurableKVStore()

    print("populating 8 keys...")
    for i in range(8):
        store.put(f"user:{i}", f"balance={100 * i}".encode())
    assert store.get("user:3") == b"balance=300"
    print("  user:3 ->", store.get("user:3").decode())

    print("\nupdating user:3 and crashing mid-transaction (mutate stage)...")
    store.system.crash_ctl.arm("txn-after-mutate")
    try:
        store.put("user:3", b"balance=999999")
    except CrashInjected:
        print("  power failure injected!")
    image = store.crash()

    recovered_value = store.recover_value(image, "user:3")
    print(f"  after recovery, user:3 -> {recovered_value.decode()}")
    assert recovered_value == b"balance=300", "undo recovery must restore the old value"
    other = store.recover_value(image, "user:5")
    print(f"  untouched key user:5   -> {other.decode()}")
    assert other == b"balance=500"
    print(
        "\nThe interrupted update rolled back cleanly: no torn value, no\n"
        "undecryptable line — the application never dealt with counters."
    )


if __name__ == "__main__":
    main()
