#!/usr/bin/env python3
"""Minor-counter overflow, page re-encryption, and RSR crash recovery.

Split counters give each line a 7-bit minor counter: the 128th write to
one line overflows it, forcing the whole page to be re-encrypted under a
bumped major counter (paper Section 3.4.4). This example:

1. hammers one line until the overflow triggers re-encryption and shows
   that every other line of the page still decrypts;
2. crashes in the middle of a re-encryption and shows the ADR-protected
   20-byte RSR lets recovery finish the job;
3. repeats the crash with the RSR unprotected — the not-yet-re-encrypted
   lines become garbage, which is exactly why SuperMem puts the RSR in
   the ADR domain.

Run::

    python examples/page_reencryption.py
"""

import dataclasses

from repro import (
    CrashInjected,
    RecoveredSystem,
    Scheme,
    SecureMemorySystem,
    scheme_config,
)

HOT_LINE = 0  # line we hammer
# Neighbour lines spread across the page, so a crash 20/64 lines into the
# re-encryption leaves some of them pending (slots > 20).
NEIGHBOURS = {line: bytes([line]) * 64 for line in (1, 2, 3, 30, 45, 60)}
HOT_PAYLOAD = bytes([0xEE]) * 64


def fresh(rsr_adr: bool) -> SecureMemorySystem:
    cfg = dataclasses.replace(scheme_config(Scheme.SUPERMEM), rsr_adr=rsr_adr)
    return SecureMemorySystem(cfg)


def demo_overflow() -> None:
    print("[1] 128 writes to one line trigger page re-encryption")
    system = fresh(rsr_adr=True)
    for line, payload in NEIGHBOURS.items():
        system.persist_line(0.0, line, payload=payload)
    for i in range(128):
        system.persist_line(float(i), HOT_LINE, payload=HOT_PAYLOAD)
    reenc = system.stats.get("secmem", "page_reencryptions")
    major = system.counters.block(0).major
    print(f"  page re-encryptions: {reenc}; page 0 major counter: {major}")
    ok = all(
        system.read_line(10**6, line).payload == payload
        for line, payload in NEIGHBOURS.items()
    )
    print(f"  all neighbour lines still decrypt correctly: {ok}")


def demo_crash_with_rsr(rsr_adr: bool) -> None:
    tag = "ADR-protected RSR" if rsr_adr else "UNPROTECTED RSR (broken baseline)"
    print(f"\n[{2 if rsr_adr else 3}] crash mid-re-encryption, {tag}")
    system = fresh(rsr_adr=rsr_adr)
    for line, payload in NEIGHBOURS.items():
        system.persist_line(0.0, line, payload=payload)
    for i in range(127):
        system.persist_line(float(i), HOT_LINE, payload=HOT_PAYLOAD)
    # The next write overflows; crash after 20 of 64 lines re-encrypted.
    system.crash_ctl.arm("reencrypt-line-done", occurrence=20)
    try:
        system.persist_line(10**6, HOT_LINE, payload=HOT_PAYLOAD)
    except CrashInjected:
        print("  power failed 20/64 lines into the re-encryption")
    image = system.crash()
    recovered = RecoveredSystem(image)
    if image.rsr is not None:
        pending = len(image.rsr.pending_slots())
        print(f"  RSR survived: page {image.rsr.page}, {pending} lines pending")
        resumed = recovered.resume_reencryption()
        print(f"  recovery resumed and re-encrypted {resumed} lines")
    else:
        print("  RSR lost with the power")
    shadow = dict(NEIGHBOURS)
    shadow[HOT_LINE] = HOT_PAYLOAD
    mismatches = recovered.audit_against_shadow(shadow)
    if mismatches:
        print(f"  INCONSISTENT: {len(mismatches)} line(s) decrypt to garbage")
    else:
        print("  every line decrypts to its expected value")


def main() -> None:
    print("Split-counter overflow and the re-encryption status register\n")
    demo_overflow()
    demo_crash_with_rsr(rsr_adr=True)
    demo_crash_with_rsr(rsr_adr=False)
    print(
        "\nThe RSR is 20 bytes — page number, old major counter, 64 done\n"
        "bits — so keeping it in the ADR domain costs almost nothing,\n"
        "while losing it corrupts every not-yet-re-encrypted line."
    )


if __name__ == "__main__":
    main()
