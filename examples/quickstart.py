#!/usr/bin/env python3
"""Quickstart: simulate the paper's schemes and read the headline result.

Runs the B-tree workload (1 KB transactions) under all six evaluated
schemes on the scaled Table 2 system and prints the normalised transaction
latencies and NVM write counts — a one-screen version of Figures 13 and 15.

Run::

    python examples/quickstart.py
"""

from repro import EVALUATED_SCHEMES, Scheme, simulate_workload


def main() -> None:
    workload = "btree"
    n_ops = 100
    print(f"Simulating {n_ops} x 1KB durable transactions on '{workload}'\n")
    print(f"{'scheme':>10} | {'txn latency':>12} | {'vs Unsec':>8} | {'NVM writes':>10} | {'coalesced':>9}")
    print("-" * 64)
    baseline = None
    for scheme in EVALUATED_SCHEMES:
        result = simulate_workload(
            workload, scheme, n_ops=n_ops, request_size=1024, footprint=2 << 20
        )
        if baseline is None:
            baseline = result.avg_txn_latency_ns
        print(
            f"{scheme.label:>10} | {result.avg_txn_latency_ns:>9.0f} ns"
            f" | {result.avg_txn_latency_ns / baseline:>7.2f}x"
            f" | {result.surviving_writes:>10}"
            f" | {result.coalesced_counter_writes:>9}"
        )
    print(
        "\nThe paper's headline: the write-through baseline (WT) costs ~2x, and\n"
        "SuperMem (= WT + CWC + XBank) recovers essentially all of it,\n"
        "matching the ideal battery-backed write-back scheme (WB)."
    )


if __name__ == "__main__":
    main()
