#!/usr/bin/env python3
"""Full scheme comparison across all five paper workloads.

A compact reproduction of Figures 13 and 15 on one screen: for each
workload, the transaction latency and NVM write count of every scheme,
normalised to the unencrypted baseline — plus the multicore (4-program)
column showing why CWC matters more than XBank when every bank is busy.

Run (takes ~1 minute)::

    python examples/scheme_comparison.py
"""

from repro import EVALUATED_SCHEMES, simulate_multiprogrammed, simulate_workload
from repro.sim.energy import energy_of

WORKLOADS = ("array", "queue", "btree", "hashtable", "rbtree")
N_OPS = 80
REQUEST_SIZE = 1024
FOOTPRINT = 2 << 20


def single_core_table() -> None:
    print(f"single-core, {REQUEST_SIZE} B transactions "
          f"(latency / writes, normalised to Unsec)\n")
    header = f"{'workload':>10} |" + "".join(f" {s.label:>14} |" for s in EVALUATED_SCHEMES)
    print(header)
    print("-" * len(header))
    for workload in WORKLOADS:
        cells = []
        base_lat = base_wr = None
        for scheme in EVALUATED_SCHEMES:
            r = simulate_workload(
                workload, scheme, n_ops=N_OPS,
                request_size=REQUEST_SIZE, footprint=FOOTPRINT,
            )
            if base_lat is None:
                base_lat, base_wr = r.avg_txn_latency_ns, r.surviving_writes
            cells.append(
                f" {r.avg_txn_latency_ns / base_lat:>5.2f}x/{r.surviving_writes / base_wr:>5.2f}x |"
            )
        print(f"{workload:>10} |" + "".join(cells))


def energy_table() -> None:
    print("\nenergy per run (btree, 1KB transactions, normalised to Unsec)\n")
    base = None
    for scheme in EVALUATED_SCHEMES:
        r = simulate_workload(
            "btree", scheme, n_ops=N_OPS, request_size=REQUEST_SIZE, footprint=FOOTPRINT
        )
        breakdown = energy_of(r)
        if base is None:
            base = breakdown.total_nj
        print(
            f"  {scheme.label:>10}: {breakdown.total_uj:8.1f} uJ "
            f"({breakdown.total_nj / base:4.2f}x, "
            f"writes {breakdown.nvm_writes_nj / breakdown.total_nj:.0%})"
        )


def multicore_table() -> None:
    print("\n4 programs sharing all banks (hashtable, latency vs Unsec)\n")
    for scheme in EVALUATED_SCHEMES:
        r = simulate_multiprogrammed(
            "hashtable", scheme, n_programs=4, n_ops=30, request_size=REQUEST_SIZE
        )
        if scheme is EVALUATED_SCHEMES[0]:
            base = r.avg_txn_latency_ns
        print(f"  {scheme.label:>10}: {r.avg_txn_latency_ns / base:5.2f}x")


def main() -> None:
    single_core_table()
    energy_table()
    multicore_table()
    print(
        "\nReading the table: WT doubles both columns; CWC removes the\n"
        "counter writes; XBank hides the remaining ones behind bank\n"
        "parallelism; SuperMem (both) matches the battery-backed ideal."
    )


if __name__ == "__main__":
    main()
