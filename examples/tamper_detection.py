#!/usr/bin/env python3
"""Stolen-DIMM and bus-attack walkthrough: what encryption (and the
orthogonal integrity layer) buys.

Plays the paper's threat model (Section 2.2) against the functional
system:

1. **stolen DIMM** — an attacker streams raw bytes off the NVM: with
   counter-mode encryption they see ciphertext only, and identical
   plaintexts at different addresses/versions look unrelated (the
   dictionary attacks of Figure 1 fail);
2. **bus snooping** — consecutive writes of the same value to the same
   line produce different ciphertexts (per-write counters);
3. **bus tampering** — excluded from SuperMem's threat model but handled
   by the orthogonal MAC + Bonsai-Merkle-tree layer this repo also ships:
   flipping a ciphertext bit, replaying a stale version, and forging a
   counter block are all detected.

Run::

    python examples/tamper_detection.py
"""

from repro import Scheme, SecureMemorySystem, SecurityError, scheme_config
from repro.crypto.integrity import IntegrityEngine

SECRET = b"ATTACK AT DAWN".ljust(64, b".")


def demo_stolen_dimm() -> None:
    print("[1] Stolen DIMM: raw NVM contents are ciphertext")
    system = SecureMemorySystem(scheme_config(Scheme.SUPERMEM))
    system.persist_line(0.0, 0, payload=SECRET)
    system.persist_line(1.0, 1, payload=SECRET)  # same secret, other line
    system.drain()
    stolen_0 = system.controller.nvm.read_line(0)
    stolen_1 = system.controller.nvm.read_line(1)
    print(f"  plaintext       : {SECRET[:24]!r}...")
    print(f"  stolen line 0   : {stolen_0[:24].hex()}...")
    print(f"  stolen line 1   : {stolen_1[:24].hex()}...")
    assert SECRET not in stolen_0
    assert stolen_0 != stolen_1, "identical content must not be linkable"
    print("  identical secrets at two addresses look unrelated\n")


def demo_bus_snooping() -> None:
    print("[2] Bus snooping: rewrites of the same value differ on the wire")
    system = SecureMemorySystem(scheme_config(Scheme.SUPERMEM))
    system.persist_line(0.0, 0, payload=SECRET)
    system.drain()
    first = system.controller.nvm.read_line(0)
    system.persist_line(10.0, 0, payload=SECRET)
    system.drain()
    second = system.controller.nvm.read_line(0)
    assert first != second
    print("  write #1 and write #2 of the same secret: distinct ciphertexts\n")


def demo_tampering() -> None:
    print("[3] Bus tampering: the orthogonal integrity layer detects it")
    engine = IntegrityEngine(n_counter_blocks=64)
    ciphertext_v1 = bytes(range(64))
    ciphertext_v2 = bytes(reversed(range(64)))
    engine.on_write(0, counter=1, ciphertext=ciphertext_v1, block_key=0,
                    block_image=b"counters-v1")
    engine.on_write(0, counter=2, ciphertext=ciphertext_v2, block_key=0,
                    block_image=b"counters-v2")

    for label, attack in [
        ("bit-flip", lambda: engine.verify_read(0, 2, bytes([1]) + ciphertext_v2[1:])),
        ("replay of stale version", lambda: engine.verify_read(0, 1, ciphertext_v1)),
        ("forged counter block", lambda: engine.verify_counter_block(0, b"forged")),
    ]:
        try:
            attack()
            print(f"  {label}: NOT detected (bug!)")
        except SecurityError as exc:
            print(f"  {label}: detected ({exc})")
    engine.verify_read(0, 2, ciphertext_v2)
    engine.verify_counter_block(0, b"counters-v2")
    print("  honest reads still verify\n")


def main() -> None:
    print("SuperMem threat-model demonstration\n")
    demo_stolen_dimm()
    demo_bus_snooping()
    demo_tampering()
    print(
        "Counter-mode encryption defeats the paper's two in-scope attacks\n"
        "(stolen DIMM, bus snooping); the MAC/Merkle layer covers the\n"
        "out-of-scope tampering attacks the paper cites as orthogonal."
    )


if __name__ == "__main__":
    main()
