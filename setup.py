"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so ``pip install -e .`` cannot use the PEP-517 editable path. This shim lets
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
fall back to the classic setuptools editable install. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
