"""SuperMem reproduction: application-transparent secure persistent memory.

A full-system Python reproduction of *SuperMem: Enabling
Application-transparent Secure Persistent Memory with Low Overheads*
(MICRO 2019): counter-mode-encrypted NVM with a write-through counter
cache made crash-consistent by an atomicity register, counter write
coalescing (CWC) in the memory-controller write queue, and cross-bank
counter storage (XBank).

Quick start::

    from repro import Scheme, simulate_workload

    result = simulate_workload("btree", Scheme.SUPERMEM, n_ops=100)
    print(result.summary())

Functional (crash-consistency) use::

    from repro import (
        DirectDomain, LogRegion, RecoveredSystem, Scheme,
        SecureMemorySystem, TransactionManager, scheme_config,
    )

    system = SecureMemorySystem(scheme_config(Scheme.SUPERMEM))
    domain = DirectDomain(system)
    mgr = TransactionManager(domain, LogRegion(0, 64 * 64))
    mgr.run([(4096, 64, b"x" * 64)])
    image = system.crash()           # power failure
    RecoveredSystem(image).plaintext_of(64)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.common.config import (
    CacheConfig,
    CounterCacheConfig,
    CounterCacheMode,
    CounterPlacementPolicy,
    MemoryConfig,
    SimConfig,
    TimingConfig,
)
from repro.common.errors import (
    ConfigError,
    CrashInjected,
    ReproError,
    SecurityError,
    SimulationError,
)
from repro.common.stats import Stats
from repro.core.crash import CrashController, DurableImage
from repro.core.recovery import RecoveredSystem
from repro.core.schemes import EVALUATED_SCHEMES, Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.crypto.otp import LineCipher
from repro.sim.metrics import SimResult
from repro.sim.multicore import MulticoreSimulator, simulate_multiprogrammed
from repro.sim.simulator import Simulator, simulate_workload
from repro.txn.log import LogRegion
from repro.txn.persist import DirectDomain, TraceDomain
from repro.txn.transaction import TransactionManager, recover_data_view
from repro.workloads.generator import build_workload, generate_trace
from repro.workloads.heap import PersistentHeap

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CounterCacheConfig",
    "CounterCacheMode",
    "CounterPlacementPolicy",
    "MemoryConfig",
    "SimConfig",
    "TimingConfig",
    "ConfigError",
    "CrashInjected",
    "ReproError",
    "SecurityError",
    "SimulationError",
    "Stats",
    "CrashController",
    "DurableImage",
    "RecoveredSystem",
    "EVALUATED_SCHEMES",
    "Scheme",
    "scheme_config",
    "SecureMemorySystem",
    "LineCipher",
    "SimResult",
    "MulticoreSimulator",
    "simulate_multiprogrammed",
    "Simulator",
    "simulate_workload",
    "LogRegion",
    "DirectDomain",
    "TraceDomain",
    "TransactionManager",
    "recover_data_view",
    "build_workload",
    "generate_trace",
    "PersistentHeap",
    "__version__",
]
