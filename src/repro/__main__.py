"""Command-line entry point: regenerate the paper's tables and figures.

Examples
--------
List the available experiments::

    python -m repro list

Regenerate one figure at the default scale::

    python -m repro run fig13

Regenerate everything the paper reports (markdown to stdout)::

    python -m repro run all --scale full
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_experiment(
    name: str,
    scale: str,
    json_path: str | None = None,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
) -> str:
    """Run one experiment by name; returns rendered markdown.

    When ``json_path`` is given, the raw points are also exported there
    (experiments that produce point lists only). ``jobs`` fans the
    experiment's simulation grid over that many worker processes
    (results are bit-identical to serial; see docs/PERFORMANCE.md).
    ``journal`` enables ``--resume``: completed sweep points are appended
    to that JSONL file and skipped on a re-run (see docs/CLI.md).
    ``fidelity`` selects the simulation fidelity for the fig13-17 sweep
    grids ("timing" or "full"; identical results either way — see
    docs/PERFORMANCE.md). Crash/recovery experiments (table1,
    fig-recovery, related) inspect recovered bytes and always run at
    full fidelity regardless of this flag.
    """
    from repro.experiments import (
        ablations,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        fig_channels,
        fig_recovery,
        related_work,
        table1,
    )
    from repro.experiments.export import export_json

    points = None
    if name == "table1":
        # Crash injection is a handful of sequential scenarios, not a
        # sweep grid — always serial (and never journaled: each scenario
        # is cheap and stateful crash plumbing doesn't round-trip).
        points = table1.run()
        rendered = table1.render(points)
    elif name == "related":
        rendered = related_work.render(
            related_work.run_runtime(scale, jobs=jobs, journal=journal),
            related_work.run_recovery(),
        )
    elif name == "fig13":
        points = fig13.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig13.render(points)
    elif name == "fig14":
        points = fig14.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig14.render(points)
    elif name == "fig15":
        points = fig15.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig15.render(points)
    elif name == "fig16":
        points = fig16.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig16.render(points)
    elif name == "fig17":
        points = fig17.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig17.render(points)
    elif name == "fig-channels":
        points = fig_channels.run(scale, jobs=jobs, journal=journal, fidelity=fidelity)
        rendered = fig_channels.render(points)
    elif name == "fig-recovery":
        points = fig_recovery.run(scale, jobs=jobs, journal=journal)
        rendered = fig_recovery.render(points)
    elif name == "ablations":
        rendered = ablations.render_all(scale, jobs=jobs, journal=journal)
    else:
        raise SystemExit(f"unknown experiment {name!r}; see `python -m repro list`")
    if json_path and points is not None:
        export_json(points, json_path, experiment=name)
    return rendered


EXPERIMENTS = (
    "table1",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig-channels",
    "fig-recovery",
    "ablations",
    "related",
)

_DESCRIPTIONS = {
    "table1": "Crash recoverability per transaction stage (crash injection)",
    "fig13": "Single-core txn latency: 5 workloads x 6 schemes x 3 sizes",
    "fig14": "Multi-programmed txn latency: 1/4/8 programs",
    "fig15": "NVM write requests normalised to Unsec",
    "fig16": "Write-queue length sensitivity (8..128 entries)",
    "fig17": "Counter-cache size sensitivity (1KB..4MB)",
    "fig-channels": "Channel-count sensitivity (1..8 channels at fixed banks)",
    "fig-recovery": "Section 6 recovery cost vs capacity/log/RSR/dirty fraction",
    "ablations": "Design-choice ablations (CWC policy, XBank offset, ...)",
    "related": "Section 6 related work: SCA / Osiris runtime + recovery cost",
}


def build_parser() -> argparse.ArgumentParser:
    """The complete argparse tree (also introspected by the docs-drift
    test, which asserts every subcommand and flag appears in docs/CLI.md)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SuperMem (MICRO 2019) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiment(s)")
    run_parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which paper artifact to regenerate",
    )
    run_parser.add_argument(
        "--scale",
        choices=("smoke", "default", "full"),
        default="default",
        help="run size preset (default: default)",
    )
    run_parser.add_argument(
        "--output",
        default=None,
        help="write markdown to this file instead of stdout",
    )
    run_parser.add_argument(
        "--json",
        default=None,
        help="also export the raw experiment points as JSON (single experiment only)",
    )
    run_parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for the sweep grid ('auto' = CPU count; "
        "default 1 = serial; output is bit-identical either way)",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="journal completed sweep points to this JSONL file and skip "
        "points already journaled there — an interrupted sweep re-run "
        "with the same journal is bit-identical to an uninterrupted one "
        "(see docs/CLI.md and docs/PERFORMANCE.md)",
    )
    run_parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any sweep point whose worker exceeds this "
        "wall-clock budget (default: no timeout)",
    )
    run_parser.add_argument(
        "--fidelity",
        choices=("timing", "full"),
        default="timing",
        help="simulation fidelity for sweep experiments: 'timing' (default) "
        "skips functional byte-level crypto/NVM payloads for speed; 'full' "
        "carries payloads end to end — results are bit-identical either way "
        "(crash/recovery experiments always run full)",
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="total execution attempts per sweep point before it is "
        "reported as failed (default 3; 1 disables retry)",
    )
    run_parser.add_argument(
        "--live",
        action="store_true",
        help="publish live fleet metrics while sweeping: a periodic status "
        "line on stderr, a JSONL snapshot/event stream, and a Prometheus "
        "text snapshot file (paths derive from --resume, else 'sweep.*'; "
        "serve the .prom file with `repro serve-metrics`, analyse the "
        "stream with `repro sweep-report`)",
    )
    run_parser.add_argument(
        "--live-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between --live status/snapshot emissions (default 2)",
    )
    run_parser.add_argument(
        "--outcome-store",
        default=None,
        metavar="DIR",
        help="share generated traces and recorded cache-walk outcome "
        "streams across processes through an on-disk store: a 4-job "
        "sweep (or a second invocation) records each (trace, geometry) "
        "once fleet-wide, with bit-identical results (inspect the store "
        "with `repro cache`)",
    )

    bench_parser = sub.add_parser(
        "bench-sweep",
        help="time the fig13 sweep serial vs cached vs parallel (BENCH_SWEEP.json)",
    )
    bench_parser.add_argument(
        "--scale",
        choices=("smoke", "default", "full"),
        default="smoke",
        help="run size preset (default: smoke)",
    )
    bench_parser.add_argument(
        "--jobs",
        default="4",
        metavar="N",
        help="worker processes for the parallel leg ('auto' = CPU count; default 4)",
    )
    bench_parser.add_argument(
        "--output",
        default="BENCH_SWEEP.json",
        help="JSON output path (default: BENCH_SWEEP.json)",
    )
    bench_parser.add_argument(
        "--outcome-store",
        default=None,
        metavar="DIR",
        help="directory for the shared-record/shared-outcomes legs' "
        "on-disk outcome store (default: a per-run temp directory)",
    )

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or prune an on-disk outcome store (see --outcome-store)",
    )
    cache_parser.add_argument(
        "store_dir",
        help="outcome-store directory (as passed to --outcome-store)",
    )
    cache_parser.add_argument(
        "--prune",
        action="store_true",
        help="evict least-recently-used entries beyond the size cap "
        "(with --cap-mb 0: remove every entry)",
    )
    cache_parser.add_argument(
        "--cap-mb",
        type=int,
        default=None,
        metavar="MB",
        help="size cap in MiB for --prune and the reported headroom "
        "(default: the store's built-in 256 MiB cap)",
    )
    cache_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the store summary as JSON instead of text",
    )

    trace_parser = sub.add_parser(
        "trace", help="generate a workload trace file (or summarise one)"
    )
    trace_parser.add_argument("workload", help="workload name, or a .smtr path with --summary")
    trace_parser.add_argument("--ops", type=int, default=200, help="transactions to record")
    trace_parser.add_argument("--request-size", type=int, default=1024)
    trace_parser.add_argument("--footprint", type=int, default=4 << 20)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--output", default=None, help="trace file to write")
    trace_parser.add_argument(
        "--summary", action="store_true", help="summarise an existing trace file"
    )

    sim_parser = sub.add_parser("simulate", help="simulate one workload/scheme point")
    sim_parser.add_argument("workload")
    sim_parser.add_argument(
        "--scheme", default="supermem", help="unsec/wb/wt/wt+cwc/wt+xbank/supermem/sca/osiris/supermem+bmt"
    )
    sim_parser.add_argument("--ops", type=int, default=200)
    sim_parser.add_argument("--request-size", type=int, default=1024)
    sim_parser.add_argument("--footprint", type=int, default=4 << 20)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--fidelity",
        choices=("timing", "full"),
        default="timing",
        help="'timing' (default) skips functional byte work; 'full' runs "
        "the byte-level crypto path — identical timing/stats either way",
    )
    sim_parser.add_argument(
        "--profile", action="store_true", help="print the bank/WQ profile"
    )
    sim_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record an event trace and write Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    sim_parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="also write the event stream as compact JSONL",
    )
    sim_parser.add_argument(
        "--sample-ns",
        type=float,
        default=None,
        metavar="N",
        help="sample gauges (WQ occupancy, bank busy fraction, cc hit rate) "
        "every N simulated ns (implies tracing)",
    )
    sim_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the SimResult summary as JSON ('-' for stdout)",
    )

    report_parser = sub.add_parser(
        "trace-report",
        help="per-phase breakdown of a trace recorded with simulate --trace",
    )
    report_parser.add_argument("trace_file", help="Chrome trace JSON from --trace")
    report_parser.add_argument(
        "--buckets", type=int, default=12, help="number of time buckets (phases)"
    )

    recovery_parser = sub.add_parser(
        "recovery-report",
        help="price one post-crash recovery (timed model; see docs/RECOVERY.md)",
    )
    recovery_parser.add_argument(
        "scheme", help="recovery scheme: supermem/supermem+bmt/sca/osiris (path is derived)"
    )
    recovery_parser.add_argument(
        "--capacity", type=int, default=32 << 20, help="NVM capacity in bytes"
    )
    recovery_parser.add_argument(
        "--log-lines", type=int, default=256, help="undo-log region size in 64 B lines"
    )
    recovery_parser.add_argument(
        "--rsr",
        choices=("armed", "off"),
        default="off",
        help="crash mid page re-encryption so recovery must resume the RSR",
    )
    recovery_parser.add_argument(
        "--dirty-frac",
        type=float,
        default=0.0,
        help="fraction of pre-crash transactions with still-dirty counters "
        "(write-back schemes only)",
    )
    recovery_parser.add_argument(
        "--txns", type=int, default=16, help="transactions executed before the crash"
    )
    recovery_parser.add_argument("--request-size", type=int, default=256)
    recovery_parser.add_argument("--seed", type=int, default=1)
    recovery_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the cost report as JSON ('-' for stdout)",
    )
    recovery_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the recovery phases as Chrome trace-event JSON",
    )

    serve_parser = sub.add_parser(
        "serve-metrics",
        help="serve a Prometheus .prom snapshot file over HTTP (stdlib only)",
    )
    serve_parser.add_argument(
        "prom_file",
        help="snapshot file a `run --live` sweep rewrites (e.g. sweep.prom)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=9464, help="bind port (default 9464; 0 = ephemeral)"
    )

    sweep_report_parser = sub.add_parser(
        "sweep-report",
        help="fleet-health report from a `run --live` metrics JSONL stream",
    )
    sweep_report_parser.add_argument(
        "metrics_file",
        help="metrics stream from a --live sweep (e.g. sweep.metrics.jsonl)",
    )
    sweep_report_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="also summarise this resume journal (results/failures/torn tails)",
    )
    sweep_report_parser.add_argument(
        "--top", type=int, default=5, help="slowest points to list (default 5)"
    )

    tune_parser = sub.add_parser(
        "tune",
        help="search SimConfig knobs for the best fitness (docs/TUNING.md)",
    )
    tune_parser.add_argument(
        "--workloads",
        default="array,queue",
        metavar="CSV",
        help="comma-separated workload mix the fitness sums over "
        "(default: array,queue)",
    )
    tune_parser.add_argument(
        "--scheme",
        default="supermem",
        help="scheme to tune under: unsec/wb/wt/wt+cwc/wt+xbank/supermem/"
        "sca/osiris (default: supermem)",
    )
    tune_parser.add_argument(
        "--scale",
        choices=("smoke", "default", "full"),
        default="smoke",
        help="run size preset per candidate evaluation (default: smoke)",
    )
    tune_parser.add_argument(
        "--budget",
        default="small",
        metavar="N|small|medium|large",
        help="candidate evaluations including the step-0 baseline "
        "(small=8, medium=24, large=64, or any integer; default: small)",
    )
    tune_parser.add_argument(
        "--strategy",
        choices=("random", "hillclimb", "evolutionary"),
        default="hillclimb",
        help="search strategy (default: hillclimb)",
    )
    tune_parser.add_argument(
        "--fitness",
        choices=("run_time_ns", "bytes_per_persist", "weighted"),
        default="run_time_ns",
        help="objective to minimize (default: run_time_ns)",
    )
    tune_parser.add_argument(
        "--weight",
        type=float,
        default=0.5,
        metavar="W",
        help="weighted fitness: W x normalized run time + (1-W) x "
        "normalized bytes-per-persist (default 0.5)",
    )
    tune_parser.add_argument(
        "--seed", type=int, default=1, help="search RNG seed (default 1)"
    )
    tune_parser.add_argument(
        "--request-size", type=int, default=1024, help="per-point request size"
    )
    tune_parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes per candidate evaluation ('auto' = CPU "
        "count; decisions are identical at any job count)",
    )
    tune_parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="journal candidate evaluations to this JSONL file; a killed "
        "search re-run with the same arguments and journal replays "
        "finished evaluations from disk and lands on a bit-identical "
        "trajectory digest",
    )
    tune_parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any evaluation point past this wall-clock "
        "budget (default: no timeout)",
    )
    tune_parser.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="execution attempts per evaluation point (default 3)",
    )
    tune_parser.add_argument(
        "--live",
        action="store_true",
        help="publish live fleet + repro_tune_* metrics while searching "
        "(stream/prom paths derive from --resume, else 'sweep.*')",
    )
    tune_parser.add_argument(
        "--live-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between --live emissions (default 2)",
    )
    tune_parser.add_argument(
        "--surrogate-first",
        action="store_true",
        help="screen candidates with an online knob model before paying "
        "for simulation; prunes points predicted worse than "
        "best x --prune-margin (see docs/TUNING.md for caveats)",
    )
    tune_parser.add_argument(
        "--surrogate-model",
        default=None,
        metavar="PATH",
        help="anchor the screen on a fitted `repro surrogate fit` model "
        "(run_time_ns fitness only; logs measured-vs-predicted "
        "residuals per accepted point)",
    )
    tune_parser.add_argument(
        "--prune-margin",
        type=float,
        default=1.25,
        metavar="M",
        help="surrogate screen prunes candidates predicted worse than "
        "best x M (default 1.25)",
    )
    tune_parser.add_argument(
        "--trajectory",
        default="TUNE_TRAJECTORY.jsonl",
        metavar="PATH",
        help="per-step search trajectory JSONL (default: "
        "TUNE_TRAJECTORY.jsonl; input of `repro tune-report`)",
    )
    tune_parser.add_argument(
        "--recommend",
        default="RECOMMENDED_CONFIG.json",
        metavar="PATH",
        help="best-found config export (default: RECOMMENDED_CONFIG.json)",
    )
    tune_parser.add_argument(
        "--outcome-store",
        default=None,
        metavar="DIR",
        help="share traces and recorded cache-walk outcomes across the "
        "search's workers (and across tuner invocations) through an "
        "on-disk store (see `repro run --outcome-store`)",
    )

    tune_report_parser = sub.add_parser(
        "tune-report",
        help="render best point / trajectory / times-to-completion from a "
        "tune trajectory file",
    )
    tune_report_parser.add_argument(
        "trajectory_file",
        help="trajectory JSONL written by `repro tune --trajectory`",
    )
    tune_report_parser.add_argument(
        "--top", type=int, default=5, help="ranked points to list (default 5)"
    )
    tune_report_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also export the report payload as JSON ('-' for stdout)",
    )

    surrogate_parser = sub.add_parser(
        "surrogate",
        help="fit/evaluate the analytical run-time surrogate model",
    )
    surrogate_parser.add_argument(
        "mode",
        choices=("fit", "predict", "validate"),
        help="fit: train on the fig13 grid; predict: closed-form per-scheme "
        "estimates for one cell; validate: check a model against a journal",
    )
    surrogate_parser.add_argument(
        "--scale", default="smoke", help="experiment scale of the grid"
    )
    surrogate_parser.add_argument(
        "--jobs", default="1", help="worker processes for the fit sweep"
    )
    surrogate_parser.add_argument(
        "--model",
        default="surrogate.json",
        metavar="PATH",
        help="model file to write (fit) or read (predict/validate)",
    )
    surrogate_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="validate: sweep journal to cross-check predictions against "
        "(omitted: re-simulate the grid)",
    )
    surrogate_parser.add_argument(
        "--workload", default="btree", help="predict: workload name"
    )
    surrogate_parser.add_argument(
        "--request-size", type=int, default=1024, help="predict: request size"
    )
    surrogate_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the validation/prediction report as JSON",
    )

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace-report":
        return _cmd_trace_report(args)
    if args.command == "recovery-report":
        return _cmd_recovery_report(args)
    if args.command == "bench-sweep":
        return _cmd_bench_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve-metrics":
        from repro.obs.promserve import serve_metrics

        return serve_metrics(args.prom_file, host=args.host, port=args.port)
    if args.command == "sweep-report":
        from repro.experiments.sweep_report import render_sweep_report_file

        print(
            render_sweep_report_file(
                args.metrics_file, top=args.top, journal_path=args.journal
            )
        )
        return 0
    if args.command == "surrogate":
        return _cmd_surrogate(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "tune-report":
        return _cmd_tune_report(args)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(f"{name:10s} {_DESCRIPTIONS[name]}")
        return 0

    jobs = _parse_jobs(args.jobs)
    _install_policy(args)
    _install_outcome_store(args)
    reporter = _install_live_metrics(args)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    json_path = args.json if len(names) == 1 else None
    sections = []
    try:
        for name in names:
            started = time.time()
            print(
                f"[repro] running {name} (scale={args.scale}, jobs={jobs})...",
                file=sys.stderr,
            )
            sections.append(
                _run_experiment(
                    name,
                    args.scale,
                    json_path=json_path,
                    jobs=jobs,
                    journal=args.resume,
                    fidelity=args.fidelity,
                )
            )
            print(
                f"[repro] {name} done in {time.time() - started:.1f}s",
                file=sys.stderr,
            )
            _report_sweep_health(name)
    finally:
        if reporter is not None:
            reporter.stop()
    output = "\n".join(sections)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(output)
        print(f"[repro] wrote {args.output}", file=sys.stderr)
    else:
        print(output)
    return 0


def _install_policy(args) -> None:
    """Map ``--point-timeout``/``--retries`` onto the runner's default
    :class:`~repro.experiments.runner.RunnerPolicy` for this process."""
    from repro.experiments.runner import RunnerPolicy, set_default_policy

    if args.retries < 1:
        raise SystemExit(f"--retries must be >= 1, got {args.retries}")
    set_default_policy(
        RunnerPolicy(point_timeout_s=args.point_timeout, max_attempts=args.retries)
    )


def _install_outcome_store(args) -> None:
    """Map ``--outcome-store`` onto the experiments' default base config,
    so every spec (and through pickling, every worker) carries the path."""
    from repro.experiments.common import set_default_outcome_store

    set_default_outcome_store(getattr(args, "outcome_store", None))


def _install_live_metrics(args):
    """Stand up the ``--live`` pipeline: a real registry (installed as the
    runner default), a JSONL event stream, and a started
    :class:`~repro.obs.live.LiveReporter` rewriting the ``.prom`` snapshot.

    Returns the reporter (caller must ``stop()`` it), or ``None`` when
    ``--live`` is off — the runner then keeps its zero-overhead
    ``NULL_METRICS`` default.
    """
    if not getattr(args, "live", False):
        return None
    from repro.experiments.runner import set_default_metrics
    from repro.obs.live import LiveReporter
    from repro.obs.metrics import MetricsRegistry, MetricsStream

    base = args.resume if args.resume else "sweep"
    stream_path = f"{base}.metrics.jsonl"
    prom_path = f"{base}.prom"
    registry = MetricsRegistry(stream=MetricsStream(stream_path))
    set_default_metrics(registry)
    reporter = LiveReporter(
        registry,
        interval_s=args.live_interval,
        label=getattr(args, "experiment", args.command),
        prom_path=prom_path,
    ).start()
    print(
        f"[repro] live metrics: stream={stream_path} prom={prom_path} "
        f"(every {args.live_interval:g}s)",
        file=sys.stderr,
    )
    return reporter


def _report_sweep_health(name: str) -> None:
    """Echo the last sweep's retry/resume/failure accounting to stderr."""
    from repro.experiments.runner import last_report

    report = last_report()
    if report is None:
        return
    if report.retries or report.timeouts or report.resumed or report.serial_fallbacks:
        print(
            f"[repro] {name}: resumed={report.resumed} retries={report.retries} "
            f"timeouts={report.timeouts} serial_fallbacks={report.serial_fallbacks}",
            file=sys.stderr,
        )


def _parse_jobs(value: str) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``auto``."""
    if value == "auto":
        from repro.experiments.runner import default_jobs

        return default_jobs()
    try:
        jobs = int(value)
    except ValueError:
        raise SystemExit(f"--jobs expects a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _cmd_bench_sweep(args) -> int:
    from repro.experiments.bench import format_summary, run_sweep_benchmark

    jobs = _parse_jobs(args.jobs)
    print(
        f"[repro] benchmarking fig13 sweep (scale={args.scale}, jobs={jobs})...",
        file=sys.stderr,
    )
    payload = run_sweep_benchmark(
        scale=args.scale,
        jobs=jobs,
        output=args.output,
        outcome_store=args.outcome_store,
    )
    print(format_summary(payload))
    print(f"[repro] wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    import json

    from repro.sim.outcome_store import OutcomeStore

    cap_bytes = args.cap_mb << 20 if args.cap_mb is not None else None
    store = OutcomeStore(args.store_dir, cap_bytes=cap_bytes)
    pruned = store.gc() if args.prune else 0
    stats = store.stats()
    if args.prune:
        stats["pruned"] = pruned
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"outcome store: {stats['root']}")
    print(
        f"  {stats['entries']} entries, {stats['bytes']} bytes "
        f"(cap {stats['cap_bytes']})"
    )
    for kind, bucket in sorted(stats["by_kind"].items()):
        print(f"  {kind:>9}: {bucket['entries']} entries, {bucket['bytes']} bytes")
    if args.prune:
        print(f"  pruned {pruned} entries")
    return 0


def _cmd_surrogate(args) -> int:
    import json

    from repro.sim import surrogate

    def emit(report) -> None:
        payload = json.dumps(report, indent=2, sort_keys=True)
        print(payload)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"[repro] wrote {args.output}", file=sys.stderr)

    if args.mode == "fit":
        jobs = _parse_jobs(args.jobs)
        print(
            f"[repro] fitting surrogate on the fig13 grid "
            f"(scale={args.scale}, jobs={jobs})...",
            file=sys.stderr,
        )
        pairs = surrogate.collect_training_pairs(args.scale, jobs=jobs)
        model = surrogate.fit_surrogate(pairs, scale=args.scale)
        model.save(args.model)
        print(f"[repro] wrote {args.model}", file=sys.stderr)
        emit(model.validation)
        return 0 if model.validation["within_bounds"] else 1

    model = surrogate.SurrogateModel.load(args.model)
    if args.mode == "predict":
        predictions = surrogate.predict_grid(
            model, args.workload, args.request_size, scale=args.scale
        )
        emit(
            {
                "workload": args.workload,
                "request_size": args.request_size,
                "scale": args.scale,
                "predicted_total_time_ns": {
                    scheme: round(value, 1)
                    for scheme, value in predictions.items()
                },
            }
        )
        return 0

    # validate
    if args.journal:
        report = surrogate.validate_against_journal(
            model, args.journal, scale=args.scale
        )
    else:
        pairs = surrogate.collect_training_pairs(
            args.scale, jobs=_parse_jobs(args.jobs)
        )
        report = surrogate.validate_pairs(model, pairs)
    emit(report)
    return 0 if report["within_bounds"] else 1


def _cmd_tune(args) -> int:
    import json

    from repro.core.schemes import Scheme
    from repro.experiments.runner import default_metrics
    from repro.experiments.tuner import resolve_budget, tune

    try:
        scheme = Scheme(args.scheme)
    except ValueError:
        raise SystemExit(
            f"unknown scheme {args.scheme!r}; expected one of "
            f"{[s.value for s in Scheme]}"
        )
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if not workloads:
        raise SystemExit("--workloads needs at least one workload name")
    budget = resolve_budget(args.budget)
    jobs = _parse_jobs(args.jobs)
    _install_policy(args)
    _install_outcome_store(args)
    reporter = _install_live_metrics(args)

    surrogate_model = None
    if args.surrogate_model:
        from repro.sim.surrogate import SurrogateModel

        surrogate_model = SurrogateModel.load(args.surrogate_model)

    print(
        f"[repro] tuning {'+'.join(workloads)} under {scheme.label} "
        f"(strategy={args.strategy}, fitness={args.fitness}, "
        f"budget={budget}, scale={args.scale}, seed={args.seed}, "
        f"jobs={jobs})...",
        file=sys.stderr,
    )
    try:
        result = tune(
            workloads,
            scheme=scheme,
            budget=budget,
            strategy=args.strategy,
            fitness=args.fitness,
            weight=args.weight,
            seed=args.seed,
            scale=args.scale,
            request_size=args.request_size,
            jobs=jobs,
            journal=args.resume,
            surrogate_model=surrogate_model,
            surrogate_first=args.surrogate_first or bool(surrogate_model),
            prune_margin=args.prune_margin,
            trajectory=args.trajectory,
            metrics=default_metrics(),
        )
    finally:
        if reporter is not None:
            reporter.stop()

    with open(args.recommend, "w", encoding="utf-8") as fh:
        json.dump(result.recommended(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[repro] wrote {args.trajectory}", file=sys.stderr)
    print(f"[repro] wrote {args.recommend}", file=sys.stderr)

    from repro.experiments.tuner import describe_candidate

    baseline = result.steps[0].candidate if result.steps else {}
    print(
        f"best ({args.fitness}): {result.best_fitness:.6g} at step "
        f"{result.best_step} — "
        f"{describe_candidate(result.best_candidate, baseline)}"
    )
    print(
        f"baseline: {result.baseline_fitness:.6g} "
        f"(improvement {result.improvement:.3f}x); "
        f"{result.executed_points} points executed, "
        f"{result.resumed_points} replayed from the journal, "
        f"{result.pruned_steps} candidates pruned; "
        f"trajectory digest {result.digest[:16]}"
    )
    return 0


def _cmd_tune_report(args) -> int:
    import json

    from repro.experiments.tuner import (
        load_trajectory,
        render_tune_report,
        report_payload,
    )

    header, steps, final = load_trajectory(args.trajectory_file)
    print(render_tune_report(header, steps, final, top=args.top))
    if args.json:
        payload = json.dumps(
            report_payload(header, steps, final), indent=2, sort_keys=True
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"[repro] wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from repro.sim.tracefile import load_trace, save_trace, trace_summary
    from repro.workloads.generator import generate_trace

    if args.summary:
        ops = load_trace(args.workload)
        for key, value in trace_summary(ops).items():
            print(f"{key}: {value}")
        return 0
    trace = generate_trace(
        args.workload,
        n_ops=args.ops,
        request_size=args.request_size,
        footprint=args.footprint,
        seed=args.seed,
    )
    output = args.output or f"{args.workload}.smtr"
    size = save_trace(output, trace.ops)
    print(f"wrote {output}: {len(trace.ops)} ops, {size} bytes")
    return 0


def _cmd_simulate(args) -> int:
    import json

    from repro.core.schemes import Scheme
    from repro.obs import Tracer
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.sim.profiling import profile_run
    from repro.sim.simulator import simulate_workload

    try:
        scheme = Scheme(args.scheme)
    except ValueError:
        raise SystemExit(
            f"unknown scheme {args.scheme!r}; expected one of "
            f"{[s.value for s in Scheme]}"
        )
    tracer = None
    if args.trace or args.trace_jsonl or args.sample_ns is not None:
        tracer = Tracer(sample_interval_ns=args.sample_ns)
    result = simulate_workload(
        args.workload,
        scheme,
        n_ops=args.ops,
        request_size=args.request_size,
        footprint=args.footprint,
        seed=args.seed,
        tracer=tracer,
        fidelity=args.fidelity,
    )
    print(f"{args.workload} under {scheme.label}: {result.summary()}")
    print(f"total time: {result.total_time_ns:.0f} ns")
    if args.profile:
        print(profile_run(result).format())
    if tracer is not None and args.trace:
        n_events = write_chrome_trace(tracer, args.trace)
        print(f"wrote {args.trace}: {n_events} trace events", file=sys.stderr)
    if tracer is not None and args.trace_jsonl:
        n_events = write_jsonl(tracer, args.trace_jsonl)
        print(f"wrote {args.trace_jsonl}: {n_events} events", file=sys.stderr)
    if args.json:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_trace_report(args) -> int:
    from repro.obs.report import render_report_file

    print(render_report_file(args.trace_file, n_buckets=args.buckets))
    return 0


def _cmd_recovery_report(args) -> int:
    import json

    from repro.common.config import SimConfig, MemoryConfig
    from repro.core.recovery_cost import recovery_trace_events, run_recovery_scenario
    from repro.core.schemes import Scheme

    try:
        scheme = Scheme(args.scheme)
    except ValueError:
        raise SystemExit(
            f"unknown scheme {args.scheme!r}; expected one of "
            f"{[s.value for s in Scheme]}"
        )
    base = SimConfig(memory=MemoryConfig(capacity=args.capacity))
    report, recovered, shadow = run_recovery_scenario(
        scheme,
        base_config=base,
        n_txns=args.txns,
        request_size=args.request_size,
        seed=args.seed,
        log_lines=args.log_lines,
        rsr=args.rsr,
        dirty_frac=args.dirty_frac,
    )
    mismatches = recovered.audit_against_shadow(shadow)
    print(f"{scheme.label} recovery ({report.path} path): {report.time_ns:.0f} ns")
    for name, start, end in report.phases:
        print(f"  {name:14s} {end - start:12.1f} ns")
    print(
        f"  reads: {report.nvm_reads} ({report.counter_line_reads} counter), "
        f"writes: {report.nvm_writes}, aes: {report.aes_ops}, "
        f"trials: {report.trial_decryptions}, replay: {report.replay_writes}"
    )
    print(f"  audit: {len(mismatches)} mismatching lines of {len(shadow)} flushed")
    if args.trace:
        from repro.obs import Tracer
        from repro.obs.export import write_chrome_trace

        tracer = Tracer()
        tracer.events.extend(recovery_trace_events(report))
        n_events = write_chrome_trace(tracer, args.trace)
        print(f"wrote {args.trace}: {n_events} trace events", file=sys.stderr)
    if args.json:
        payload = report.to_dict()
        payload["scheme"] = scheme.label
        payload["audit_mismatches"] = len(mismatches)
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text)
                fh.write("\n")
            print(f"wrote {args.json}", file=sys.stderr)
    return len(mismatches) and 1 or 0


if __name__ == "__main__":
    raise SystemExit(main())
