"""SRAM cache models: CPU hierarchy and the on-controller counter cache.

These are *timing and presence* models — tag stores with LRU replacement and
dirty bits. Data payloads are not held here: the functional byte store lives
in :mod:`repro.memory.nvm`, and persist operations carry their payloads from
the transaction layer to the memory controller directly. That split keeps
the hot simulation path allocation-free while remaining faithful to what the
paper measures (hit rates, write-back traffic, flush behaviour).
"""

from repro.cache.counter_cache import CounterCache
from repro.cache.hierarchy import CacheHierarchy, ReadOutcome
from repro.cache.sram import EvictedLine, SetAssociativeCache

__all__ = [
    "CounterCache",
    "CacheHierarchy",
    "ReadOutcome",
    "EvictedLine",
    "SetAssociativeCache",
]
