"""The memory controller's on-chip counter cache.

One cached entry corresponds to one *counter line* — the 64 B line holding
the split counters of one 4 KB data page — so the cache is keyed by **page
index**. A 256 KB, 8-way cache holds 4096 counter lines, covering 16 MB of
data.

Two write policies (paper Sections 2.4 and 3.2):

* **write-through** (SuperMem): every counter update is immediately pushed
  to NVM through the write queue. Entries are never dirty, so a crash can
  never lose counter state that matters — whatever is in NVM (plus the
  ADR-protected write queue) is current.
* **write-back** (the WB baseline): updates stay in SRAM; NVM is written
  only on dirty eviction. Without a battery, a crash silently discards
  dirty counters and leaves NVM counters stale — this is the
  inconsistency of paper Figure 4b. The *ideal* WB baseline assumes a
  battery big enough to flush everything (``battery_backed=True``).

The cache tracks presence/dirtiness and hit statistics; counter *values*
live in :class:`repro.core.system.CounterStore`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import CounterCacheConfig, CounterCacheMode
from repro.common.stats import Stats
from repro.cache.sram import SetAssociativeCache
from repro.obs.tracer import NULL_TRACER


class CounterCache:
    """Presence/dirty model of the counter cache.

    Parameters
    ----------
    config:
        Geometry plus :class:`CounterCacheMode` and battery flag.
    stats:
        Shared statistics registry; reports under namespace ``"cc"``.
    """

    def __init__(self, config: CounterCacheConfig, stats: Stats, tracer=NULL_TRACER):
        self.config = config
        self._stats = stats
        self._tracer = tracer
        self._cache = SetAssociativeCache(config, stats, "cc")
        # Prebuilt keys into Stats.raw() — access() runs once per data
        # write (and once per read-path OTP), so the inc() call overhead
        # is measurable; semantics are identical.
        self._vals = stats.raw()
        self._k_updates = ("cc", "updates")
        self._k_writebacks = ("cc", "writebacks")
        self._is_wt = config.mode is CounterCacheMode.WRITE_THROUGH

    @property
    def mode(self) -> CounterCacheMode:
        return self.config.mode

    @property
    def write_through(self) -> bool:
        return self.config.mode is CounterCacheMode.WRITE_THROUGH

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def access(
        self, page: int, update: bool, t: float = 0.0
    ) -> tuple[bool, Optional[int], bool]:
        """Touch the counter line of ``page``.

        Parameters
        ----------
        page:
            Data page whose counter line is needed.
        update:
            True when the access modifies the counters (a data write bumps
            a minor counter); False for read-path OTP generation.
        t:
            Simulated time of the access; used only for event tracing
            (the cache itself is timing-free).

        Returns
        -------
        (hit, writeback_page, fetch_needed)
            ``hit``
                Whether the counter line was already cached (determines the
                read path's OTP latency overlap).
            ``writeback_page``
                In write-back mode, a dirty victim page whose counter line
                must now be written to NVM; ``None`` otherwise.
            ``fetch_needed``
                Whether the counter line must first be fetched from NVM
                (always true on a miss — counters cannot be used partially).
        """
        dirty = update and not self._is_wt
        hit, evicted = self._cache.access(page, write=dirty)
        if update:
            self._vals[self._k_updates] += 1
        if self._tracer.enabled:
            self._tracer.cc_access(t, page, hit, update)
            if evicted is not None:
                self._tracer.cc_evict(t, evicted.line, evicted.dirty)

        writeback_page = None
        if evicted is not None and evicted.dirty:
            writeback_page = evicted.line
            self._vals[self._k_writebacks] += 1
        return hit, writeback_page, not hit

    def is_dirty(self, page: int) -> bool:
        """Whether the cached counter line of ``page`` is dirty (WB only)."""
        return self._cache.is_dirty(page)

    def mark_clean(self, page: int) -> bool:
        """Clear the dirty bit after the counter line was persisted
        through some other path (SCA's counter-atomic pair, Osiris's
        stop-loss write). Returns whether it was dirty."""
        return self._cache.clean(page)

    def contains(self, page: int) -> bool:
        return self._cache.contains(page)

    # ------------------------------------------------------------------
    # Crash behaviour
    # ------------------------------------------------------------------

    def crash(self) -> tuple[List[int], List[int]]:
        """Power failure: drop all SRAM state.

        Returns
        -------
        (flushed, lost)
            ``flushed`` — dirty pages saved by the battery (ideal WB);
            ``lost`` — dirty pages whose NVM counter copies are now stale
            (the unrecoverable case the paper motivates with).
            Write-through caches return two empty lists: nothing dirty can
            exist.
        """
        dirty = self._cache.flush_all()
        if self.config.battery_backed:
            return dirty, []
        return [], dirty

    def drain_dirty(self) -> List[int]:
        """Cleanly write back every dirty line (orderly shutdown)."""
        dirty = list(self._cache.dirty_lines())
        for page in dirty:
            self._cache.clean(page)
        return dirty

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self._stats.ratio("cc", "hits", "accesses")

    def __len__(self) -> int:
        return len(self._cache)
