"""Three-level CPU cache hierarchy with persistence instructions.

Models the paper's L1 (32 KB) / L2 (512 KB) / shared L3 (4 MB) stack as a
mostly-inclusive write-back, write-allocate hierarchy:

* a fill at level *N* also fills levels above it;
* a dirty victim evicted from L1/L2 is installed dirty in the next level;
* a dirty victim evicted from L3 becomes an NVM write-back (which, in an
  encrypted NVM, triggers the whole counter machinery like any other
  write — evictions are not exempt from encryption);
* ``clwb`` writes the newest dirty copy back toward memory and *cleans*
  the cached copies without invalidating them (matching the instruction the
  paper uses for persistence);
* ``clflush`` additionally invalidates.

For the multi-core experiments, each core owns a private
:class:`CacheHierarchy` for L1/L2 while L3 is shared — see
:mod:`repro.sim.multicore`, which passes a shared L3 instance in.

The walk runs once per load/store, three lookups deep, so the class is
``__slots__``-ed and :meth:`access` returns a plain ``(hit_level,
latency_ns, writebacks)`` tuple without allocating a result object (the
write-back list is lazily allocated — the common case is none).
:meth:`read`/:meth:`write` wrap the same walk in a :class:`ReadOutcome`
for callers that prefer names; :meth:`read_ref`/:meth:`write_ref` keep the
original per-level implementation as the differential oracle and slow
benchmark leg.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.common.config import CacheConfig, TimingConfig
from repro.common.stats import Stats
from repro.cache.sram import SetAssociativeCache

#: Shared empty write-back container returned by the fast walk when no
#: dirty line left the last level — callers only iterate it, never mutate.
_EMPTY_WB: Tuple[int, ...] = ()


class ReadOutcome(NamedTuple):
    """Result of driving one load or store through the hierarchy.

    Attributes
    ----------
    hit_level:
        1, 2 or 3 for an SRAM hit; ``None`` when the request must go to
        memory.
    latency_ns:
        Total SRAM lookup latency on the way to the hit (or to the miss
        determination). Memory latency is added by the caller because it
        depends on the memory controller's state.
    memory_writebacks:
        Line indices whose dirty copies were evicted from the last level
        and must now be written to NVM.
    """

    hit_level: Optional[int]
    latency_ns: float
    memory_writebacks: List[int]


class CacheHierarchy:
    """L1/L2/L3 stack for one core.

    Parameters
    ----------
    l1, l2, l3:
        Geometry of each level.
    timing:
        Converts per-level cycle latencies to nanoseconds.
    stats:
        Shared statistics registry (namespaces ``l1``/``l2``/``l3``).
    shared_l3:
        Optional pre-built L3 shared among cores; when given, ``l3`` config
        is ignored.
    name_prefix:
        Prepended to stat namespaces so per-core caches stay separable
        (e.g. ``"core0."``).
    """

    __slots__ = (
        "_timing",
        "_stats",
        "_vals",
        "l1",
        "l2",
        "l3",
        "_levels",
        "_latencies_ns",
        "_k_memory_writebacks",
        "_k_clwb",
        "_k_clwb_dirty",
        "_k_clflush",
    )

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        l3: CacheConfig,
        timing: TimingConfig,
        stats: Stats,
        shared_l3: Optional[SetAssociativeCache] = None,
        name_prefix: str = "",
    ):
        self._timing = timing
        self._stats = stats
        self._vals = stats.raw()
        self.l1 = SetAssociativeCache(l1, stats, f"{name_prefix}l1")
        self.l2 = SetAssociativeCache(l2, stats, f"{name_prefix}l2")
        # An explicit None check: SetAssociativeCache defines __len__, so an
        # empty shared L3 would be falsy under ``shared_l3 or ...``.
        self.l3 = (
            shared_l3
            if shared_l3 is not None
            else SetAssociativeCache(l3, stats, "l3")
        )
        self._levels = [self.l1, self.l2, self.l3]
        self._latencies_ns = [
            timing.cycles_to_ns(l1.latency_cycles),
            timing.cycles_to_ns(l2.latency_cycles),
            timing.cycles_to_ns(shared_l3.config.latency_cycles if shared_l3 else l3.latency_cycles),
        ]
        self._k_memory_writebacks = ("hierarchy", "memory_writebacks")
        self._k_clwb = ("hierarchy", "clwb")
        self._k_clwb_dirty = ("hierarchy", "clwb_dirty")
        self._k_clflush = ("hierarchy", "clflush")

    # ------------------------------------------------------------------
    # Loads and stores
    # ------------------------------------------------------------------

    def access(self, line: int, write: bool):
        """Drive one load/store; returns ``(hit_level, latency_ns, wbs)``.

        The flat fast path: identical walk order, fills, evictions, and
        statistics as :meth:`read_ref`/:meth:`write_ref`, but with level
        lists in locals, no outcome object, and the write-back list only
        allocated once a dirty line actually leaves L3.
        """
        levels = self._levels
        lats = self._latencies_ns
        latency = 0.0
        wb: Optional[List[int]] = None
        for depth in range(3):
            latency += lats[depth]
            hit, evicted = levels[depth].access(line, write and depth == 0)
            if evicted is not None and evicted.dirty:
                if wb is None:
                    wb = []
                self._push_down(depth, evicted.line, wb)
            if hit:
                for d in range(depth - 1, -1, -1):
                    ev = levels[d].fill(line, write and d == 0)
                    if ev is not None and ev.dirty:
                        if wb is None:
                            wb = []
                        self._push_down(d, ev.line, wb)
                return depth + 1, latency, (wb if wb is not None else _EMPTY_WB)
        # Missed everywhere: the access() calls above already filled each
        # level (miss-fill), so only the outcome remains to be reported.
        return None, latency, (wb if wb is not None else _EMPTY_WB)

    def read(self, line: int) -> ReadOutcome:
        """Drive a load; fill upper levels on lower-level hits."""
        hit_level, latency, wb = self.access(line, False)
        return ReadOutcome(hit_level, latency, list(wb))

    def write(self, line: int) -> ReadOutcome:
        """Drive a store (write-allocate; line becomes dirty in L1)."""
        hit_level, latency, wb = self.access(line, True)
        return ReadOutcome(hit_level, latency, list(wb))

    def read_ref(self, line: int) -> ReadOutcome:
        """Reference load path (unhoisted walk, per-level outcome)."""
        return self._access_ref(line, write=False)

    def write_ref(self, line: int) -> ReadOutcome:
        """Reference store path (unhoisted walk, per-level outcome)."""
        return self._access_ref(line, write=True)

    def _access_ref(self, line: int, write: bool) -> ReadOutcome:
        latency = 0.0
        writebacks: List[int] = []
        for depth, cache in enumerate(self._levels):
            latency += self._latencies_ns[depth]
            hit, evicted = cache.access_ref(line, write=(write and depth == 0))
            if evicted is not None:
                self._handle_eviction(depth, evicted, writebacks)
            if hit:
                self._fill_above(line, depth, write, writebacks)
                return ReadOutcome(
                    hit_level=depth + 1,
                    latency_ns=latency,
                    memory_writebacks=writebacks,
                )
        return ReadOutcome(hit_level=None, latency_ns=latency, memory_writebacks=writebacks)

    def _fill_above(
        self, line: int, hit_depth: int, write: bool, writebacks: List[int]
    ) -> None:
        """After a hit at ``hit_depth``, install the line in closer levels."""
        for depth in range(hit_depth - 1, -1, -1):
            evicted = self._levels[depth].fill(line, dirty=(write and depth == 0))
            if evicted is not None:
                self._handle_eviction(depth, evicted, writebacks)

    def _push_down(self, depth: int, victim: int, writebacks: List[int]) -> None:
        """Install a known-dirty victim one level down (or emit to memory)."""
        levels = self._levels
        while depth + 1 < 3:
            depth += 1
            inner = levels[depth].fill(victim, dirty=True)
            if inner is None or not inner.dirty:
                return
            victim = inner.line
        writebacks.append(victim)
        self._vals[self._k_memory_writebacks] += 1

    def _handle_eviction(self, depth: int, evicted, writebacks: List[int]) -> None:
        """Push a dirty victim down one level (or out to memory from L3)."""
        if not evicted.dirty:
            return
        if depth + 1 < len(self._levels):
            inner = self._levels[depth + 1].fill(evicted.line, dirty=True)
            if inner is not None:
                self._handle_eviction(depth + 1, inner, writebacks)
        else:
            writebacks.append(evicted.line)
            self._stats.inc("hierarchy", "memory_writebacks")

    # ------------------------------------------------------------------
    # Persistence instructions
    # ------------------------------------------------------------------

    def clwb(self, line: int) -> bool:
        """Write the line back toward memory, keeping it cached clean.

        Returns whether any level held a dirty copy — i.e. whether the
        memory controller must receive a write. (Flushing a clean or absent
        line is a no-op at the memory, exactly like hardware clwb.)
        """
        l1, l2, l3 = self._levels
        was_dirty = l1.clean(line)
        was_dirty = l2.clean(line) or was_dirty
        was_dirty = l3.clean(line) or was_dirty
        vals = self._vals
        vals[self._k_clwb] += 1
        if was_dirty:
            vals[self._k_clwb_dirty] += 1
        return was_dirty

    def clflush(self, line: int) -> bool:
        """Invalidate the line everywhere; returns whether it was dirty."""
        was_dirty = False
        for cache in self._levels:
            was_dirty |= cache.invalidate(line)
        self._vals[self._k_clflush] += 1
        return was_dirty

    def lose_all_volatile_state(self) -> List[int]:
        """Power failure: drop every level; return dirty lines that died."""
        lost: List[int] = []
        for cache in self._levels:
            lost.extend(cache.flush_all())
        return sorted(set(lost))

    @property
    def total_sram_latency_ns(self) -> float:
        """Latency of missing all the way through (L1+L2+L3 lookups)."""
        return sum(self._latencies_ns)
