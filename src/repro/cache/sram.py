"""Generic set-associative SRAM cache with LRU replacement.

The cache tracks line *presence* and *dirtiness* keyed by line index.
Payloads are not stored (see :mod:`repro.cache`). The same class backs the
CPU's L1/L2/L3 and the memory controller's counter cache.

Sets are ``dict`` instances whose insertion order doubles as the LRU stack
(Python dicts preserve insertion order; re-inserting moves a key to the
most-recently-used position in O(1)).

This class is on the per-op critical path (three lookups per load/store),
so it is written for speed: ``__slots__`` keeps attribute access on the
fast path, stat keys are prebuilt tuples bumped directly in the shared
``Stats.raw()`` dict, and the evicted-line record is a NamedTuple rather
than a dataclass. :meth:`access_ref` preserves the straightforward
implementation as a differential oracle (and as the deliberately unhoisted
``serial`` benchmark leg — see PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional

from repro.common.config import CacheConfig
from repro.common.stats import Stats


class EvictedLine(NamedTuple):
    """A line pushed out of a cache by a fill."""

    line: int
    dirty: bool


class SetAssociativeCache:
    """An LRU set-associative tag store.

    Parameters
    ----------
    config:
        Geometry (size, associativity, line size, latency).
    stats:
        Shared statistics registry.
    name:
        Namespace under which this cache reports stats (e.g. ``"l1"``).
    """

    __slots__ = (
        "config",
        "name",
        "_stats",
        "_vals",
        "_n_sets",
        "_assoc",
        "_sets",
        "_k_accesses",
        "_k_hits",
        "_k_misses",
        "_k_evictions",
        "_k_dirty_evictions",
    )

    def __init__(self, config: CacheConfig, stats: Stats, name: str):
        self.config = config
        self.name = name
        self._stats = stats
        self._vals = stats.raw()
        self._n_sets = config.n_sets
        self._assoc = config.assoc
        # set index -> {line: dirty}; dict order is LRU order (oldest first)
        self._sets: list[Dict[int, bool]] = [dict() for _ in range(self._n_sets)]
        # Prebuilt (namespace, counter) keys: raw()[key] += 1 has the exact
        # semantics of stats.inc without the call and tuple allocation.
        self._k_accesses = (name, "accesses")
        self._k_hits = (name, "hits")
        self._k_misses = (name, "misses")
        self._k_evictions = (name, "evictions")
        self._k_dirty_evictions = (name, "dirty_evictions")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def _set_of(self, line: int) -> Dict[int, bool]:
        return self._sets[line % self._n_sets]

    def contains(self, line: int) -> bool:
        """Presence test without touching LRU state or statistics."""
        return line in self._sets[line % self._n_sets]

    def is_dirty(self, line: int) -> bool:
        """Dirty test without touching LRU state or statistics."""
        return self._sets[line % self._n_sets].get(line, False)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """Iterate over every resident line (order unspecified)."""
        for cache_set in self._sets:
            yield from cache_set

    def dirty_lines(self) -> Iterator[int]:
        """Iterate over every dirty resident line."""
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    yield line

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, line: int, write: bool) -> tuple[bool, Optional[EvictedLine]]:
        """Look up ``line``, filling on a miss.

        Returns ``(hit, evicted)`` where ``evicted`` is the victim pushed
        out by the fill (``None`` on a hit or when the set had room). A
        write marks the line dirty; a read fill inserts it clean.
        """
        cache_set = self._sets[line % self._n_sets]
        vals = self._vals
        vals[self._k_accesses] += 1
        if line in cache_set:
            vals[self._k_hits] += 1
            dirty = cache_set.pop(line) or write
            cache_set[line] = dirty  # move to MRU
            return True, None

        vals[self._k_misses] += 1
        evicted = self._fill(cache_set, line, write)
        return False, evicted

    def access_ref(
        self, line: int, write: bool
    ) -> tuple[bool, Optional[EvictedLine]]:
        """Reference access path: identical semantics, no hoisted lookups.

        Kept as the differential oracle for tests/sim/test_hotpath.py and
        as the slow leg of the hot-path benchmark ratio.
        """
        cache_set = self._set_of(line)
        self._stats.inc(self.name, "accesses")
        if line in cache_set:
            self._stats.inc(self.name, "hits")
            dirty = cache_set.pop(line) or write
            cache_set[line] = dirty  # move to MRU
            return True, None

        self._stats.inc(self.name, "misses")
        evicted = self._fill_ref(cache_set, line, write)
        return False, evicted

    def _fill(
        self, cache_set: Dict[int, bool], line: int, dirty: bool
    ) -> Optional[EvictedLine]:
        evicted = None
        if len(cache_set) >= self._assoc:
            victim_line = next(iter(cache_set))  # LRU = oldest insertion
            victim_dirty = cache_set.pop(victim_line)
            evicted = EvictedLine(victim_line, victim_dirty)
            vals = self._vals
            vals[self._k_evictions] += 1
            if victim_dirty:
                vals[self._k_dirty_evictions] += 1
        cache_set[line] = dirty
        return evicted

    def _fill_ref(
        self, cache_set: Dict[int, bool], line: int, dirty: bool
    ) -> Optional[EvictedLine]:
        evicted = None
        if len(cache_set) >= self._assoc:
            victim_line = next(iter(cache_set))  # LRU = oldest insertion
            victim_dirty = cache_set.pop(victim_line)
            evicted = EvictedLine(line=victim_line, dirty=victim_dirty)
            self._stats.inc(self.name, "evictions")
            if victim_dirty:
                self._stats.inc(self.name, "dirty_evictions")
        cache_set[line] = dirty
        return evicted

    def fill(self, line: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Insert ``line`` without counting an access (e.g. inclusive fill)."""
        cache_set = self._sets[line % self._n_sets]
        if line in cache_set:
            cache_set[line] = cache_set.pop(line) or dirty
            return None
        return self._fill(cache_set, line, dirty)

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line; returns False if absent."""
        cache_set = self._set_of(line)
        if line not in cache_set:
            return False
        cache_set.pop(line)
        cache_set[line] = True
        return True

    # ------------------------------------------------------------------
    # Flush / invalidate (clwb, clflush semantics)
    # ------------------------------------------------------------------

    def clean(self, line: int) -> bool:
        """Clear the dirty bit, keeping the line resident (clwb).

        Returns whether the line was dirty (i.e. whether a write-back to
        the next level is required).
        """
        cache_set = self._set_of(line)
        if line not in cache_set:
            return False
        was_dirty = cache_set[line]
        if was_dirty:
            cache_set.pop(line)
            cache_set[line] = False
        return was_dirty

    def invalidate(self, line: int) -> bool:
        """Drop the line entirely (clflush). Returns whether it was dirty."""
        cache_set = self._set_of(line)
        if line not in cache_set:
            return False
        return cache_set.pop(line)

    def flush_all(self) -> list[int]:
        """Invalidate everything; return the dirty lines that were lost.

        Used by crash modelling: a power failure discards all SRAM state,
        and the returned list is exactly the data that never reached the
        durability domain.
        """
        dirty = list(self.dirty_lines())
        for cache_set in self._sets:
            cache_set.clear()
        return dirty
