"""The memory controller's on-chip integrity-tree node cache.

One cached entry corresponds to one *tree node* — a 16 B hash of a
Bonsai Merkle counter-tree level (four nodes share a 64 B NVM line; see
:class:`repro.crypto.tree_timed.TreeGeometry`) — so the cache is keyed
by **node id**. It follows the ``counter_cache.py`` conventions (a
:class:`~repro.cache.sram.SetAssociativeCache` tag store reporting under
one stats namespace, here ``"it"``), but is always **write-back**: the
whole point of caching tree nodes (Freij et al., *Streamlining Integrity
Tree Updates*) is that a dirty cached ancestor terminates the leaf→root
update walk — the pending update will be folded into the ancestor's
eventual rehash — so dirtiness must accumulate in SRAM.

Crash behaviour mirrors the write-back counter cache without a battery:
dirty nodes die with the SRAM. That is *safe* for integrity trees (the
tree is reconstructible from the persisted counter region; see
``RecoveredSystem.rebuild_integrity_tree``), which is why the scheme
stays crash-consistent while the counter cache itself must remain
write-through.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.sram import SetAssociativeCache
from repro.common.config import CacheConfig
from repro.common.stats import Stats


class TreeNodeCache:
    """Presence/dirty model of the integrity-tree node cache.

    Parameters
    ----------
    config:
        Geometry (size, associativity, latency).
    stats:
        Shared statistics registry; reports under namespace ``"it"``.
    """

    def __init__(self, config: CacheConfig, stats: Stats):
        self.config = config
        self._stats = stats
        self._cache = SetAssociativeCache(config, stats, "it")
        self._vals = stats.raw()
        self._k_updates = ("it", "node_updates")
        self._k_writebacks = ("it", "node_writebacks")
        self._k_coalesced = ("it", "coalesced_updates")

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def access(self, node: int, update: bool) -> tuple[bool, Optional[int], bool]:
        """Touch tree node ``node``.

        Parameters
        ----------
        node:
            Tree node id (see ``TreeGeometry.node_id``).
        update:
            True when the access rehashes the node (write-path walk);
            False for a read-path verification fill.

        Returns
        -------
        (hit, writeback_node, fetch_needed)
            ``hit``
                Whether the node was already cached.
            ``writeback_node``
                A dirty victim node that must now be written to its NVM
                line; ``None`` otherwise.
            ``fetch_needed``
                Whether the node must first be fetched from NVM (always
                true on a miss).
        """
        hit, evicted = self._cache.access(node, write=update)
        if update:
            self._vals[self._k_updates] += 1
        writeback_node = None
        if evicted is not None and evicted.dirty:
            writeback_node = evicted.line
            self._vals[self._k_writebacks] += 1
        return hit, writeback_node, not hit

    def is_dirty(self, node: int) -> bool:
        """Whether ``node`` is cached dirty — the coalesced-stop test."""
        return self._cache.is_dirty(node)

    def note_coalesced(self) -> None:
        """Count one update walk terminated at a dirty ancestor."""
        self._vals[self._k_coalesced] += 1

    def contains(self, node: int) -> bool:
        return self._cache.contains(node)

    # ------------------------------------------------------------------
    # Crash behaviour
    # ------------------------------------------------------------------

    def crash(self) -> List[int]:
        """Power failure: drop all SRAM state; returns the dirty nodes
        whose NVM copies are now stale (recovery rebuilds them)."""
        return self._cache.flush_all()

    def drain_dirty(self) -> List[int]:
        """Cleanly write back every dirty node (orderly shutdown)."""
        dirty = list(self._cache.dirty_lines())
        for node in dirty:
            self._cache.clean(node)
        return dirty

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self._stats.ratio("it", "hits", "accesses")

    def __len__(self) -> int:
        return len(self._cache)
