"""Shared infrastructure: addressing, configuration, statistics, errors.

This package holds everything that is not specific to one subsystem of the
SuperMem reproduction: the physical address arithmetic used by caches and the
memory controller, the dataclass-based configuration mirroring the paper's
Table 2, the statistics registry every component reports into, and the
exception hierarchy.
"""

from repro.common.address import AddressMap, CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.config import (
    CacheConfig,
    CounterCacheMode,
    CounterPlacementPolicy,
    MemoryConfig,
    SimConfig,
    TimingConfig,
)
from repro.common.errors import (
    ConfigError,
    CrashInjected,
    ReproError,
    SecurityError,
    SimulationError,
)
from repro.common.stats import Stats

__all__ = [
    "AddressMap",
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "CacheConfig",
    "CounterCacheMode",
    "CounterPlacementPolicy",
    "MemoryConfig",
    "SimConfig",
    "TimingConfig",
    "ConfigError",
    "CrashInjected",
    "ReproError",
    "SecurityError",
    "SimulationError",
    "Stats",
]
