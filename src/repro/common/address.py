"""Physical address arithmetic for the simulated NVM system.

The simulated machine uses a flat physical address space. Three granularities
matter throughout the reproduction:

* **cache line** (64 B) — the unit of CPU cache residency, of memory reads
  and writes, and of counter storage (one 64 B line holds the split counters
  of one whole page, see :mod:`repro.crypto.counters`);
* **page** (4 KB) — the unit of the split-counter scheme: one 64-bit major
  counter plus 64 seven-bit minor counters cover one page;
* **bank** — the unit of NVM parallelism. Following the paper's premise that
  "the operating system usually allocates continuous memory space for the
  same application which may locate in the adjacent banks" (Section 3.3),
  contiguous physical *pages* interleave across banks::

      bank(page) = page mod n_banks

  so a multi-page allocation naturally spreads over adjacent banks, while
  the 64 lines inside one page all live in the same bank. This is the
  mapping that makes the paper's Figure 8 examples come out: three
  consecutive data pages land in banks 0, 1, 2.

Inside a bank, lines map to rows of ``row_size`` bytes for the row-buffer
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AddressError, ConfigError

#: Size of one cache line / memory line in bytes. Fixed by the paper's
#: architecture (64-bit x86, 64 B lines) and relied on by the split-counter
#: layout (64 minor counters x 7 bits + 64-bit major = 512 bits = 64 B).
CACHE_LINE_SIZE = 64

#: Size of one page in bytes. The split-counter scheme shares one major
#: counter across a 4 KB page.
PAGE_SIZE = 4096

#: Number of cache lines per page (64 for 64 B lines and 4 KB pages).
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE


#: Supported bank-interleaving policies.
BANK_MAPPINGS = ("page", "line", "contiguous")


@dataclass(frozen=True)
class AddressMap:
    """Maps physical addresses to lines, pages, banks and rows.

    Parameters
    ----------
    capacity:
        Total NVM capacity in bytes. Must be a positive multiple of
        ``n_banks * PAGE_SIZE``.
    n_banks:
        Number of independently schedulable NVM banks (8 in the paper).
    row_size:
        Bytes per DRAM/PCM row for the row-buffer model (default 4 KB,
        i.e. one row holds one page's worth of lines).
    bank_mapping:
        Interleaving policy (ablation knob):

        * ``"page"`` (default, the reproduction's model): consecutive
          pages rotate across banks — one page (and its counter line's
          coverage) lives in one bank, contiguous allocations span
          adjacent banks;
        * ``"line"``: consecutive lines rotate across banks (maximum
          intra-page parallelism). NOTE: a page's counter line then has
          no single "home" data bank, so counter placement uses the
          page's nominal bank — an idealisation usable for timing
          ablations only;
        * ``"contiguous"``: each bank owns one contiguous slab
          (``addr // bank_size``) — the no-interleaving strawman.

    Examples
    --------
    >>> amap = AddressMap(capacity=8 * (1 << 20), n_banks=8)
    >>> amap.bank_of_line(amap.line_of_addr(0))
    0
    >>> amap.bank_of_line(amap.line_of_addr(PAGE_SIZE))
    1
    """

    capacity: int
    n_banks: int = 8
    row_size: int = PAGE_SIZE
    bank_mapping: str = "page"

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {self.capacity}")
        if self.n_banks <= 0:
            raise ConfigError(f"n_banks must be positive, got {self.n_banks}")
        if self.capacity % (self.n_banks * PAGE_SIZE) != 0:
            raise ConfigError(
                "capacity must be a multiple of n_banks * PAGE_SIZE "
                f"({self.n_banks * PAGE_SIZE}), got {self.capacity}"
            )
        if self.row_size % CACHE_LINE_SIZE != 0:
            raise ConfigError(
                f"row_size must be a multiple of {CACHE_LINE_SIZE}, got {self.row_size}"
            )
        if self.bank_mapping not in BANK_MAPPINGS:
            raise ConfigError(
                f"bank_mapping must be one of {BANK_MAPPINGS}, got "
                f"{self.bank_mapping!r}"
            )
        # bank_of_line() sits on the per-persisted-line hot path and is a
        # pure function of this (frozen) map, so memoize it. Not a field:
        # it never participates in eq/hash/repr.
        object.__setattr__(self, "_bank_of_line_memo", {})

    # ------------------------------------------------------------------
    # Size-derived properties
    # ------------------------------------------------------------------

    @property
    def n_lines(self) -> int:
        """Total number of cache lines in the address space."""
        return self.capacity // CACHE_LINE_SIZE

    @property
    def n_pages(self) -> int:
        """Total number of pages in the address space."""
        return self.capacity // PAGE_SIZE

    @property
    def bank_size(self) -> int:
        """Bytes of storage owned by each bank."""
        return self.capacity // self.n_banks

    # ------------------------------------------------------------------
    # Granularity conversions
    # ------------------------------------------------------------------

    def check_addr(self, addr: int) -> int:
        """Validate that ``addr`` lies inside the address space.

        Returns the address unchanged so the call can be used inline.
        """
        if not 0 <= addr < self.capacity:
            raise AddressError(
                f"address {addr:#x} outside physical space [0, {self.capacity:#x})"
            )
        return addr

    def line_of_addr(self, addr: int) -> int:
        """Return the line index containing byte address ``addr``."""
        self.check_addr(addr)
        return addr // CACHE_LINE_SIZE

    def line_addr(self, line: int) -> int:
        """Return the byte address of the first byte of line ``line``."""
        return line * CACHE_LINE_SIZE

    def align_line(self, addr: int) -> int:
        """Round ``addr`` down to its line boundary."""
        self.check_addr(addr)
        return addr - (addr % CACHE_LINE_SIZE)

    def page_of_addr(self, addr: int) -> int:
        """Return the page index containing byte address ``addr``."""
        self.check_addr(addr)
        return addr // PAGE_SIZE

    def page_of_line(self, line: int) -> int:
        """Return the page index containing line ``line``."""
        return line // LINES_PER_PAGE

    def line_in_page(self, line: int) -> int:
        """Return the index (0..63) of ``line`` within its page.

        This is the index of the line's minor counter inside the page's
        counter line.
        """
        return line % LINES_PER_PAGE

    def lines_of_page(self, page: int) -> range:
        """Return the range of line indices belonging to ``page``."""
        first = page * LINES_PER_PAGE
        return range(first, first + LINES_PER_PAGE)

    # ------------------------------------------------------------------
    # Bank / row mapping
    # ------------------------------------------------------------------

    def bank_of_page(self, page: int) -> int:
        """Nominal bank of a page (used for counter placement)."""
        if self.bank_mapping == "contiguous":
            return (page * PAGE_SIZE) // self.bank_size
        return page % self.n_banks

    def bank_of_line(self, line: int) -> int:
        """Bank serving line ``line`` under the configured interleaving."""
        memo = self._bank_of_line_memo
        bank = memo.get(line)
        if bank is None:
            if self.bank_mapping == "line":
                bank = line % self.n_banks
            elif self.bank_mapping == "contiguous":
                bank = min(
                    self.n_banks - 1, (line * CACHE_LINE_SIZE) // self.bank_size
                )
            else:
                bank = self.bank_of_page(self.page_of_line(line))
            memo[line] = bank
        return bank

    def bank_of_addr(self, addr: int) -> int:
        """Bank serving byte address ``addr``."""
        return self.bank_of_line(self.line_of_addr(addr))

    def row_of_line(self, line: int) -> int:
        """Row identifier (within the whole device) of line ``line``.

        Rows are used only for the per-bank row-buffer model, so a global
        row id is sufficient: two lines share a row buffer entry iff they
        have the same row id (which implies the same bank under the
        page-interleaved mapping when ``row_size == PAGE_SIZE``).
        """
        return (line * CACHE_LINE_SIZE) // self.row_size
