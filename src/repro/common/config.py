"""Configuration dataclasses mirroring the paper's Table 2.

The defaults reproduce the evaluated system:

=====================  =====================================================
Processor              8 cores, x86-64, 2 GHz
Private L1 cache       32 KB, 8-way, LRU, 2-cycle latency
Private L2 cache       512 KB, 8-way, LRU, 16-cycle latency
Shared L3 cache        4 MB, 8-way, LRU, 30-cycle latency
Main memory            8 GB PCM, 8 banks
PCM latency model      tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns
Write queue            32 entries
Counter cache          256 KB, 8-way, LRU, 8-cycle latency
AES engine             24-cycle pipelined encryption latency
=====================  =====================================================

Only the NVM *capacity* defaults smaller than the paper's 8 GB (the pure
Python functional store would otherwise be needlessly large); every
experiment scales workload footprints with capacity so the ratios that drive
the results (footprint vs. counter-cache reach, footprint vs. bank count)
are preserved. Pass ``capacity=8 << 30`` for paper-scale geometry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.address import AddressMap, CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import ConfigError


class CounterCacheMode(enum.Enum):
    """Write policy of the on-controller counter cache.

    ``WRITE_THROUGH``
        Every counter update is immediately appended to the NVM write queue
        (SuperMem's policy, Section 3.2). Crash consistency is structural.
    ``WRITE_BACK``
        Counter lines are written to NVM only on dirty eviction. Used for
        the paper's *ideal* WB baseline, which additionally assumes a
        battery large enough to flush the whole counter cache on a failure
        (``battery_backed=True`` in :class:`CounterCacheConfig`).
    """

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


class CounterPlacementPolicy(enum.Enum):
    """Where the counter line of a data page is stored (paper Figure 8)."""

    #: All counter lines in one dedicated bank (Fig. 8a, baseline).
    SINGLE_BANK = "single-bank"
    #: Counter line in the same bank as its data page (Fig. 8b).
    SAME_BANK = "same-bank"
    #: Counter line in bank ``(data_bank + n_banks // 2) % n_banks``
    #: (Fig. 8c, SuperMem's XBank scheme).
    XBANK = "xbank"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one set-associative SRAM cache."""

    size: int
    assoc: int
    latency_cycles: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0:
            raise ConfigError(f"cache size/assoc must be positive: {self}")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ConfigError(
                f"cache size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line_size})"
            )
        if self.latency_cycles < 0:
            raise ConfigError(f"latency must be >= 0: {self}")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size // (self.assoc * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total line capacity."""
        return self.size // self.line_size


@dataclass(frozen=True)
class CounterCacheConfig(CacheConfig):
    """Counter-cache geometry plus its write policy.

    A 256 KB counter cache holds 4096 counter lines, each covering one 4 KB
    page, so its *reach* is 16 MB of data.
    """

    mode: CounterCacheMode = CounterCacheMode.WRITE_THROUGH
    #: Only meaningful for WRITE_BACK: model the paper's "ideal" battery
    #: that flushes all dirty counter lines on a crash.
    battery_backed: bool = False

    @property
    def reach_bytes(self) -> int:
        """Bytes of data whose counters fit in the cache simultaneously."""
        return self.n_lines * PAGE_SIZE


@dataclass(frozen=True)
class TimingConfig:
    """Latency parameters of the simulated machine, in nanoseconds.

    PCM timings follow the paper's latency model (itself from Xu et al.):
    ``tRCD``/``tCL``/``tCWD``/``tFAW``/``tWTR``/``tWR`` =
    48/15/13/50/7.5/300 ns. Reads occupy a bank for ``tRCD + tCL`` on a
    row-buffer miss and ``tCL`` on a hit; writes occupy it for
    ``tRCD + tCWD + tWR`` (the 300 ns PCM cell write dominates — this
    asymmetry is what makes write traffic the bottleneck).
    """

    cpu_freq_ghz: float = 2.0
    trcd_ns: float = 48.0
    tcl_ns: float = 15.0
    tcwd_ns: float = 13.0
    tfaw_ns: float = 50.0
    twtr_ns: float = 7.5
    twr_ns: float = 300.0
    #: AES pipeline latency for one OTP, 24 cycles at 2 GHz = 12 ns.
    aes_cycles: int = 24
    #: Hash-engine latency for one integrity-tree node rehash or MAC
    #: (SHA-like digest over a 64 B block), 80 cycles at 2 GHz = 40 ns.
    #: Only charged when ``SimConfig.integrity_tree`` is enabled.
    hash_cycles: int = 80
    #: Command/bus overhead serialising request issue at the controller.
    bus_ns: float = 2.0
    #: Cost of issuing one clwb (besides any stall on a full write queue).
    clwb_issue_ns: float = 1.0
    #: Cost of an sfence once all prior flushes have been appended.
    sfence_ns: float = 2.5
    #: Fixed per-trace-op CPU "compute" cost outside the memory system.
    cpu_op_ns: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "cpu_freq_ghz",
            "trcd_ns",
            "tcl_ns",
            "tcwd_ns",
            "tfaw_ns",
            "twtr_ns",
            "twr_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.aes_cycles < 0:
            raise ConfigError("aes_cycles must be >= 0")
        if self.hash_cycles < 0:
            raise ConfigError("hash_cycles must be >= 0")

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert CPU cycles to nanoseconds at the configured frequency."""
        return cycles / self.cpu_freq_ghz

    @property
    def aes_ns(self) -> float:
        """OTP generation latency in nanoseconds."""
        return self.cycles_to_ns(self.aes_cycles)

    @property
    def hash_ns(self) -> float:
        """Integrity-tree node rehash / MAC latency in nanoseconds."""
        return self.cycles_to_ns(self.hash_cycles)

    @property
    def read_service_ns(self) -> float:
        """Bank occupancy of a row-buffer-miss read."""
        return self.trcd_ns + self.tcl_ns

    @property
    def read_hit_service_ns(self) -> float:
        """Bank occupancy of a row-buffer-hit read."""
        return self.tcl_ns

    @property
    def write_service_ns(self) -> float:
        """Bank occupancy of a write (PCM cell write, no row-buffer help)."""
        return self.trcd_ns + self.tcwd_ns + self.twr_ns


@dataclass(frozen=True)
class MemoryConfig:
    """NVM geometry and memory-controller structure."""

    capacity: int = 64 << 20
    n_banks: int = 8
    #: Memory channels: each channel owns an equal share of the banks and
    #: its own command bus, so request issue serialises per channel
    #: rather than globally. The paper's platform is single-channel.
    n_channels: int = 1
    write_queue_entries: int = 32
    #: Write-drain watermarks (entries). The controller lets the queue
    #: fill to ``high`` before draining, then drains down to ``low`` —
    #: standard write-buffering, and the residency window that gives
    #: counter write coalescing its reach. ``None`` = 3/4 and 1/4 of the
    #: queue depth.
    wq_high_watermark: int | None = None
    wq_low_watermark: int | None = None
    #: Write-drain issue order.
    #:
    #: ``"defer-counters"`` (default): FR-FCFS over data writes, with
    #: counter writes yielding to any data write that can start within
    #: ``counter_defer_ns``. This is the scheduling embodiment of the
    #: paper's "delay the counter cache line write for merging more
    #: writes" (Section 3.4.3): counter entries linger at the queue tail
    #: through a flush burst, maximising CWC's coalescing window, and
    #: drain in the gaps.
    #: ``"frfcfs"``: earliest-feasible-start across all writes (ablation —
    #: counters issue eagerly to their idle bank, cutting CWC's reach).
    #: ``"fifo"``: strict append order with head-of-line blocking
    #: (ablation — destroys bank parallelism for page-local bursts).
    drain_policy: str = "defer-counters"
    #: How long a ready counter write waits for an upcoming data write
    #: before claiming the bus (``None`` = one write service time).
    counter_defer_ns: float | None = None
    #: Bank interleaving: "page" (default, the paper's premise), "line",
    #: or "contiguous" (see :class:`repro.common.address.AddressMap`).
    bank_mapping: str = "page"
    row_size: int = PAGE_SIZE
    #: Enable the per-bank row buffer model for reads.
    row_buffer: bool = True
    #: Enforce the four-activate-window (tFAW) rank constraint.
    enforce_tfaw: bool = True
    #: Enforce write-to-read turnaround (tWTR) per bank.
    enforce_twtr: bool = True

    def __post_init__(self) -> None:
        if self.write_queue_entries < 2:
            # The atomicity register appends data+counter as a unit and
            # therefore needs at least two slots.
            raise ConfigError("write queue needs at least 2 entries")
        if self.n_channels < 1 or self.n_banks % self.n_channels != 0:
            raise ConfigError(
                f"n_banks ({self.n_banks}) must divide evenly into "
                f"n_channels ({self.n_channels})"
            )

    def address_map(self) -> AddressMap:
        """Build the :class:`AddressMap` for this geometry."""
        return AddressMap(
            capacity=self.capacity,
            n_banks=self.n_banks,
            row_size=self.row_size,
            bank_mapping=self.bank_mapping,
        )


def _default_l1() -> CacheConfig:
    return CacheConfig(size=32 << 10, assoc=8, latency_cycles=2)


def _default_l2() -> CacheConfig:
    return CacheConfig(size=512 << 10, assoc=8, latency_cycles=16)


def _default_l3() -> CacheConfig:
    return CacheConfig(size=4 << 20, assoc=8, latency_cycles=30)


def _default_counter_cache() -> CounterCacheConfig:
    return CounterCacheConfig(size=256 << 10, assoc=8, latency_cycles=8)


def _default_tree_cache() -> CacheConfig:
    """On-controller integrity-tree node cache (Freij et al. geometry)."""
    return CacheConfig(size=16 << 10, assoc=8, latency_cycles=8)


@dataclass(frozen=True)
class SimConfig:
    """Top-level configuration of one simulated system.

    The scheme-level knobs (``counter_cache.mode``, ``counter_placement``,
    ``cwc_enabled``, ``encrypted``) are normally set through
    :func:`repro.core.schemes.scheme_config` rather than by hand.
    """

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    l1: CacheConfig = field(default_factory=_default_l1)
    l2: CacheConfig = field(default_factory=_default_l2)
    l3: CacheConfig = field(default_factory=_default_l3)
    counter_cache: CounterCacheConfig = field(default_factory=_default_counter_cache)
    #: Geometry of the integrity-tree node cache (only instantiated when
    #: ``integrity_tree`` is enabled).
    tree_cache: CacheConfig = field(default_factory=_default_tree_cache)

    #: Whether the NVM is encrypted at all (False = the paper's Unsec).
    encrypted: bool = True
    #: Price integrity metadata on the timed path: per-line MACs plus a
    #: Bonsai-style Merkle counter tree with a write-back node cache and
    #: coalesced ancestor updates (Freij et al.; the SuperMem+BMT scheme).
    #: Requires an encrypted, write-through counter organisation.
    integrity_tree: bool = False
    #: Counter line placement (paper Figure 8).
    counter_placement: CounterPlacementPolicy = CounterPlacementPolicy.SINGLE_BANK
    #: Counter write coalescing in the write queue (Section 3.4).
    cwc_enabled: bool = False
    #: CWC removal policy: "remove-older" (paper) or "merge-in-place"
    #: (ablation; see :mod:`repro.memory.write_queue`).
    cwc_policy: str = "remove-older"
    #: Bank offset used by XBank placement; ``None`` = ``n_banks // 2``
    #: (the paper's choice). Exposed for the offset-sweep ablation.
    xbank_offset: int | None = None
    #: Stage data+counter in the atomicity register so both are appended to
    #: the write queue as one unit (Section 3.2, Figure 7). Disabling this
    #: models the broken baseline of Figure 6 for crash experiments.
    atomicity_register: bool = True
    #: ADR protection for the re-encryption status register (Section 3.4.4).
    rsr_adr: bool = True
    #: Minor-counter width in bits; 7 in the split-counter scheme.
    minor_counter_bits: int = 7
    #: Selective counter-atomicity (Liu et al.): a write-back counter
    #: cache, but *persistent* writes (clwb-originated) carry their
    #: counter into the ADR domain as an atomic pair, while plain cache
    #: evictions leave counters dirty in SRAM. Models the paper's closest
    #: software/hardware competitor without its programming primitives.
    sca_mode: bool = False
    #: Osiris-style relaxed counter persistence (Ye et al.): counters are
    #: persisted only every N-th update of a counter line ("stop-loss");
    #: recovery re-derives lost counters by trial decryption against a
    #: per-line ECC/MAC check. 0 = strict persistence (disabled).
    osiris_stop_loss: int = 0
    #: Store actual bytes (functional mode). Timing-only runs skip payload
    #: encryption for speed but still model every latency.
    functional: bool = True
    #: Simulation fidelity. ``"full"`` keeps byte-level crypto and NVM
    #: payload storage available (the ``functional`` knob then decides
    #: whether traces actually carry payloads). ``"timing"`` skips all
    #: functional byte work — no pad generation, no XOR, no DurableImage
    #: mutation — while charging identical latencies, so Stats/SimResult
    #: are byte-for-byte the same as a ``"full"`` run of the same trace
    #: (asserted by ``tests/sim/test_fidelity.py``). ``"timing"`` forces
    #: ``functional`` off; crash/recovery/Table-1 harnesses force
    #: ``"full"`` because they audit recovered plaintext.
    fidelity: str = "full"
    #: Select the optimized hot-path implementations (flattened cache
    #: walk, early-exit drain-candidate scan, pad memo). ``False`` runs
    #: the retained reference implementations — bit-identical results
    #: (asserted by ``tests/sim/test_hotpath.py``), used as the
    #: differential-testing oracle and the ``serial`` benchmark baseline.
    hot_path: bool = True
    #: Replay traces through the chunked batched loop
    #: (:meth:`repro.sim.engine.CoreEngine.run_batched` over the flat op
    #: arrays of :mod:`repro.sim.batch`) instead of the per-op scalar
    #: ``step`` dispatch. Bit-identical results (asserted by
    #: ``tests/sim/test_batch.py``); only effective when ``hot_path`` is
    #: also on (the reference model is always scalar). ``False`` is the
    #: ``hotpath`` benchmark leg, isolating the batching win.
    batched_replay: bool = True
    #: Directory of the cross-process on-disk outcome store
    #: (:mod:`repro.sim.outcome_store`); ``None`` disables the disk tier.
    #: A harness knob, not a model knob: it cannot change simulated
    #: results (store hits are bit-identical to the compute path) and is
    #: therefore excluded from journal content digests
    #: (:func:`repro.experiments.journal.spec_digest`).
    outcome_store: str | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.minor_counter_bits <= 16:
            raise ConfigError("minor_counter_bits must be in [1, 16]")
        if self.fidelity not in ("full", "timing"):
            raise ConfigError(
                f"fidelity must be 'full' or 'timing', got {self.fidelity!r}"
            )
        if self.fidelity == "timing" and self.functional:
            # Timing fidelity is exactly "functional byte work off"; make
            # the coupling structural so the two knobs cannot disagree.
            object.__setattr__(self, "functional", False)

    def address_map(self) -> AddressMap:
        """Shortcut for ``self.memory.address_map()``."""
        return self.memory.address_map()
