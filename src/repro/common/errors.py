"""Exception hierarchy for the SuperMem reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one handler while still
distinguishing configuration mistakes from simulation-time faults.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state.

    This indicates a bug in the model (or misuse of internal APIs), not a
    property of the simulated system.
    """


class SecurityError(ReproError):
    """A security invariant of counter-mode encryption was violated.

    Raised, for example, when a one-time pad would be reused (same address
    and counter encrypting two different writes) or when decryption is
    attempted with a counter that does not match the ciphertext.
    """


class AddressError(ReproError):
    """An address fell outside the configured physical address space."""


class SweepError(ReproError):
    """One or more sweep points exhausted their retry budget.

    Raised by :func:`repro.experiments.runner.run_points` after the sweep
    *completed* — every healthy point ran to the end; the failures listed
    here poisoned only themselves. The structured
    :class:`~repro.experiments.runner.PointFailure` records ride along so
    callers can report or re-drive exactly the failed points.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        lines = ", ".join(
            f"#{f.index} {f.label} ({f.exc_type} after {f.attempts} attempts)"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed after retries: {lines}"
        )


class CrashInjected(ReproError):
    """Control-flow exception thrown when an injected crash point fires.

    Crash-injection experiments register a :class:`~repro.core.crash.CrashPlan`
    with the memory system; when the trigger condition is met the system
    raises ``CrashInjected`` to unwind to the experiment harness, which then
    inspects the durable state (NVM contents plus the ADR-protected write
    queue) exactly as a real power failure would leave it.
    """

    def __init__(self, point: str = "", detail: str = ""):
        self.point = point
        self.detail = detail
        message = f"crash injected at {point!r}" if point else "crash injected"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
