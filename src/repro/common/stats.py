"""Hierarchical statistics registry.

Every component of the simulated system (caches, write queue, banks, the
encryption engine, transaction layer) records counters and accumulators into
one shared :class:`Stats` object, namespaced by component. Experiments read
the totals out at the end of a run; nothing in the timing model depends on
the statistics, so recording can never perturb results.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class Stats:
    """A flat ``(namespace, counter) -> value`` store with helpers.

    Counter values are numeric (int or float). Namespaces are free-form
    strings such as ``"wq"`` or ``"bank.3"``.

    Examples
    --------
    >>> s = Stats()
    >>> s.inc("wq", "appends")
    >>> s.inc("wq", "appends", 2)
    >>> s.get("wq", "appends")
    3
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple[str, str], float] = defaultdict(float)

    def raw(self) -> Dict[Tuple[str, str], float]:
        """The live underlying ``defaultdict``.

        Hot components prebuild their ``(namespace, counter)`` key tuples
        once and bump ``raw()[key] += n`` directly, which has exactly the
        semantics of :meth:`inc` without a method call and tuple allocation
        per event. Mutating the returned mapping *is* mutating this Stats.
        """
        return self._values

    def inc(self, namespace: str, counter: str, amount: float = 1) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        self._values[(namespace, counter)] += amount

    def set(self, namespace: str, counter: str, value: float) -> None:
        """Overwrite a counter with ``value``."""
        self._values[(namespace, counter)] = value

    def maximize(self, namespace: str, counter: str, value: float) -> None:
        """Keep the running maximum of ``value`` in the counter."""
        key = (namespace, counter)
        if key not in self._values or value > self._values[key]:
            self._values[key] = value

    def get(self, namespace: str, counter: str, default: float = 0) -> float:
        """Read a counter, returning ``default`` when absent."""
        value = self._values.get((namespace, counter), default)
        return int(value) if float(value).is_integer() else value

    def namespace(self, namespace: str) -> Dict[str, float]:
        """All counters of one namespace as a plain dict."""
        return {
            counter: value
            for (space, counter), value in self._values.items()
            if space == namespace
        }

    def ratio(self, namespace: str, num: str, den: str) -> float:
        """``num / den`` within a namespace, 0.0 when the denominator is 0."""
        d = self._values.get((namespace, den), 0)
        if not d:
            return 0.0
        return self._values.get((namespace, num), 0) / d

    def merge(self, other: "Stats") -> None:
        """Add every counter of ``other`` into this object."""
        for key, value in other._values.items():
            self._values[key] += value

    def reset(self) -> None:
        """Drop all counters."""
        self._values.clear()

    def snapshot(self) -> Mapping[Tuple[str, str], float]:
        """An immutable copy of the raw store (for assertions in tests)."""
        return dict(self._values)

    def __iter__(self) -> Iterator[Tuple[str, str, float]]:
        for (space, counter), value in sorted(self._values.items()):
            yield space, counter, value

    def format(self, prefix: str = "") -> str:
        """Human-readable dump, optionally filtered by namespace prefix."""
        lines = []
        for space, counter, value in self:
            if not space.startswith(prefix):
                continue
            if float(value).is_integer():
                lines.append(f"{space}.{counter} = {int(value)}")
            else:
                lines.append(f"{space}.{counter} = {value:.4f}")
        return "\n".join(lines)
