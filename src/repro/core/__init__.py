"""SuperMem's core: scheme assembly, the secure memory system, crash/recovery.

* :mod:`repro.core.schemes` — the six evaluated configurations (Unsec, WB,
  WT, WT+CWC, WT+XBank, SuperMem) as config transformers;
* :mod:`repro.core.system` — :class:`SecureMemorySystem`, the
  application-facing memory system: encrypted writes with the atomicity
  register, write-through/-back counter handling, encrypted reads with
  counter-cache overlap, minor-counter overflow handling;
* :mod:`repro.core.reencrypt` — the re-encryption status register (RSR) and
  page re-encryption (Section 3.4.4);
* :mod:`repro.core.crash` — crash-point injection and the durable image a
  power failure leaves behind;
* :mod:`repro.core.recovery` — rebuilding counters and plaintext from a
  durable image, including RSR resume.
"""

from repro.core.crash import CrashController, DurableImage
from repro.core.osiris import OsirisRecovery, OsirisRecoveryReport
from repro.core.recovery import RecoveredSystem
from repro.core.reencrypt import RSRRecord
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem

__all__ = [
    "CrashController",
    "DurableImage",
    "OsirisRecovery",
    "OsirisRecoveryReport",
    "RecoveredSystem",
    "RSRRecord",
    "Scheme",
    "scheme_config",
    "SecureMemorySystem",
]
