"""Crash injection and the durable image of a power failure.

Crash experiments arm a :class:`CrashController` with a named *crash point*
(for example ``"wt-no-register-gap"``, the window of paper Figure 6 between
the counter append and the data append). Components call
:meth:`CrashController.probe` at their vulnerable points; when the armed
point fires, :class:`~repro.common.errors.CrashInjected` unwinds to the
harness, which then asks the memory system for its :class:`DurableImage` —
precisely what a real power failure leaves:

* NVM contents,
* the write queue's entries (drained by the ADR battery),
* the re-encryption status register when it is ADR-protected,
* the counter cache's dirty lines *only* under the ideal battery-backed
  write-back configuration.

Everything else (CPU caches, a write-through counter cache's contents, the
AES staging register) dies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.errors import CrashInjected
from repro.core.reencrypt import RSRRecord

#: Every crash point probed anywhere in the tree, grouped by layer. The
#: fuzz harness (tests/integration/test_crash_fuzz.py) and the docs-drift
#: test both assert this registry equals the set of ``probe("...")`` call
#: sites found in the source — add a probe, add it here.
PROBE_POINTS = (
    # core/system.py — the secure-write persist path
    "after-data-append",
    "after-pair-append",
    "wt-no-register-gap",
    "reencrypt-line-done",
    # txn/transaction.py — transaction stage boundaries
    "txn-after-prepare",
    "txn-after-mutate",
    "txn-after-commit",
    "txn-after-commit-record",
)


class CrashController:
    """Arms one crash point and fires on its n-th occurrence."""

    def __init__(self) -> None:
        self._armed_point: Optional[str] = None
        self._armed_occurrence: int = 1
        self._seen: Dict[str, int] = defaultdict(int)
        self.fired: bool = False

    def arm(self, point: str, occurrence: int = 1) -> None:
        """Crash at the ``occurrence``-th hit of ``point`` *after arming*.

        The occurrence count restarts at arm time (1-based), so a point
        that fired during setup traffic does not consume the budget.
        """
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self._armed_point = point
        self._armed_occurrence = occurrence
        self._seen[point] = 0
        self.fired = False

    def disarm(self) -> None:
        self._armed_point = None

    @property
    def armed(self) -> bool:
        """Whether any crash point is currently armed.

        The batched-replay fast chain consults this once per run: with
        nothing armed, :meth:`probe` can never fire and skipping it is
        unobservable (occurrence counts are only meaningful to crash
        harnesses, which always arm first).
        """
        return self._armed_point is not None

    def probe(self, point: str, detail: str = "") -> None:
        """Called by components at vulnerable points; may raise."""
        self._seen[point] += 1
        if (
            self._armed_point == point
            and self._seen[point] == self._armed_occurrence
        ):
            self.fired = True
            self._armed_point = None
            raise CrashInjected(point, detail)

    def occurrences(self, point: str) -> int:
        """How many times ``point`` has been probed."""
        return self._seen[point]


@dataclass
class DurableImage:
    """Everything that survives a power failure."""

    #: Persistent line images (data region and counter region) after the
    #: ADR battery drained the write queue.
    nvm: Dict[int, bytes] = field(default_factory=dict)
    #: The RSR contents, present only when a re-encryption was in flight
    #: and the RSR is ADR-protected.
    rsr: Optional[RSRRecord] = None
    #: Configuration of the crashed system (recovery needs the key,
    #: placement policy and counter geometry).
    config: Optional[SimConfig] = None
    #: Per-line ECC/MAC check bits (Osiris-style recovery only; the bits
    #: physically live in the NVM array and persist with their lines).
    macs: Dict[int, bytes] = field(default_factory=dict)
    #: Root of the integrity tree at crash time (``Scheme.SUPERMEM_BMT``
    #: only). Models the on-chip root register, which real hardware keeps
    #: in a small NVRAM/fuse cell across power loss; recovery rebuilds
    #: the tree from the persisted counter region and must reproduce it.
    tree_root: Optional[bytes] = None
    #: Cost-accounting hook: called with the line index on every
    #: :meth:`line` access. The recovery-cost model installs a
    #: :class:`~repro.core.recovery_cost.RecoveryMeter` charge here so
    #: every recovery-path read of the durable image is billed a
    #: PCM-latency-model bank read. Excluded from equality (two images
    #: with the same durable contents are the same image).
    on_read: Optional[Callable[[int], None]] = field(default=None, compare=False)

    def line(self, line_index: int) -> Optional[bytes]:
        """Persistent image of one line, or None if never written."""
        if self.on_read is not None:
            self.on_read(line_index)
        return self.nvm.get(line_index)

    def written_data_lines(self, n_data_lines: int) -> List[int]:
        """Sorted data-region line indices with a persistent image."""
        return sorted(line for line in self.nvm if line < n_data_lines)

    def written_counter_lines(self, n_data_lines: int) -> List[int]:
        """Sorted counter-region line indices with a persistent image."""
        return sorted(line for line in self.nvm if line >= n_data_lines)
