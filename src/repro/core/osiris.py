"""Osiris-style counter recovery (Ye et al., Section 6 related work).

Osiris relaxes counter persistence: counters are persisted only every N-th
update (the *stop-loss* period), and after a crash the true counter of a
line is re-derived by **trial decryption** — incrementing the stale stored
counter until the line's ECC/MAC check bits validate. The stored counter
can be at most N-1 updates behind, so at most N candidates are tried per
line.

The paper's criticism (Section 6) is that this recovery "incurs long
counter recovery time ... and the recovery time linearly increases with the
memory size", while SuperMem's strict persistence needs no counter
recovery at all. :class:`OsirisRecovery` makes that claim measurable: it
reports the number of trial decryptions a full-memory counter scan costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.address import AddressMap
from repro.common.errors import SimulationError
from repro.core.crash import DurableImage
from repro.core.recovery import RecoveredSystem
from repro.core.system import _line_mac


@dataclass
class OsirisRecoveryReport:
    """Outcome of an Osiris counter-recovery scan."""

    #: Lines whose counter was already correct in NVM.
    clean_lines: int = 0
    #: Lines whose counter had to be advanced (stale stored counter).
    repaired_lines: int = 0
    #: Lines whose counter could not be recovered within the stop-loss
    #: budget (should be zero when the stop-loss invariant held).
    failed_lines: List[int] = field(default_factory=list)
    #: Total trial decryptions performed — the recovery-time proxy that
    #: grows linearly with the amount of written memory.
    trial_decryptions: int = 0
    #: Recovered ``line -> counter`` map.
    counters: Dict[int, int] = field(default_factory=dict)


class OsirisRecovery:
    """Trial-decryption counter recovery over a durable image."""

    def __init__(self, image: DurableImage, meter=None):
        if image.config is None:
            raise SimulationError("durable image carries no configuration")
        if image.config.osiris_stop_loss <= 0:
            raise SimulationError("image was not produced by an Osiris system")
        self.image = image
        self.meter = meter
        self.stop_loss = image.config.osiris_stop_loss
        self.amap: AddressMap = image.config.address_map()
        # Reuse the standard recovery machinery for stored counters and
        # the cipher; only the repair loop is Osiris-specific. The shared
        # meter bills the stored-counter fetches and ciphertext reads.
        self._base = RecoveredSystem(image, meter=meter)

    def recover(self) -> OsirisRecoveryReport:
        """Scan every written data line and re-derive its counter."""
        report = OsirisRecoveryReport()
        cipher = self._base.cipher
        if cipher is None:
            raise SimulationError("Osiris recovery requires an encrypted image")
        for line in self.image.written_data_lines(self.amap.n_lines):
            ciphertext = self.image.nvm[line]
            if self.meter is not None:
                # The scan reads each written line image once; each trial
                # then occupies the AES pipeline (the stored-counter fetch
                # is billed by the base RecoveredSystem).
                self.meter.nvm_read(line)
            mac = self.image.macs.get(line)
            if mac is None:
                continue  # never written through the Osiris path
            stored = self._base.counter_of_line(line)
            recovered = None
            for delta in range(self.stop_loss + 1):
                report.trial_decryptions += 1
                if self.meter is not None:
                    self.meter.aes()
                candidate = stored + delta
                plaintext = cipher.decrypt(line, candidate, ciphertext)
                if _line_mac(plaintext) == mac:
                    recovered = candidate
                    break
            if recovered is None:
                report.failed_lines.append(line)
                continue
            report.counters[line] = recovered
            if recovered == stored:
                report.clean_lines += 1
            else:
                report.repaired_lines += 1
            if recovered != stored and self.meter is not None:
                # A repaired counter must be persisted back before normal
                # operation resumes.
                self.meter.nvm_write(self.amap.n_lines + self.amap.page_of_line(line))
        return report

    def plaintext_of(self, line: int, report: OsirisRecoveryReport) -> bytes:
        """Decrypt ``line`` using the recovered counter map."""
        ciphertext = self.image.nvm.get(line)
        if ciphertext is None:
            from repro.memory.nvm import ZERO_LINE

            return ZERO_LINE
        counter = report.counters.get(line)
        if counter is None:
            counter = self._base.counter_of_line(line)
        assert self._base.cipher is not None
        return self._base.cipher.decrypt(line, counter, ciphertext)
