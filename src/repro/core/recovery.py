"""Post-crash recovery: rebuilding counters and plaintext from NVM.

After a power failure, the durable state is a :class:`~repro.core.crash.
DurableImage`: NVM line images (data region + counter region) and, when a
page re-encryption was in flight under an ADR-protected RSR, the RSR
record. :class:`RecoveredSystem` reconstructs the decryption view:

* counter blocks are parsed from the counter-region images;
* for the page named by the RSR, *done* lines decrypt under the new major
  (``old_major + 1``) while *pending* lines decrypt under the old major
  with the minors still present in the image — then
  :meth:`RecoveredSystem.resume_reencryption` finishes the interrupted
  job exactly as Section 3.4.4 describes;
* :meth:`RecoveredSystem.plaintext_of` is the recovery-time read primitive
  the transaction layer's log replay builds on.

A recovered line is *consistent* when its stored counter actually matches
the pad its ciphertext was produced with; with SuperMem's write-through +
atomicity-register design this holds for every line, which is what the
Table 1 experiments check end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.common.address import AddressMap, LINES_PER_PAGE
from repro.common.errors import SimulationError
from repro.crypto.counters import CounterBlock
from repro.crypto.otp import LineCipher
from repro.core.crash import DurableImage
from repro.memory.nvm import ZERO_LINE


class RecoveredSystem:
    """Read-side view of a crashed (or cleanly shut down) secure NVM.

    When a :class:`~repro.core.recovery_cost.RecoveryMeter` is supplied,
    every recovery action is billed the PCM latency model's cost: a bank
    read per line image fetched, a bank read per counter line the first
    time it is touched (after which its block lives in recovery SRAM),
    AES latency per pad derivation, and a bank write per line installed
    by the log replay. Without a meter the behaviour is unchanged — the
    correctness experiments (Table 1, crash storms) pay nothing.
    """

    def __init__(self, image: DurableImage, meter=None):
        if image.config is None:
            raise SimulationError("durable image carries no configuration")
        self.image = image
        self.config = image.config
        self.amap: AddressMap = self.config.address_map()
        self.cipher: Optional[LineCipher] = (
            LineCipher() if self.config.encrypted else None
        )
        self.meter = meter
        self._nvm: Dict[int, bytes] = dict(image.nvm)
        self._blocks: Dict[int, CounterBlock] = {}
        #: Lines rewritten by :meth:`apply_replay`; consulted before the
        #: durable image and read for free (they live in recovery SRAM).
        self._overlay: Dict[int, bytes] = {}
        #: Counter lines already fetched (and cached) by this recovery.
        self._fetched_counter_lines: Set[int] = set()
        #: Set by :meth:`rebuild_integrity_tree` (SuperMem+BMT recovery).
        self.rebuilt_tree = None
        self._parse_counter_region()

    # ------------------------------------------------------------------
    # Cost accounting (no-ops without a meter)
    # ------------------------------------------------------------------

    def _charge_read(self, line: int) -> None:
        if self.meter is not None:
            self.meter.nvm_read(line, counter=False)

    def _charge_counter_fetch(self, page: int) -> None:
        if self.meter is None:
            return
        counter_line = self._counter_line_of_page(page)
        if counter_line not in self._fetched_counter_lines:
            self._fetched_counter_lines.add(counter_line)
            self.meter.nvm_read(counter_line, counter=True)

    def _charge_aes(self, n: int = 1) -> None:
        if self.meter is not None:
            self.meter.aes(n)

    def _charge_write(self, line: int) -> None:
        if self.meter is not None:
            self.meter.nvm_write(line)

    # ------------------------------------------------------------------
    # Counter reconstruction
    # ------------------------------------------------------------------

    def _counter_line_of_page(self, page: int) -> int:
        return self.amap.n_lines + page

    def _parse_counter_region(self) -> None:
        # Bounded above: lines past ``base + n_pages`` belong to the
        # integrity-tree node region, not to any page's counter block.
        base = self.amap.n_lines
        limit = base + self.amap.n_pages
        for line, payload in self._nvm.items():
            if base <= line < limit:
                self._blocks[line - base] = CounterBlock.from_bytes(
                    payload, minor_bits=self.config.minor_counter_bits
                )

    def counter_block(self, page: int) -> CounterBlock:
        """The persisted counter block of ``page`` (zeros if never written)."""
        block = self._blocks.get(page)
        if block is None:
            block = CounterBlock(minor_bits=self.config.minor_counter_bits)
            self._blocks[page] = block
        return block

    def counter_of_line(self, line: int) -> int:
        """Decryption counter of ``line``, honouring an in-flight RSR."""
        page = self.amap.page_of_line(line)
        slot = self.amap.line_in_page(line)
        self._charge_counter_fetch(page)
        block = self.counter_block(page)
        rsr = self.image.rsr
        if rsr is not None and rsr.page == page:
            new_major = rsr.old_major + 1
            bits = self.config.minor_counter_bits
            if rsr.done[slot]:
                return (new_major << bits) | block.minors[slot]
            return (rsr.old_major << bits) | block.minors[slot]
        return block.encryption_counter(slot)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def raw_line(self, line: int) -> Optional[bytes]:
        """Persistent (possibly ciphertext) image, None if never written."""
        return self._nvm.get(line)

    def plaintext_of(self, line: int) -> bytes:
        """Decrypted content of ``line``; never-written lines read zero.

        Note this *always* returns bytes: with a stale or lost counter the
        result is garbage, not an error — exactly like real hardware. The
        experiments detect inconsistency by comparing against the shadow
        plaintext the workload tracked.
        """
        replayed = self._overlay.get(line)
        if replayed is not None:
            return replayed
        # Recovery cannot know a line is empty without fetching it: the
        # read (and, when encrypted, the pad derivation) is billed whether
        # or not an image exists — this is what makes a log *region* scan
        # cost its full size, not just its occupied prefix.
        self._charge_read(line)
        ciphertext = self._nvm.get(line)
        if self.cipher is None:
            return ciphertext if ciphertext is not None else ZERO_LINE
        self._charge_aes()
        counter = self.counter_of_line(line)
        if ciphertext is None:
            return ZERO_LINE
        return self.cipher.decrypt(line, counter, ciphertext)

    # ------------------------------------------------------------------
    # Integrity-tree rebuild (Scheme.SUPERMEM_BMT)
    # ------------------------------------------------------------------

    def rebuild_integrity_tree(self) -> Tuple[int, int, bytes]:
        """Rebuild the Bonsai counter tree from the persisted counter region.

        A crash drops every dirty node of the on-chip tree cache, so the
        NVM node region is stale; the tree is reconstructed bottom-up from
        the counter lines that *are* persisted (write-through guarantees
        they all are). Each persisted counter line costs one bank read
        plus one leaf hash; each distinct touched ancestor (and the root)
        costs one hash. The rebuilt tree is kept on ``self.rebuilt_tree``
        so audits can :meth:`~repro.crypto.integrity.MerkleCounterTree.
        verify_path` individual leaves.

        Returns ``(leaves_rebuilt, nodes_rehashed, root)``; the caller
        compares ``root`` against ``DurableImage.tree_root``.
        """
        from repro.crypto.integrity import MerkleCounterTree
        from repro.crypto.tree_timed import TreeGeometry

        n_pages = self.amap.n_pages
        base = self.amap.n_lines
        tree = MerkleCounterTree(n_pages)
        geom = TreeGeometry(n_pages)
        touched_ancestors: Set[int] = set()
        leaves = 0
        for line in sorted(self._nvm):
            if not base <= line < base + n_pages:
                continue
            page = line - base
            if self.meter is not None:
                self.meter.nvm_read(line, counter=True)
            tree.update_leaf(page, self._nvm[line])
            leaves += 1
            touched_ancestors.update(geom.ancestors(page))
        # A bottom-up rebuild hashes every touched internal node exactly
        # once (memoised), plus the root register.
        nodes_rehashed = len(touched_ancestors) + 1
        if self.meter is not None:
            self.meter.hash(leaves + nodes_rehashed)
        self.rebuilt_tree = tree
        return leaves, nodes_rehashed, tree.root

    # ------------------------------------------------------------------
    # RSR resume (finish an interrupted page re-encryption)
    # ------------------------------------------------------------------

    def resume_reencryption(self) -> int:
        """Complete the page re-encryption the crash interrupted.

        Returns the number of lines that were re-encrypted during resume
        (0 when no RSR was in flight). Afterwards every line of the page
        is encrypted under the new major counter and the RSR is cleared.
        """
        rsr = self.image.rsr
        if rsr is None:
            return 0
        if self.cipher is None:
            raise SimulationError("RSR present on an unencrypted system")
        page = rsr.page
        self._charge_counter_fetch(page)
        block = self.counter_block(page)
        new_major = rsr.old_major + 1
        bits = self.config.minor_counter_bits
        resumed = 0
        pending = []
        for slot in rsr.pending_slots():
            line = self.amap.lines_of_page(page)[slot]
            old_counter = (rsr.old_major << bits) | block.minors[slot]
            pending.append((slot, line, old_counter, self._nvm.get(line)))
        # Batch all old-counter pad derivations for the pending scan up
        # front (one engine dispatch instead of per-line); the meter
        # charges below still land per line, in the original order.
        plain_iter = iter(
            self.cipher.decrypt_lines(
                (line, ctr, ct) for _, line, ctr, ct in pending if ct is not None
            )
        )
        for slot, line, old_counter, ciphertext in pending:
            if ciphertext is None:
                plaintext = ZERO_LINE
            else:
                self._charge_read(line)
                self._charge_aes()
                plaintext = next(plain_iter)
            block.minors[slot] = 0
            new_counter = new_major << bits
            self._charge_aes()
            self._nvm[line] = self.cipher.encrypt(line, new_counter, plaintext)
            self._charge_write(line)
            rsr.mark_done(slot)
            resumed += 1
        block.major = new_major
        self._nvm[self._counter_line_of_page(page)] = block.to_bytes()
        self._charge_write(self._counter_line_of_page(page))
        self.image.rsr = None
        return resumed

    # ------------------------------------------------------------------
    # Log replay installation
    # ------------------------------------------------------------------

    def apply_replay(self, report) -> int:
        """Install a log replay's restored view over the durable image.

        ``report`` is the :class:`~repro.txn.transaction.RecoveryReport`
        of :func:`~repro.txn.transaction.recover_data_view`: its ``view``
        holds every line the undo/redo replay rewrote. Each installed
        line is billed one pad derivation plus one NVM line write (the
        replay must persist the restored data); subsequent
        :meth:`plaintext_of` reads of an installed line are free — the
        restored plaintext sits in recovery SRAM.

        Returns the number of lines installed.
        """
        installed = 0
        for line in sorted(report.view):
            self._overlay[line] = report.view[line]
            self._charge_aes()
            self._charge_write(line)
            installed += 1
        return installed

    # ------------------------------------------------------------------
    # Consistency audit
    # ------------------------------------------------------------------

    def audit_against_shadow(self, shadow: Dict[int, bytes]) -> Dict[int, bytes]:
        """Compare recovered plaintext with expected content.

        Parameters
        ----------
        shadow:
            ``line -> expected plaintext`` tracked by the experiment.

        Returns
        -------
        dict
            The subset of lines whose recovered plaintext differs —
        empty means the durable state is fully consistent.
        """
        mismatches: Dict[int, bytes] = {}
        for line, expected in shadow.items():
            got = self.plaintext_of(line)
            if got != expected:
                mismatches[line] = got
        return mismatches
