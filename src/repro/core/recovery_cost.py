"""Timed post-crash recovery: what Section 6's cost argument measures.

Table 1 and the crash storms prove recovery *correctness*; this module
prices recovery *time*. A :class:`RecoveryMeter` charges every recovery
action the PCM latency model's cost — bank-aware NVM reads and writes
(``read_service_ns`` / ``write_service_ns`` per bank, ``bus_ns`` request
serialisation) and AES pipeline latency per counter re-derivation — and
the three recovery paths of :func:`repro.core.schemes.recovery_path` are
driven through it:

* **SuperMem** (:func:`timed_supermem_recovery`) — strict counter
  persistence means no counter recovery at all: finish the RSR's
  interrupted page re-encryption (bounded by one page), scan the log
  tail, replay. Cost is O(RSR) + O(log size): *independent of memory
  capacity*.
* **SuperMem+BMT** (:func:`timed_supermem_bmt_recovery`) — the SuperMem
  path preceded by an integrity-tree rebuild: one read + leaf hash per
  persisted counter line, one hash per distinct touched ancestor, root
  compared against the on-chip root register
  (:attr:`~repro.core.crash.DurableImage.tree_root`).
* **SCA scan** (:func:`timed_sca_scan_recovery`) — a write-back counter
  cache loses dirty counters and nothing records which: recovery must
  walk the *entire* counter region (:mod:`repro.core.sca_scan`) before
  the log replay. Cost grows linearly with memory capacity.
* **Osiris** (:func:`timed_osiris_recovery`) — bounded trial decryption
  per written line (:mod:`repro.core.osiris`): cost grows with the
  replay window x the amount of written memory.

The timing model is a deterministic pipelined lower bound: reads/writes
serialise per bank and on the command bus, AES ops serialise on the
crypto engine, and the three resources overlap freely —
``time_ns = max(busiest bank, bus, crypto)``. It is monotone (more work
never costs less) and bit-reproducible, which is what the ``fig-recovery``
sweep and the crash-fuzz consistency checks need.

:func:`run_recovery_point` is the experiment-runner kernel behind
``PointSpec(kernel="recovery")``: build a functional system, run seeded
transactions, optionally leave a re-encryption interrupted and counters
dirty, crash, and price the scheme's recovery path. It returns a regular
:class:`~repro.sim.metrics.SimResult` (total time = recovery ns, counters
in the ``recovery`` stats namespace), so journaling, resume, and
``--jobs`` parallelism are inherited from the runner unchanged.
"""

from __future__ import annotations

import random
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.address import AddressMap, CACHE_LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE
from repro.common.config import SimConfig
from repro.common.errors import ConfigError, CrashInjected, SimulationError
from repro.core.crash import CrashController, DurableImage
from repro.core.schemes import (
    RECOVERY_PATH_OSIRIS,
    RECOVERY_PATH_SCA_SCAN,
    RECOVERY_PATH_SUPERMEM,
    RECOVERY_PATH_SUPERMEM_BMT,
    recovery_path,
    scheme_config,
)
from repro.obs.events import (
    CAT_RECOVERY,
    PH_COMPLETE,
    RECOVERY_EV_PHASE,
    RECOVERY_EV_SUMMARY,
    TRACK_RECOVERY,
    TraceEvent,
)
from repro.sim.metrics import SimResult


class RecoveryMeter:
    """Charges recovery actions with the PCM latency model's costs.

    Three overlapping resources, each a monotone timeline:

    * per-bank service: a read occupies its bank ``read_service_ns``, a
      write ``write_service_ns`` (the 300 ns PCM cell write dominates);
    * the command bus: every request serialises for ``bus_ns``;
    * the AES engine: every OTP/verification serialises for ``aes_ns``.

    ``time_ns`` is the maximum over all timelines — the pipelined lower
    bound on recovery wall-clock. ``freeze()`` stops accounting so
    post-recovery audits can read the image for free.
    """

    def __init__(self, config: SimConfig):
        if config is None:
            raise SimulationError("recovery meter needs a configuration")
        self.config = config
        self.timing = config.timing
        self.amap: AddressMap = config.address_map()
        self._bank_free = [0.0] * config.memory.n_banks
        self._bus_ns = 0.0
        self._crypto_ns = 0.0
        self._hash_ns = 0.0
        self.frozen = False
        # Raw action counters.
        self.nvm_reads = 0
        self.nvm_writes = 0
        self.data_line_reads = 0
        self.counter_line_reads = 0
        self.aes_ops = 0
        self.hash_ops = 0

    # -- charging ---------------------------------------------------------

    def _service(self, line: int, service_ns: float) -> None:
        issue = self._bus_ns
        self._bus_ns += self.timing.bus_ns
        bank = self.amap.bank_of_line(line)
        start = max(issue, self._bank_free[bank])
        self._bank_free[bank] = start + service_ns

    def nvm_read(self, line: int, counter: bool = False) -> None:
        """Charge one NVM line read (bank occupancy + bus slot)."""
        if self.frozen:
            return
        self.nvm_reads += 1
        if counter:
            self.counter_line_reads += 1
        else:
            self.data_line_reads += 1
        self._service(line, self.timing.read_service_ns)

    def nvm_write(self, line: int) -> None:
        """Charge one NVM line write (bank occupancy + bus slot)."""
        if self.frozen:
            return
        self.nvm_writes += 1
        self._service(line, self.timing.write_service_ns)

    def aes(self, n: int = 1) -> None:
        """Charge ``n`` AES pipeline occupancies (OTP / trial decryption)."""
        if self.frozen:
            return
        self.aes_ops += n
        self._crypto_ns += n * self.timing.aes_ns

    def hash(self, n: int = 1) -> None:
        """Charge ``n`` hash-engine occupancies (integrity-tree rebuild)."""
        if self.frozen:
            return
        self.hash_ops += n
        self._hash_ns += n * self.timing.hash_ns

    def charge_image_read(self, line: int) -> None:
        """:attr:`DurableImage.on_read` hook: classify and charge a read."""
        self.nvm_read(line, counter=line >= self.amap.n_lines)

    def freeze(self) -> None:
        """Stop accounting (audits after this point are free)."""
        self.frozen = True

    # -- results ----------------------------------------------------------

    @property
    def time_ns(self) -> float:
        """Pipelined recovery time: the busiest resource's timeline."""
        return max(
            max(self._bank_free), self._bus_ns, self._crypto_ns, self._hash_ns
        )


@dataclass
class RecoveryCostReport:
    """Priced outcome of one timed recovery."""

    #: Which path ran (see :func:`repro.core.schemes.recovery_path`).
    path: str
    #: Recovery time under the pipelined PCM model, nanoseconds.
    time_ns: float = 0.0
    nvm_reads: int = 0
    nvm_writes: int = 0
    data_line_reads: int = 0
    counter_line_reads: int = 0
    aes_ops: int = 0
    #: Osiris only: total trial decryptions across all written lines.
    trial_decryptions: int = 0
    #: Lines rewritten by the transaction-log replay.
    replay_writes: int = 0
    #: Log-region lines walked by the recovery scan.
    log_lines_scanned: int = 0
    #: Lines finished by the RSR resume (interrupted re-encryption).
    rsr_lines_resumed: int = 0
    #: SCA scan only: counter-region lines walked (== pages of capacity).
    counter_region_lines: int = 0
    #: Data-region lines with a durable image at crash time.
    written_data_lines: int = 0
    #: SuperMem+BMT only: persisted counter leaves hashed by the rebuild.
    tree_leaves_rebuilt: int = 0
    #: SuperMem+BMT only: distinct internal nodes (plus root) rehashed.
    tree_nodes_rehashed: int = 0
    #: Hash-engine occupancies charged (tree rebuild).
    hash_ops: int = 0
    #: 1 when the rebuilt root matched ``DurableImage.tree_root``.
    tree_root_verified: int = 0
    #: ``(name, start_ns, end_ns)`` per recovery stage, in order.
    phases: List[Tuple[str, float, float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "time_ns": self.time_ns,
            "nvm_reads": self.nvm_reads,
            "nvm_writes": self.nvm_writes,
            "data_line_reads": self.data_line_reads,
            "counter_line_reads": self.counter_line_reads,
            "aes_ops": self.aes_ops,
            "trial_decryptions": self.trial_decryptions,
            "replay_writes": self.replay_writes,
            "log_lines_scanned": self.log_lines_scanned,
            "rsr_lines_resumed": self.rsr_lines_resumed,
            "counter_region_lines": self.counter_region_lines,
            "written_data_lines": self.written_data_lines,
            "tree_leaves_rebuilt": self.tree_leaves_rebuilt,
            "tree_nodes_rehashed": self.tree_nodes_rehashed,
            "hash_ops": self.hash_ops,
            "tree_root_verified": self.tree_root_verified,
            "phases": [list(p) for p in self.phases],
        }


def recovery_trace_events(report: RecoveryCostReport) -> List[TraceEvent]:
    """The report as ``CAT_RECOVERY`` events on the recovery track.

    One ``X`` (complete) event per recovery phase in simulated
    nanoseconds, plus a summary instant carrying every counter — the
    payload behind ``repro recovery-report --trace``.
    """
    events: List[TraceEvent] = []
    for name, start, end in report.phases:
        events.append(
            TraceEvent(
                cat=CAT_RECOVERY,
                name=RECOVERY_EV_PHASE,
                track=TRACK_RECOVERY,
                ts=start,
                ph=PH_COMPLETE,
                dur=max(0.0, end - start),
                args={"phase": name},
            )
        )
    summary = report.to_dict()
    summary.pop("phases")
    events.append(
        TraceEvent(
            cat=CAT_RECOVERY,
            name=RECOVERY_EV_SUMMARY,
            track=TRACK_RECOVERY,
            ts=report.time_ns,
            args=summary,
        )
    )
    return events


# ----------------------------------------------------------------------
# Timed recovery paths
# ----------------------------------------------------------------------


def _finish(report: RecoveryCostReport, meter: RecoveryMeter) -> RecoveryCostReport:
    report.time_ns = meter.time_ns
    report.nvm_reads = meter.nvm_reads
    report.nvm_writes = meter.nvm_writes
    report.data_line_reads = meter.data_line_reads
    report.counter_line_reads = meter.counter_line_reads
    report.aes_ops = meter.aes_ops
    report.hash_ops = meter.hash_ops
    return report


def _replay_log(
    recovered,
    log_base: int,
    log_size: int,
    meter: RecoveryMeter,
    report: RecoveryCostReport,
) -> None:
    """Shared tail of every path: scan the log region, replay, install."""
    from repro.txn.log import LogRegion
    from repro.txn.transaction import recover_data_view

    t0 = meter.time_ns
    log_region = LogRegion(log_base, log_size)
    replay = recover_data_view(recovered, log_region, data_lines=())
    report.log_lines_scanned = log_size // CACHE_LINE_SIZE
    report.phases.append(("log-scan", t0, meter.time_ns))
    t1 = meter.time_ns
    report.replay_writes = recovered.apply_replay(replay)
    report.phases.append(("log-replay", t1, meter.time_ns))


def timed_supermem_recovery(
    image: DurableImage,
    log_base: int,
    log_size: int,
    meter: Optional[RecoveryMeter] = None,
):
    """Strict-persistence recovery: RSR resume + log tail. O(RSR + log).

    Returns ``(recovered_system, report)``; the recovered system carries
    the post-replay view, ready for :meth:`audit_against_shadow`.
    """
    from repro.core.recovery import RecoveredSystem

    meter = meter if meter is not None else RecoveryMeter(image.config)
    recovered = RecoveredSystem(image, meter=meter)
    report = RecoveryCostReport(path=RECOVERY_PATH_SUPERMEM)
    report.written_data_lines = len(image.written_data_lines(meter.amap.n_lines))
    t0 = meter.time_ns
    report.rsr_lines_resumed = recovered.resume_reencryption()
    report.phases.append(("rsr-resume", t0, meter.time_ns))
    _replay_log(recovered, log_base, log_size, meter, report)
    return recovered, _finish(report, meter)


def timed_supermem_bmt_recovery(
    image: DurableImage,
    log_base: int,
    log_size: int,
    meter: Optional[RecoveryMeter] = None,
):
    """SuperMem plus an integrity-tree rebuild over the counter region.

    The rebuild runs *first*: the RSR resume and the log replay both
    mutate counter lines, and the rebuilt root must match the root
    register as of the crash (``DurableImage.tree_root``). Cost over
    plain SuperMem is one bank read + leaf hash per persisted counter
    line plus one hash per distinct touched ancestor — bounded by the
    written working set, not capacity.
    """
    from repro.core.recovery import RecoveredSystem

    meter = meter if meter is not None else RecoveryMeter(image.config)
    recovered = RecoveredSystem(image, meter=meter)
    report = RecoveryCostReport(path=RECOVERY_PATH_SUPERMEM_BMT)
    report.written_data_lines = len(image.written_data_lines(meter.amap.n_lines))
    t0 = meter.time_ns
    leaves, nodes, root = recovered.rebuild_integrity_tree()
    report.tree_leaves_rebuilt = leaves
    report.tree_nodes_rehashed = nodes
    report.tree_root_verified = int(
        image.tree_root is None or root == image.tree_root
    )
    report.phases.append(("tree-rebuild", t0, meter.time_ns))
    t1 = meter.time_ns
    report.rsr_lines_resumed = recovered.resume_reencryption()
    report.phases.append(("rsr-resume", t1, meter.time_ns))
    _replay_log(recovered, log_base, log_size, meter, report)
    return recovered, _finish(report, meter)


def timed_sca_scan_recovery(
    image: DurableImage,
    log_base: int,
    log_size: int,
    meter: Optional[RecoveryMeter] = None,
):
    """Counter-region scan recovery: walk every counter line, then replay.

    The scan is the whole point: its cost is ``n_pages`` reads +
    verifications, linear in memory capacity, paid before a single byte
    of useful data is served.
    """
    from repro.core.recovery import RecoveredSystem
    from repro.core.sca_scan import ScaScanRecovery

    meter = meter if meter is not None else RecoveryMeter(image.config)
    report = RecoveryCostReport(path=RECOVERY_PATH_SCA_SCAN)
    report.written_data_lines = len(image.written_data_lines(meter.amap.n_lines))
    t0 = meter.time_ns
    scan = ScaScanRecovery(image, meter=meter).recover()
    report.counter_region_lines = scan.scanned_lines
    report.phases.append(("counter-scan", t0, meter.time_ns))
    recovered = RecoveredSystem(image, meter=meter)
    t1 = meter.time_ns
    report.rsr_lines_resumed = recovered.resume_reencryption()
    report.phases.append(("rsr-resume", t1, meter.time_ns))
    _replay_log(recovered, log_base, log_size, meter, report)
    return recovered, _finish(report, meter)


def timed_osiris_recovery(
    image: DurableImage,
    log_base: int,
    log_size: int,
    meter: Optional[RecoveryMeter] = None,
):
    """Trial-decryption recovery: replay window per written line + replay."""
    from repro.core.osiris import OsirisRecovery
    from repro.core.recovery import RecoveredSystem

    meter = meter if meter is not None else RecoveryMeter(image.config)
    report = RecoveryCostReport(path=RECOVERY_PATH_OSIRIS)
    report.written_data_lines = len(image.written_data_lines(meter.amap.n_lines))
    t0 = meter.time_ns
    osiris = OsirisRecovery(image, meter=meter).recover()
    report.trial_decryptions = osiris.trial_decryptions
    report.phases.append(("trial-decrypt", t0, meter.time_ns))
    recovered = RecoveredSystem(image, meter=meter)
    t1 = meter.time_ns
    report.rsr_lines_resumed = recovered.resume_reencryption()
    report.phases.append(("rsr-resume", t1, meter.time_ns))
    _replay_log(recovered, log_base, log_size, meter, report)
    return recovered, _finish(report, meter)


_TIMED_PATHS = {
    RECOVERY_PATH_SUPERMEM: timed_supermem_recovery,
    RECOVERY_PATH_SUPERMEM_BMT: timed_supermem_bmt_recovery,
    RECOVERY_PATH_SCA_SCAN: timed_sca_scan_recovery,
    RECOVERY_PATH_OSIRIS: timed_osiris_recovery,
}


def timed_recovery(
    image: DurableImage,
    path: str,
    log_base: int,
    log_size: int,
    meter: Optional[RecoveryMeter] = None,
):
    """Dispatch to one timed recovery path by name."""
    try:
        fn = _TIMED_PATHS[path]
    except KeyError:
        raise ConfigError(
            f"unknown recovery path {path!r}; expected one of {sorted(_TIMED_PATHS)}"
        ) from None
    return fn(image, log_base, log_size, meter=meter)


# ----------------------------------------------------------------------
# The experiment-runner kernel (PointSpec.kernel == "recovery")
# ----------------------------------------------------------------------

#: Defaults of the kernel knobs carried in ``PointSpec.kernel_params``.
DEFAULT_LOG_LINES = 256
DEFAULT_RSR = "off"
DEFAULT_DIRTY_FRAC = 0.0


def _payload(rng: random.Random, size: int) -> bytes:
    return bytes(rng.randrange(1, 256) for _ in range(size))


def run_recovery_scenario(
    scheme,
    base_config: Optional[SimConfig] = None,
    n_txns: int = 16,
    request_size: int = 256,
    footprint: int = 1 << 18,
    seed: int = 1,
    log_lines: int = DEFAULT_LOG_LINES,
    rsr: str = DEFAULT_RSR,
    dirty_frac: float = DEFAULT_DIRTY_FRAC,
):
    """Build, write, crash, and price one recovery scenario.

    Returns ``(report, recovered_system, shadow)`` where ``shadow`` maps
    flushed line -> plaintext (the audit universe). The meter is frozen
    before returning, so auditing the recovered system costs nothing.
    """
    from repro.core.system import SecureMemorySystem
    from repro.txn.log import LogRegion
    from repro.txn.persist import DirectDomain
    from repro.txn.transaction import TransactionManager

    if not 0.0 <= dirty_frac <= 1.0:
        raise ConfigError(f"dirty_frac must be in [0, 1], got {dirty_frac}")
    if rsr not in ("armed", "off"):
        raise ConfigError(f"rsr must be 'armed' or 'off', got {rsr!r}")
    if log_lines < 2:
        raise ConfigError(f"log_lines must be >= 2, got {log_lines}")

    # The recovery kernel audits recovered plaintext byte-for-byte, so it
    # always runs at full fidelity even when a sweep asked for "timing"
    # (replace() alone would carry a stale functional=False through).
    config = dataclasses.replace(
        scheme_config(scheme, base_config), fidelity="full", functional=True
    )
    crash_ctl = CrashController()
    system = SecureMemorySystem(config, crash=crash_ctl)
    domain = DirectDomain(system)
    log_size = log_lines * CACHE_LINE_SIZE
    manager = TransactionManager(domain, LogRegion(0, log_size), crash=crash_ctl)

    # Data region starts page-aligned past the log so replay never
    # aliases log lines.
    data_base = ((log_size + PAGE_SIZE - 1) // PAGE_SIZE + 1) * PAGE_SIZE
    n_slots = max(1, footprint // request_size)
    rng = random.Random(seed)

    # Transactions before `clean` end in a counter checkpoint (their
    # write-back counters are durably evicted); the rest leave their
    # counters dirty in SRAM — the counter-cache dirty-fraction knob.
    # Write-through schemes have nothing dirty either way.
    clean = n_txns - int(round(n_txns * dirty_frac))
    for i in range(n_txns):
        addr = data_base + rng.randrange(n_slots) * request_size
        manager.run([(addr, request_size, _payload(rng, request_size))])
        if i == clean - 1:
            system.checkpoint_counters()

    if rsr == "armed":
        # Interrupt a page re-encryption halfway so recovery must resume
        # it from the RSR (Section 3.4.4).
        page = system.amap.page_of_line(data_base // CACHE_LINE_SIZE)
        crash_ctl.arm("reencrypt-line-done", occurrence=LINES_PER_PAGE // 2)
        try:
            system.reencrypt_page(domain.now, page)
        except CrashInjected:
            pass

    shadow = dict(domain.flushed_shadow)
    image = system.crash()
    meter = RecoveryMeter(config)
    recovered, report = timed_recovery(
        image, recovery_path(scheme), 0, log_size, meter=meter
    )
    meter.freeze()
    return report, recovered, shadow


def run_recovery_point(spec) -> SimResult:
    """Runner kernel: execute one ``kernel="recovery"`` point.

    The priced recovery lands in a :class:`SimResult` so the supervised
    pool, the journal, and ``--jobs`` determinism all apply unchanged:
    ``total_time_ns`` is the recovery time and every cost counter lives
    in the ``recovery`` stats namespace (which the journal round-trips).
    """
    params = dict(spec.kernel_params)
    if not isinstance(spec.workload, str):
        raise ConfigError("recovery points take a single workload label")
    report, _recovered, _shadow = run_recovery_scenario(
        spec.scheme,
        base_config=spec.base_config,
        n_txns=spec.n_ops,
        request_size=spec.request_size,
        footprint=spec.footprint if spec.footprint else 1 << 18,
        seed=spec.seed,
        log_lines=int(params.get("log_lines", DEFAULT_LOG_LINES)),
        rsr=str(params.get("rsr", DEFAULT_RSR)),
        dirty_frac=float(params.get("dirty_frac", DEFAULT_DIRTY_FRAC)),
    )
    result = SimResult(total_time_ns=report.time_ns)
    record = report.to_dict()
    record.pop("phases")
    record.pop("path")
    for key, value in record.items():
        result.stats.set("recovery", key, value)
    return result
