"""Page re-encryption and the re-encryption status register (Section 3.4.4).

When a line's 7-bit minor counter saturates, the page's major counter is
bumped, all minors reset, and every line of the page must be re-encrypted
under the fresh counters. The memory controller tracks progress in a
20-byte **re-encryption status register** (RSR): the page number, the old
major counter, and one done bit per line.

Crash consistency: SuperMem puts the RSR inside the ADR domain, so a power
failure mid-re-encryption persists it. On recovery the system reads the
RSR, decrypts not-yet-re-encrypted lines with the *old* major counter and
their saturated minors, and finishes the job. Without ADR protection
(``rsr_adr=False``, the broken baseline), the RSR is lost and the
non-re-encrypted lines of the page become undecryptable — the
inconsistency the paper warns about.

The RSR serialises to exactly 20 bytes (32-bit page number + 64-bit old
major + 64 done bits), matching the paper's battery-cost argument.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.common.address import LINES_PER_PAGE
from repro.common.errors import SimulationError


@dataclass
class RSRRecord:
    """The re-encryption status of one in-flight page re-encryption."""

    page: int
    old_major: int
    done: List[bool] = field(default_factory=lambda: [False] * LINES_PER_PAGE)

    def __post_init__(self) -> None:
        if len(self.done) != LINES_PER_PAGE:
            raise SimulationError(
                f"RSR needs {LINES_PER_PAGE} done bits, got {len(self.done)}"
            )
        if not 0 <= self.page < (1 << 32):
            raise SimulationError("RSR page number must fit in 32 bits")

    def mark_done(self, slot: int) -> None:
        self.done[slot] = True

    @property
    def complete(self) -> bool:
        return all(self.done)

    def pending_slots(self) -> List[int]:
        """Line slots still encrypted under the old counters."""
        return [slot for slot, done in enumerate(self.done) if not done]

    # ------------------------------------------------------------------
    # 20-byte wire format (the paper's battery-cost accounting)
    # ------------------------------------------------------------------

    SIZE_BYTES = 20

    def to_bytes(self) -> bytes:
        bits = 0
        for slot, done in enumerate(self.done):
            if done:
                bits |= 1 << slot
        return struct.pack("<IQQ", self.page, self.old_major & ((1 << 64) - 1), bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSRRecord":
        page, old_major, bits = struct.unpack_from("<IQQ", data, 0)
        done = [bool(bits & (1 << slot)) for slot in range(LINES_PER_PAGE)]
        return cls(page=page, old_major=old_major, done=done)

    def copy(self) -> "RSRRecord":
        return RSRRecord(page=self.page, old_major=self.old_major, done=list(self.done))
