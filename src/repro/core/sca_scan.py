"""SCA-style full counter-region scan recovery (Section 6 related work).

Zuo et al.'s SCA keeps a write-back counter cache without strict
persistence: a crash loses the dirty counter blocks, and — unlike Osiris —
nothing in the array records *which* pages' counters were stale. The only
safe recovery is to walk the **entire counter region**, reading and
verifying every counter line before normal operation resumes. That walk
is what the paper's Section 6 holds against scan-based designs: its cost
is one read + one verification per page of installed memory, so recovery
time grows linearly with capacity whether or not the crash left anything
dirty.

:class:`ScaScanRecovery` performs that walk over a
:class:`~repro.core.crash.DurableImage`, billing each step to a
:class:`~repro.core.recovery_cost.RecoveryMeter` through the image's
``on_read`` hook. The scan itself recovers no data — the transaction-log
replay afterwards does, exactly as on the SuperMem path — it is pure,
capacity-proportional latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.address import AddressMap
from repro.common.errors import SimulationError
from repro.core.crash import DurableImage


@dataclass
class ScaScanReport:
    """Outcome of a full counter-region scan."""

    #: Counter-region lines walked — always ``n_pages`` of the capacity.
    scanned_lines: int = 0
    #: Counter lines that had a durable image (written pages).
    present_lines: int = 0
    #: Counter lines read as all-zero / never written.
    empty_lines: int = 0


class ScaScanRecovery:
    """Walk every counter line of the image's counter region."""

    def __init__(self, image: DurableImage, meter=None):
        if image.config is None:
            raise SimulationError("durable image carries no configuration")
        if not image.config.encrypted:
            raise SimulationError("counter-region scan on an unencrypted image")
        self.image = image
        self.meter = meter
        self.amap: AddressMap = image.config.address_map()

    def recover(self) -> ScaScanReport:
        """Scan all ``n_pages`` counter lines; one read + one AES verify each.

        The scan must touch every counter line of the configured capacity
        (never-written ones included — recovery cannot know a page is
        untouched without looking), which is precisely why this path
        scales with memory size.
        """
        report = ScaScanReport()
        base = self.amap.n_lines
        previous_hook = self.image.on_read
        if self.meter is not None:
            self.image.on_read = self.meter.charge_image_read
        try:
            for page in range(self.amap.n_pages):
                payload = self.image.line(base + page)
                report.scanned_lines += 1
                if payload is None:
                    report.empty_lines += 1
                else:
                    report.present_lines += 1
                if self.meter is not None:
                    # Integrity verification of the (possibly zero) block.
                    self.meter.aes()
        finally:
            self.image.on_read = previous_hook
        return report
