"""The evaluated system configurations.

The paper's evaluation (Section 4) compares six systems; each is a small
transformation of the common :class:`~repro.common.config.SimConfig`:

=============  ==========  ============  =====  ==============
Scheme         Encrypted   Counter $     CWC    Ctr placement
=============  ==========  ============  =====  ==============
``UNSEC``      no          —             —      —
``WB_IDEAL``   yes         write-back,   no     SingleBank
               battery
``WT_BASE``    yes         write-through no     SingleBank
``WT_CWC``     yes         write-through yes    SingleBank
``WT_XBANK``   yes         write-through no     XBank
``SUPERMEM``   yes         write-through yes    XBank
=============  ==========  ============  =====  ==============

``WB_IDEAL`` is the paper's upper bound: a battery large enough to flush
the whole counter cache, hence zero counter-atomicity overhead.
``WT_BASE`` stores counters the way prior write-back designs did
(a dedicated counter bank), which is what makes it the bottlenecked
baseline of Figure 13.

``SUPERMEM_BMT`` extends SuperMem with *timed* integrity metadata — a
per-line MAC plus a Bonsai Merkle counter tree updated through a
write-back node cache with coalesced ancestor updates (Freij et al.) —
so the figures also price what a full secure-memory stack costs.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.common.config import (
    CounterCacheMode,
    CounterPlacementPolicy,
    SimConfig,
)


class Scheme(enum.Enum):
    """The six systems of the paper's evaluation, plus the two related-work
    designs of Section 6 (SCA and Osiris) for extended comparisons."""

    UNSEC = "unsec"
    WB_IDEAL = "wb"
    WT_BASE = "wt"
    WT_CWC = "wt+cwc"
    WT_XBANK = "wt+xbank"
    SUPERMEM = "supermem"
    #: SuperMem plus timed integrity metadata: per-line MACs and a Bonsai
    #: Merkle counter tree with a node cache and coalesced ancestor
    #: updates (Freij et al., *Streamlining Integrity Tree Updates*).
    SUPERMEM_BMT = "supermem+bmt"
    #: Liu et al.'s selective counter-atomicity (Section 6 competitor).
    SCA = "sca"
    #: Ye et al.'s Osiris: relaxed counter persistence + ECC recovery.
    OSIRIS = "osiris"

    @property
    def label(self) -> str:
        """Display label matching the paper's figures."""
        return {
            Scheme.UNSEC: "Unsec",
            Scheme.WB_IDEAL: "WB",
            Scheme.WT_BASE: "WT",
            Scheme.WT_CWC: "WT+CWC",
            Scheme.WT_XBANK: "WT+XBank",
            Scheme.SUPERMEM: "SuperMem",
            Scheme.SUPERMEM_BMT: "SuperMem+BMT",
            Scheme.SCA: "SCA",
            Scheme.OSIRIS: "Osiris",
        }[self]


#: The schemes plotted in Figures 13-15, in the paper's legend order
#: (index 0 *must* stay ``UNSEC``: every figure normalises to it), plus
#: the integrity-priced SuperMem+BMT row appended by this reproduction.
EVALUATED_SCHEMES = (
    Scheme.UNSEC,
    Scheme.WB_IDEAL,
    Scheme.WT_BASE,
    Scheme.WT_CWC,
    Scheme.WT_XBANK,
    Scheme.SUPERMEM,
    Scheme.SUPERMEM_BMT,
)

#: The schemes compared by the Section 6 recovery-cost experiment
#: (``fig-recovery``): one representative per recovery path.
RECOVERY_SCHEMES = (Scheme.SUPERMEM, Scheme.SUPERMEM_BMT, Scheme.SCA, Scheme.OSIRIS)

#: Recovery-path names (see :mod:`repro.core.recovery_cost`).
RECOVERY_PATH_SUPERMEM = "supermem"
RECOVERY_PATH_SUPERMEM_BMT = "supermem-bmt"
RECOVERY_PATH_SCA_SCAN = "sca-scan"
RECOVERY_PATH_OSIRIS = "osiris"


def recovery_path(scheme: Scheme) -> str:
    """Which post-crash counter-recovery path ``scheme`` pays for.

    * Strict counter persistence (every write-through scheme, the
      battery-backed ideal WB, and the unencrypted baseline) needs no
      counter recovery: only the RSR resume and the log tail are walked —
      :data:`RECOVERY_PATH_SUPERMEM`, constant in memory size.
    * SCA's write-back counter cache loses dirty counters, and nothing
      marks which ones: recovery scans the whole counter region —
      :data:`RECOVERY_PATH_SCA_SCAN`, linear in capacity.
    * Osiris re-derives each written line's counter by bounded trial
      decryption — :data:`RECOVERY_PATH_OSIRIS`, replay window x written
      lines.
    * SuperMem+BMT pays the SuperMem path *plus* an integrity-tree
      rebuild over the written counter lines —
      :data:`RECOVERY_PATH_SUPERMEM_BMT`.
    """
    if scheme is Scheme.SUPERMEM_BMT:
        return RECOVERY_PATH_SUPERMEM_BMT
    if scheme is Scheme.SCA:
        return RECOVERY_PATH_SCA_SCAN
    if scheme is Scheme.OSIRIS:
        return RECOVERY_PATH_OSIRIS
    return RECOVERY_PATH_SUPERMEM


def scheme_config(scheme: Scheme, base: SimConfig | None = None) -> SimConfig:
    """Derive the configuration of ``scheme`` from ``base``.

    ``base`` carries everything orthogonal to the scheme (geometry, write
    queue length, counter cache size); only the scheme-defining knobs are
    replaced.
    """
    base = base if base is not None else SimConfig()

    if scheme is Scheme.UNSEC:
        return dataclasses.replace(base, encrypted=False, cwc_enabled=False)

    counter_cache = base.counter_cache
    if scheme is Scheme.WB_IDEAL:
        counter_cache = dataclasses.replace(
            counter_cache,
            mode=CounterCacheMode.WRITE_BACK,
            battery_backed=True,
        )
        return dataclasses.replace(
            base,
            encrypted=True,
            counter_cache=counter_cache,
            counter_placement=CounterPlacementPolicy.SINGLE_BANK,
            cwc_enabled=False,
        )

    if scheme is Scheme.SCA:
        counter_cache = dataclasses.replace(
            counter_cache,
            mode=CounterCacheMode.WRITE_BACK,
            battery_backed=False,
        )
        return dataclasses.replace(
            base,
            encrypted=True,
            counter_cache=counter_cache,
            counter_placement=CounterPlacementPolicy.SINGLE_BANK,
            cwc_enabled=False,
            sca_mode=True,
        )

    if scheme is Scheme.OSIRIS:
        counter_cache = dataclasses.replace(
            counter_cache,
            mode=CounterCacheMode.WRITE_BACK,
            battery_backed=False,
        )
        return dataclasses.replace(
            base,
            encrypted=True,
            counter_cache=counter_cache,
            counter_placement=CounterPlacementPolicy.SINGLE_BANK,
            cwc_enabled=False,
            osiris_stop_loss=4,
        )

    counter_cache = dataclasses.replace(
        counter_cache,
        mode=CounterCacheMode.WRITE_THROUGH,
        battery_backed=False,
    )
    placement = {
        Scheme.WT_BASE: CounterPlacementPolicy.SINGLE_BANK,
        Scheme.WT_CWC: CounterPlacementPolicy.SINGLE_BANK,
        Scheme.WT_XBANK: CounterPlacementPolicy.XBANK,
        Scheme.SUPERMEM: CounterPlacementPolicy.XBANK,
        Scheme.SUPERMEM_BMT: CounterPlacementPolicy.XBANK,
    }[scheme]
    cwc = scheme in (Scheme.WT_CWC, Scheme.SUPERMEM, Scheme.SUPERMEM_BMT)
    return dataclasses.replace(
        base,
        encrypted=True,
        counter_cache=counter_cache,
        counter_placement=placement,
        cwc_enabled=cwc,
        integrity_tree=scheme is Scheme.SUPERMEM_BMT,
    )
