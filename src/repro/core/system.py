"""The secure persistent memory system (controller-side façade).

:class:`SecureMemorySystem` is what sits below the CPU caches: it receives
*persist* requests (clwb write-backs and dirty LLC evictions) and *read*
requests (LLC misses), and orchestrates the counter-mode encryption
machinery around the memory controller:

Write path (encrypted, write-through — Sections 3.2 and Figure 7)
    1. bump the line's minor counter (page re-encryption on overflow);
    2. touch the counter cache; a miss first fetches the counter line from
       NVM (a bank read);
    3. generate the OTP (AES latency) and encrypt the line while holding
       data and counter in the **atomicity register**;
    4. append the encrypted line *and* its counter line to the write queue
       as one unit — either both become durable (ADR) or neither.
    With the register disabled (the broken Figure 6 baseline) the counter
    is appended before encryption completes, opening the crash window the
    crash tests exploit.

Write path (write-back counter cache — the WB baseline)
    The counter line is updated dirty in the cache; only the data line is
    appended. Dirty evictions emit counter writes.

Read path (Figure 2b/3)
    The OTP is generated in parallel with the data read when the counter
    cache hits; a miss serialises counter fetch before the AES latency.

All timing flows through the controller; all functional content lives in
the controller's NVM store, so a crash can be modelled by flushing the ADR
domain and discarding SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.address import AddressMap, CACHE_LINE_SIZE
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.cache.counter_cache import CounterCache
from repro.cache.tree_cache import TreeNodeCache
from repro.crypto.counters import CounterBlock, MonolithicCounterBlock
from repro.crypto.integrity import MerkleCounterTree
from repro.crypto.otp import LineCipher
from repro.crypto.tree_timed import TreeGeometry
from repro.core.crash import CrashController, DurableImage
from repro.core.reencrypt import RSRRecord
from repro.memory.controller import MemoryController
from repro.memory.layout import make_layout
from repro.memory.nvm import ZERO_LINE
from repro.memory.write_queue import WQEntry
from repro.obs.tracer import NULL_TRACER


def _line_mac(plaintext: bytes) -> bytes:
    """8-byte check value over a line's plaintext.

    Stands in for the ECC bits Osiris repurposes as a counter-recovery
    sanity check: computed pre-encryption, stored with the line, and
    matched during trial decryption.
    """
    import hashlib

    return hashlib.sha256(b"ecc" + plaintext).digest()[:8]


@dataclass(frozen=True)
class PersistResult:
    """Outcome of persisting one line."""

    #: Time at which the line (and, write-through, its counter) became
    #: durable — i.e. entered the ADR domain.
    durable_time: float
    #: Whether a page re-encryption ran as part of this persist.
    reencrypted: bool = False


@dataclass(frozen=True)
class ReadLineResult:
    """Outcome of reading one line from memory."""

    finish_time: float
    #: Decrypted content in functional mode; None in timing-only mode.
    payload: Optional[bytes]
    counter_cache_hit: bool


class CounterStore:
    """Authoritative current counter values (split or monolithic).

    This is the union view of counter cache + NVM: the *current* counters
    the hardware would use. What subset of it survives a crash is decided
    by the write policy (write-through persists every update; write-back
    only what was evicted or battery-flushed).
    """

    def __init__(self, organization: str = "split", minor_bits: int = 7):
        if organization not in ("split", "monolithic"):
            raise SimulationError(f"unknown counter organization {organization!r}")
        self.organization = organization
        self._minor_bits = minor_bits
        self._blocks: Dict[int, object] = {}

    @property
    def lines_per_block(self) -> int:
        if self.organization == "split":
            return 64
        return MonolithicCounterBlock.LINES_PER_BLOCK

    def block_key_of_line(self, line: int) -> int:
        return line // self.lines_per_block

    def slot_of_line(self, line: int) -> int:
        return line % self.lines_per_block

    def block(self, key: int):
        blk = self._blocks.get(key)
        if blk is None:
            if self.organization == "split":
                blk = CounterBlock(minor_bits=self._minor_bits)
            else:
                blk = MonolithicCounterBlock()
            self._blocks[key] = blk
        return blk

    def counter_of_line(self, line: int) -> int:
        return self.block(self.block_key_of_line(line)).encryption_counter(
            self.slot_of_line(line)
        )

    def bump(self, line: int) -> Tuple[int, int, bool]:
        """Advance the counter of ``line`` for a new write.

        Returns ``(block_key, slot, overflowed)``; when ``overflowed`` the
        caller must re-encrypt the block's page before retrying.
        """
        key = self.block_key_of_line(line)
        slot = self.slot_of_line(line)
        overflowed = self.block(key).bump(slot)
        return key, slot, overflowed

    def serialize_block(self, key: int) -> bytes:
        return self.block(key).to_bytes()

    def load_block(self, key: int, image: bytes) -> None:
        """Install a block parsed from an NVM counter-line image."""
        if self.organization == "split":
            self._blocks[key] = CounterBlock.from_bytes(
                image, minor_bits=self._minor_bits
            )
        else:
            self._blocks[key] = MonolithicCounterBlock.from_bytes(image)

    def known_blocks(self) -> Dict[int, object]:
        return dict(self._blocks)


class SecureMemorySystem:
    """Everything below the CPU caches, for one scheme configuration."""

    def __init__(
        self,
        config: SimConfig,
        stats: Optional[Stats] = None,
        crash: Optional[CrashController] = None,
        counter_organization: str = "split",
        tracer=NULL_TRACER,
    ):
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer
        self.crash_ctl = crash if crash is not None else CrashController()
        self.amap: AddressMap = config.address_map()
        self.controller = MemoryController(config, self.stats, tracer=tracer)
        self.counters = CounterStore(
            organization=counter_organization,
            minor_bits=config.minor_counter_bits,
        )
        self.counter_cache = CounterCache(
            config.counter_cache, self.stats, tracer=tracer
        )
        if tracer.enabled:
            tracer.register_gauge(
                "cc.hit_rate",
                lambda ts: self.stats.ratio("cc", "hits", "accesses"),
                track="cc",
            )
        self.layout = make_layout(
            config.counter_placement, self.amap, xbank_offset=config.xbank_offset
        )
        self.cipher: Optional[LineCipher] = (
            LineCipher() if (config.encrypted and config.functional) else None
        )
        # Per-op hoists: SimConfig is frozen, so these cannot drift. aes_ns
        # is a TimingConfig property (a division per call) and the stat keys
        # below are bumped two-plus times per persist/read.
        self._functional = config.functional
        self._aes_ns = config.timing.aes_ns
        self._encrypted = config.encrypted
        self._cc_write_through = self.counter_cache.write_through
        self._atomicity_register = config.atomicity_register
        self._sca_mode = config.sca_mode
        self._osiris_stop_loss = config.osiris_stop_loss
        self._vals = self.stats.raw()
        self._k_data_writes = ("secmem", "data_writes")
        self._k_data_reads = ("secmem", "data_reads")
        self._k_cc_read_accesses = ("cc", "read_accesses")
        self._k_cc_read_hits = ("cc", "read_hits")
        # Integrity layer (the SuperMem+BMT scheme): a timed Bonsai
        # Merkle counter tree updated through a write-back node cache
        # with coalesced ancestor updates, plus per-line MAC latency.
        self._integrity_tree = config.integrity_tree
        self._hash_ns = config.timing.hash_ns
        self._n_banks = config.memory.n_banks
        self.tree_cache: Optional[TreeNodeCache] = None
        self._tree_geom: Optional[TreeGeometry] = None
        #: Functional shadow of the on-chip tree state: tracks the root
        #: the hardware would hold after every persisted counter write.
        #: Timing-fidelity runs skip it (no payload bytes to hash) while
        #: charging identical latencies.
        self._it_shadow: Optional[MerkleCounterTree] = None
        if config.integrity_tree:
            if not config.encrypted:
                raise SimulationError("integrity_tree requires encryption")
            if not self._cc_write_through:
                raise SimulationError(
                    "integrity_tree requires write-through counters "
                    "(the tree authenticates the persisted counter region)"
                )
            self.tree_cache = TreeNodeCache(config.tree_cache, self.stats)
            self._tree_geom = TreeGeometry(self.amap.n_pages, amap=self.amap)
            if config.functional:
                self._it_shadow = MerkleCounterTree(self.amap.n_pages)
        self._k_mac_writes = ("it", "mac_writes")
        self._k_mac_verifies = ("it", "mac_verifies")
        self._k_node_fetches = ("it", "node_fetches")
        self._k_path_verifies = ("it", "path_verifies")
        #: In-flight page re-encryption (None when idle).
        self.rsr: Optional[RSRRecord] = None
        #: Osiris stop-loss bookkeeping: updates per counter block since
        #: the last persisted counter write.
        self._osiris_updates: Dict[int, int] = {}
        self._dead = False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._dead:
            raise SimulationError("memory system used after crash()")

    def _counter_entry(
        self, line: int, block_key: int, payload_wanted: bool
    ) -> WQEntry:
        """Build the write-queue entry for a counter-line write."""
        data_bank = self.amap.bank_of_line(line)
        placement = self.layout.placement(block_key, data_bank)
        payload = (
            self.counters.serialize_block(block_key) if payload_wanted else None
        )
        return WQEntry(
            line=placement.line,
            bank=placement.bank,
            row=placement.row,
            is_counter=True,
            enq_time=0.0,
            payload=payload,
        )

    def _data_entry(self, line: int, payload: Optional[bytes]) -> WQEntry:
        return WQEntry(
            line=line,
            bank=self.amap.bank_of_line(line),
            row=self.amap.row_of_line(line),
            is_counter=False,
            enq_time=0.0,
            payload=payload,
        )

    def _encrypt(self, line: int, payload: Optional[bytes]) -> Optional[bytes]:
        if payload is None or self.cipher is None:
            return payload
        return self.cipher.encrypt(line, self.counters.counter_of_line(line), payload)

    def _fetch_counter_line(self, t: float, line: int, block_key: int) -> float:
        """Counter-cache miss: read the counter line from NVM."""
        data_bank = self.amap.bank_of_line(line)
        placement = self.layout.placement(block_key, data_bank)
        result = self.controller.read(
            t, placement.line, bank=placement.bank, row=placement.row
        )
        self.stats.inc("secmem", "counter_fetches")
        if self.tracer.enabled:
            self.tracer.cc_fetch(t, placement.line)
        return result.finish_time

    # ------------------------------------------------------------------
    # Integrity tree (SuperMem+BMT): timed coalesced update/verify walks
    # ------------------------------------------------------------------
    #
    # The write path climbs leaf→root through the node cache and stops
    # at the first *dirty* cached ancestor — its pending rehash will
    # fold this update in (Freij et al.'s update coalescing). The read
    # path verifies an NVM-fetched counter block upward until a cached
    # (hence already-verified) node or the root register is reached.
    # Both walks are payload-free: timing and full fidelity execute the
    # identical float/stat sequence, and the _fast twins below differ
    # only in the controller entry points (read_fast/append_write_fast),
    # keeping batched replay bit-identical to the scalar path.

    def _tree_update(self, t: float, block_key: int, core: int) -> float:
        """Coalesced leaf→root update walk; returns its completion time."""
        cache = self.tree_cache
        geom = self._tree_geom
        vals = self._vals
        t_it = t + self._hash_ns  # rehash the leaf (counter block)
        for node in geom.ancestors(block_key):
            if cache.is_dirty(node):
                cache.note_coalesced()
                return t_it
            hit, writeback, fetch = cache.access(node, update=True)
            if fetch:
                line, bank, row = geom.placement(node, self._n_banks)
                result = self.controller.read(t_it, line, bank=bank, row=row)
                if result.finish_time > t_it:
                    t_it = result.finish_time
                vals[self._k_node_fetches] += 1
            if writeback is not None:
                wline, wbank, wrow = geom.placement(writeback, self._n_banks)
                self.controller.append_write(
                    t_it,
                    wline,
                    bank=wbank,
                    row=wrow,
                    is_counter=True,
                    payload=None,
                    core=core,
                )
            t_it += self._hash_ns  # rehash this ancestor
        return t_it + self._hash_ns  # root register rehash

    def _tree_update_fast(self, t: float, block_key: int, core: int) -> float:
        """:meth:`_tree_update` on the fast controller chain."""
        cache = self.tree_cache
        geom = self._tree_geom
        vals = self._vals
        controller = self.controller
        t_it = t + self._hash_ns
        for node in geom.ancestors(block_key):
            if cache.is_dirty(node):
                cache.note_coalesced()
                return t_it
            hit, writeback, fetch = cache.access(node, update=True)
            if fetch:
                line, bank, row = geom.placement(node, self._n_banks)
                finish = controller.read_fast(t_it, line, bank=bank, row=row)
                if finish > t_it:
                    t_it = finish
                vals[self._k_node_fetches] += 1
            if writeback is not None:
                wline, wbank, wrow = geom.placement(writeback, self._n_banks)
                controller.append_write_fast(
                    t_it, wline, wbank, wrow, True, None, core
                )
            t_it += self._hash_ns
        return t_it + self._hash_ns

    def _tree_verify(self, t: float, block_key: int, core: int) -> float:
        """Verify an NVM-fetched counter block against the tree."""
        cache = self.tree_cache
        geom = self._tree_geom
        vals = self._vals
        vals[self._k_path_verifies] += 1
        t += self._hash_ns  # hash the fetched counter block
        for node in geom.ancestors(block_key):
            hit, writeback, fetch = cache.access(node, update=False)
            if hit:
                return t  # cached nodes are already verified — trusted stop
            line, bank, row = geom.placement(node, self._n_banks)
            result = self.controller.read(t, line, bank=bank, row=row)
            if result.finish_time > t:
                t = result.finish_time
            vals[self._k_node_fetches] += 1
            if writeback is not None:
                wline, wbank, wrow = geom.placement(writeback, self._n_banks)
                self.controller.append_write(
                    t,
                    wline,
                    bank=wbank,
                    row=wrow,
                    is_counter=True,
                    payload=None,
                    core=core,
                )
            t += self._hash_ns  # verify hash at this level
        return t  # reached the root register; the compare is free

    def _tree_verify_fast(self, t: float, block_key: int, core: int) -> float:
        """:meth:`_tree_verify` on the fast controller chain."""
        cache = self.tree_cache
        geom = self._tree_geom
        vals = self._vals
        controller = self.controller
        vals[self._k_path_verifies] += 1
        t += self._hash_ns
        for node in geom.ancestors(block_key):
            hit, writeback, fetch = cache.access(node, update=False)
            if hit:
                return t
            line, bank, row = geom.placement(node, self._n_banks)
            finish = controller.read_fast(t, line, bank=bank, row=row)
            if finish > t:
                t = finish
            vals[self._k_node_fetches] += 1
            if writeback is not None:
                wline, wbank, wrow = geom.placement(writeback, self._n_banks)
                controller.append_write_fast(
                    t, wline, wbank, wrow, True, None, core
                )
            t += self._hash_ns
        return t

    # ------------------------------------------------------------------
    # Persist path (clwb write-backs and dirty LLC evictions)
    # ------------------------------------------------------------------

    def persist_line(
        self,
        t: float,
        line: int,
        payload: Optional[bytes] = None,
        core: int = 0,
        persistent: bool = True,
    ) -> PersistResult:
        """Persist one dirty line arriving at the memory controller.

        ``persistent`` distinguishes explicit flushes (clwb — the write
        matters for crash consistency) from plain cache evictions; only
        the SCA scheme treats them differently (counter-atomic pair vs
        data-only append).

        Returns the durability time: when the line (plus its counter under
        write-through) entered the ADR domain.
        """
        self._check_alive()
        self._vals[self._k_data_writes] += 1

        if not self._encrypted:
            durable = self.controller.append_write(
                t, line, payload=payload, core=core
            )
            self.crash_ctl.probe("after-data-append")
            return PersistResult(durable_time=durable)

        # 1. advance the counter; handle minor overflow by re-encrypting.
        reencrypted = False
        block_key, slot, overflowed = self.counters.bump(line)
        if overflowed:
            t = self.reencrypt_page(t, self.amap.page_of_line(line))
            reencrypted = True
            block_key, slot, overflowed = self.counters.bump(line)
            if overflowed:  # pragma: no cover - fresh minors cannot saturate
                raise SimulationError("minor counter overflowed after re-encryption")

        # 2. counter cache (read-modify-write of the counter line).
        hit, writeback_page, fetch = self.counter_cache.access(
            block_key, update=True, t=t
        )
        if fetch:
            t = max(t, self._fetch_counter_line(t, line, block_key))
        if writeback_page is not None:
            # Write-back mode: a dirty victim leaves the cache.
            victim = self._counter_entry(
                line=writeback_page * self.counters.lines_per_block,
                block_key=writeback_page,
                payload_wanted=self._functional,
            )
            self.controller.append_write(
                t,
                victim.line,
                bank=victim.bank,
                row=victim.row,
                is_counter=True,
                payload=victim.payload,
                core=core,
            )

        # 3. OTP generation + encryption (AES pipeline latency).
        ciphertext = self._encrypt(line, payload)
        t_enc = t + self._aes_ns
        if self.tracer.enabled:
            self.tracer.crypto(t, self._aes_ns, "otp_write", line)

        # 4. persist.
        if self._cc_write_through:
            if self._integrity_tree:
                # Tree walk starts once the counter is resolved; the line
                # MAC (over the ciphertext) follows the AES pipeline. The
                # pair becomes durable only when both are done — strictly
                # additive over plain SuperMem.
                t_it = self._tree_update(t, block_key, core)
                t_ready = t_enc + self._hash_ns
                if t_it > t_ready:
                    t_ready = t_it
                self._vals[self._k_mac_writes] += 1
            else:
                t_ready = t_enc
            counter_entry = self._counter_entry(
                line, block_key, payload_wanted=self._functional
            )
            if self._it_shadow is not None and counter_entry.payload is not None:
                self._it_shadow.update_leaf(block_key, counter_entry.payload)
            data_entry = self._data_entry(line, ciphertext)
            if self._atomicity_register:
                # Figure 7: both staged, both appended as one unit.
                durable = self.controller.append_pair(
                    t_ready, data_entry, counter_entry
                )
                self.crash_ctl.probe("after-pair-append")
            else:
                # Figure 6 (broken baseline): the counter is appended while
                # the data is still being encrypted — the crash window.
                self.controller.append_write(
                    t,
                    counter_entry.line,
                    bank=counter_entry.bank,
                    row=counter_entry.row,
                    is_counter=True,
                    payload=counter_entry.payload,
                    core=core,
                )
                self.crash_ctl.probe(
                    "wt-no-register-gap",
                    detail=f"counter of line {line:#x} durable, data not",
                )
                durable = self.controller.append_write(
                    t_ready,
                    data_entry.line,
                    payload=data_entry.payload,
                    core=core,
                )
                self.crash_ctl.probe("after-data-append")
        elif self._sca_mode and persistent:
            # SCA: persistent (clwb-originated) writes carry their counter
            # into the ADR domain atomically; the cached copy is then
            # clean. Evictions fall through to the data-only path below.
            counter_entry = self._counter_entry(
                line, block_key, payload_wanted=self._functional
            )
            data_entry = self._data_entry(line, ciphertext)
            durable = self.controller.append_pair(t_enc, data_entry, counter_entry)
            self.counter_cache.mark_clean(block_key)
            self.stats.inc("secmem", "sca_pairs")
            self.crash_ctl.probe("after-pair-append")
        else:
            # Write-back counter cache: data only; counter stays dirty.
            durable = self.controller.append_write(
                t_enc, line, payload=ciphertext, core=core
            )
            self.crash_ctl.probe("after-data-append")
            self._osiris_tick(t_enc, line, block_key, core)

        if self._osiris_stop_loss > 0 and self._functional and payload is not None:
            # ECC/MAC check bits travel with the line (recovery oracle).
            self.controller.nvm.set_mac(line, _line_mac(payload))

        return PersistResult(durable_time=durable, reencrypted=reencrypted)

    # ------------------------------------------------------------------
    # Fast chain (batched replay, tracer disabled, nothing armed)
    # ------------------------------------------------------------------
    #
    # persist_line_fast/read_line_fast are operation-for-operation twins
    # of persist_line/read_line used by the batched replay loop
    # (:meth:`repro.sim.engine.CoreEngine.run_batched_replay`) when the
    # tracer is disabled and no crash point is armed. Under that gate the
    # only things they skip are unobservable: tracer emissions, crash
    # probes that cannot fire, the liveness re-check (done once at run
    # start), the functional read-payload decryption (the replay loop
    # discards it), and the result-object allocations — both return bare
    # floats. Every stat bump, queue/bank/counter mutation, and float
    # operation matches the regular path; tests/sim/test_batch.py
    # asserts bit-identical results across schemes and fidelities.

    def persist_line_fast(
        self,
        t: float,
        line: int,
        payload: Optional[bytes] = None,
        core: int = 0,
        persistent: bool = True,
    ) -> float:
        """:meth:`persist_line` for the fast chain; returns durable time."""
        self._vals[self._k_data_writes] += 1
        controller = self.controller
        amap = self.amap

        if not self._encrypted:
            return controller.append_write_fast(
                t,
                line,
                amap.bank_of_line(line),
                amap.row_of_line(line),
                False,
                payload,
                core,
            )

        block_key, slot, overflowed = self.counters.bump(line)
        if overflowed:
            t = self.reencrypt_page(t, amap.page_of_line(line))
            block_key, slot, overflowed = self.counters.bump(line)
            if overflowed:  # pragma: no cover - fresh minors cannot saturate
                raise SimulationError("minor counter overflowed after re-encryption")

        hit, writeback_page, fetch = self.counter_cache.access(
            block_key, update=True, t=t
        )
        if fetch:
            fetched = self._fetch_counter_line_fast(t, line, block_key)
            if fetched > t:
                t = fetched
        if writeback_page is not None:
            victim = self._counter_entry(
                line=writeback_page * self.counters.lines_per_block,
                block_key=writeback_page,
                payload_wanted=self._functional,
            )
            controller.append_write_fast(
                t, victim.line, victim.bank, victim.row, True, victim.payload, core
            )

        ciphertext = self._encrypt(line, payload)
        t_enc = t + self._aes_ns

        if self._cc_write_through:
            if self._integrity_tree:
                t_it = self._tree_update_fast(t, block_key, core)
                t_ready = t_enc + self._hash_ns
                if t_it > t_ready:
                    t_ready = t_it
                self._vals[self._k_mac_writes] += 1
            else:
                t_ready = t_enc
            counter_entry = self._counter_entry(
                line, block_key, payload_wanted=self._functional
            )
            if self._it_shadow is not None and counter_entry.payload is not None:
                self._it_shadow.update_leaf(block_key, counter_entry.payload)
            if self._atomicity_register:
                durable = controller.append_pair_fast(
                    t_ready, self._data_entry(line, ciphertext), counter_entry
                )
            else:
                controller.append_write_fast(
                    t,
                    counter_entry.line,
                    counter_entry.bank,
                    counter_entry.row,
                    True,
                    counter_entry.payload,
                    core,
                )
                durable = controller.append_write_fast(
                    t_ready,
                    line,
                    amap.bank_of_line(line),
                    amap.row_of_line(line),
                    False,
                    ciphertext,
                    core,
                )
        elif self._sca_mode and persistent:
            counter_entry = self._counter_entry(
                line, block_key, payload_wanted=self._functional
            )
            durable = controller.append_pair_fast(
                t_enc, self._data_entry(line, ciphertext), counter_entry
            )
            self.counter_cache.mark_clean(block_key)
            self.stats.inc("secmem", "sca_pairs")
        else:
            durable = controller.append_write_fast(
                t_enc,
                line,
                amap.bank_of_line(line),
                amap.row_of_line(line),
                False,
                ciphertext,
                core,
            )
            if self._osiris_stop_loss > 0:
                self._osiris_tick(t_enc, line, block_key, core)

        if self._osiris_stop_loss > 0 and self._functional and payload is not None:
            self.controller.nvm.set_mac(line, _line_mac(payload))

        return durable

    def read_line_fast(self, t: float, line: int, core: int = 0) -> float:
        """:meth:`read_line` for the fast chain; returns the finish time.

        Skips the functional plaintext read — the batched replay loop
        only consumes the finish time, and
        :meth:`functional_read_plaintext` is side-effect-free (stats-free
        NVM peek plus a pure decrypt), so the skip is unobservable.
        """
        self._vals[self._k_data_reads] += 1
        data_finish = self.controller.read_fast(t, line)

        if not self._encrypted:
            return data_finish

        block_key = self.counters.block_key_of_line(line)
        hit, writeback_page, fetch = self.counter_cache.access(
            block_key, update=False, t=t
        )
        vals = self._vals
        vals[self._k_cc_read_accesses] += 1
        if hit:
            vals[self._k_cc_read_hits] += 1
        if fetch:
            ctr_ready = self._fetch_counter_line_fast(t, line, block_key)
            if self._integrity_tree:
                ctr_ready = self._tree_verify_fast(ctr_ready, block_key, core)
        else:
            ctr_ready = t
        if writeback_page is not None:
            victim = self._counter_entry(
                line=writeback_page * self.counters.lines_per_block,
                block_key=writeback_page,
                payload_wanted=self._functional,
            )
            self.controller.append_write_fast(
                t, victim.line, victim.bank, victim.row, True, victim.payload, core
            )

        pad_ready = ctr_ready + self._aes_ns
        finish = data_finish if data_finish > pad_ready else pad_ready
        if self._integrity_tree:
            finish += self._hash_ns
            vals[self._k_mac_verifies] += 1
        return finish

    def _fetch_counter_line_fast(self, t: float, line: int, block_key: int) -> float:
        """:meth:`_fetch_counter_line` minus the tracer emission."""
        placement = self.layout.placement(block_key, self.amap.bank_of_line(line))
        finish = self.controller.read_fast(
            t, placement.line, bank=placement.bank, row=placement.row
        )
        self.stats.inc("secmem", "counter_fetches")
        return finish

    def _osiris_tick(self, t: float, line: int, block_key: int, core: int) -> None:
        """Osiris stop-loss: persist the counter line every N-th update."""
        stop_loss = self.config.osiris_stop_loss
        if stop_loss <= 0:
            return
        count = self._osiris_updates.get(block_key, 0) + 1
        if count >= stop_loss:
            count = 0
            entry = self._counter_entry(
                line, block_key, payload_wanted=self.config.functional
            )
            self.controller.append_write(
                t,
                entry.line,
                bank=entry.bank,
                row=entry.row,
                is_counter=True,
                payload=entry.payload,
                core=core,
            )
            self.counter_cache.mark_clean(block_key)
            self.stats.inc("secmem", "osiris_stop_loss_writes")
        self._osiris_updates[block_key] = count

    # ------------------------------------------------------------------
    # Read path (LLC misses)
    # ------------------------------------------------------------------

    def read_line(self, t: float, line: int, core: int = 0) -> ReadLineResult:
        """Service an LLC-miss read."""
        self._check_alive()
        self._vals[self._k_data_reads] += 1
        data_result = self.controller.read(t, line)

        if not self._encrypted:
            payload = (
                self.controller.read_payload(line) if self._functional else None
            )
            return ReadLineResult(
                finish_time=data_result.finish_time,
                payload=payload,
                counter_cache_hit=True,
            )

        block_key = self.counters.block_key_of_line(line)
        hit, writeback_page, fetch = self.counter_cache.access(
            block_key, update=False, t=t
        )
        # Read-path hit rate tracked separately: these are the hits that
        # decide whether OTP generation overlaps the data fetch (Fig. 2b),
        # i.e. the hit rate Figure 17a is about.
        vals = self._vals
        vals[self._k_cc_read_accesses] += 1
        if hit:
            vals[self._k_cc_read_hits] += 1
        if fetch:
            # Counter fetch runs in parallel with the data read, but the
            # OTP can only be generated once the counter arrives.
            ctr_ready = self._fetch_counter_line(t, line, block_key)
            if self._integrity_tree:
                # A counter from NVM is untrusted until its tree path
                # reaches a cached (trusted) ancestor or the root.
                ctr_ready = self._tree_verify(ctr_ready, block_key, core)
        else:
            ctr_ready = t
        if writeback_page is not None:
            victim = self._counter_entry(
                line=writeback_page * self.counters.lines_per_block,
                block_key=writeback_page,
                payload_wanted=self._functional,
            )
            self.controller.append_write(
                t,
                victim.line,
                bank=victim.bank,
                row=victim.row,
                is_counter=True,
                payload=victim.payload,
                core=core,
            )

        pad_ready = ctr_ready + self._aes_ns
        if self.tracer.enabled:
            self.tracer.crypto(ctr_ready, self._aes_ns, "otp_read", line)
        finish = max(data_result.finish_time, pad_ready)
        if self._integrity_tree:
            # Line-MAC check over the fetched ciphertext.
            finish += self._hash_ns
            vals[self._k_mac_verifies] += 1

        payload = None
        if self._functional:
            payload = self.functional_read_plaintext(line)
        return ReadLineResult(
            finish_time=finish, payload=payload, counter_cache_hit=hit
        )

    def functional_read_plaintext(self, line: int) -> bytes:
        """Current plaintext of ``line`` (never-written lines read zero)."""
        entry = self.controller.wq.find_line(line)
        if entry is None and not self.controller.nvm.contains(line):
            return ZERO_LINE
        ciphertext = self.controller.read_payload(line)
        if self.cipher is None:
            return ciphertext
        return self.cipher.decrypt(
            line, self.counters.counter_of_line(line), ciphertext
        )

    # ------------------------------------------------------------------
    # Page re-encryption (Section 3.4.4)
    # ------------------------------------------------------------------

    def reencrypt_page(self, t: float, page: int) -> float:
        """Re-encrypt every line of ``page`` under a bumped major counter.

        Each line goes through the regular persist sequence (Figure 7), so
        consistency, CWC and XBank all apply. The RSR tracks progress and
        is probed per line so crash experiments can interrupt mid-way.
        """
        self._check_alive()
        if self.counters.organization != "split":
            raise SimulationError("re-encryption applies to split counters only")
        self.stats.inc("secmem", "page_reencryptions")

        block = self.counters.block(page)
        # Capture plaintexts under the OLD counters before resetting them.
        plaintexts: Dict[int, Optional[bytes]] = {}
        lines = self.amap.lines_of_page(page)
        if self.config.functional and self.cipher is not None:
            for slot, line in enumerate(lines):
                plaintexts[slot] = self._plaintext_under_current_counter(line)

        old_major = block.start_reencryption()
        self.rsr = RSRRecord(page=page, old_major=old_major)

        for slot, line in enumerate(lines):
            # read the old ciphertext (bank read)...
            result = self.controller.read(t, line)
            t = result.finish_time
            # ...reset this line's minor and re-encrypt under the fresh
            # counter; pending slots keep their old minors so a crash here
            # stays recoverable via the RSR.
            block.reset_minor(slot)
            ciphertext = None
            if self.config.functional and self.cipher is not None:
                plaintext = plaintexts[slot]
                if plaintext is not None:
                    ciphertext = self.cipher.encrypt(
                        line, block.encryption_counter(slot), plaintext
                    )
            t_enc = t + self.config.timing.aes_ns
            if self.tracer.enabled:
                self.tracer.crypto(t, self.config.timing.aes_ns, "otp_write", line)
            if self._integrity_tree:
                # Counter mutated — the tree path must absorb it (the
                # first line dirties the ancestors; the rest coalesce).
                t_it = self._tree_update(t, page, core=0)
                t_ready = t_enc + self._hash_ns
                if t_it > t_ready:
                    t_ready = t_it
                self._vals[self._k_mac_writes] += 1
            else:
                t_ready = t_enc
            counter_entry = self._counter_entry(
                line, page, payload_wanted=self.config.functional
            )
            if self._it_shadow is not None and counter_entry.payload is not None:
                self._it_shadow.update_leaf(page, counter_entry.payload)
            data_entry = self._data_entry(line, ciphertext)
            if self.counter_cache.write_through:
                t = self.controller.append_pair(t_ready, data_entry, counter_entry)
            else:
                t = self.controller.append_write(
                    t_enc, line, payload=ciphertext
                )
            self.rsr.mark_done(slot)
            self.crash_ctl.probe("reencrypt-line-done", detail=f"page {page} slot {slot}")

        # Write-back mode: the block image in the cache is now dirty.
        if not self.counter_cache.write_through:
            self.counter_cache.access(page, update=True, t=t)
        self.rsr = None
        return t

    def _plaintext_under_current_counter(self, line: int) -> Optional[bytes]:
        """Plaintext of ``line`` decrypted with its pre-re-encryption counter."""
        entry = self.controller.wq.find_line(line)
        if entry is None and not self.controller.nvm.contains(line):
            return ZERO_LINE
        ciphertext = self.controller.read_payload(line)
        if self.cipher is None:
            return ciphertext
        return self.cipher.decrypt(
            line, self.counters.counter_of_line(line), ciphertext
        )

    # ------------------------------------------------------------------
    # Crash / shutdown
    # ------------------------------------------------------------------

    def crash(self) -> DurableImage:
        """Power failure: return what survives; the system becomes unusable."""
        self._check_alive()
        # 1. Ideal write-back: the battery flushes dirty counter lines.
        flushed_pages, lost_pages = self.counter_cache.crash()
        for page in flushed_pages:
            entry = self._counter_entry(
                line=page * self.counters.lines_per_block,
                block_key=page,
                payload_wanted=self.config.functional,
            )
            self.controller.nvm.write_line(entry.line, entry.payload)
        self.stats.inc("secmem", "crash_lost_counter_lines", len(lost_pages))
        # 2. Dirty tree nodes die with the SRAM (no battery): safe, the
        #    tree is rebuilt from the persisted counter region.
        if self.tree_cache is not None:
            lost_nodes = self.tree_cache.crash()
            self.stats.inc("secmem", "crash_lost_tree_nodes", len(lost_nodes))
        # 3. The ADR battery drains the write queue.
        self.controller.adr_flush()
        # 4. Snapshot.
        image = DurableImage(
            nvm=self.controller.nvm.snapshot(),
            rsr=(
                self.rsr.copy()
                if (self.rsr is not None and self.config.rsr_adr)
                else None
            ),
            config=self.config,
            macs=self.controller.nvm.snapshot_macs(),
            tree_root=(
                self._it_shadow.root if self._it_shadow is not None else None
            ),
        )
        self._dead = True
        return image

    def orderly_shutdown(self) -> DurableImage:
        """Clean shutdown: drain dirty counters and the queue, then image."""
        self._check_alive()
        for page in self.counter_cache.drain_dirty():
            entry = self._counter_entry(
                line=page * self.counters.lines_per_block,
                block_key=page,
                payload_wanted=self.config.functional,
            )
            self.controller.append_write(
                self.controller.clock,
                entry.line,
                bank=entry.bank,
                row=entry.row,
                is_counter=True,
                payload=entry.payload,
            )
        if self.tree_cache is not None and self._tree_geom is not None:
            for node in self.tree_cache.drain_dirty():
                wline, wbank, wrow = self._tree_geom.placement(
                    node, self._n_banks
                )
                self.controller.append_write(
                    self.controller.clock,
                    wline,
                    bank=wbank,
                    row=wrow,
                    is_counter=True,
                    payload=None,
                )
        self.controller.drain_all()
        image = DurableImage(
            nvm=self.controller.nvm.snapshot(),
            rsr=None,
            config=self.config,
            macs=self.controller.nvm.snapshot_macs(),
            tree_root=(
                self._it_shadow.root if self._it_shadow is not None else None
            ),
        )
        self._dead = True
        return image

    def drain(self) -> float:
        """Drain the write queue; returns the last completion time."""
        self._check_alive()
        return self.controller.drain_all()

    def checkpoint_counters(self) -> int:
        """Persist every dirty counter line to NVM (write-back mode).

        Models a quiescent point long after earlier writes: their counters
        have been evicted (or scrubbed) to NVM, which is the premise of
        the paper's Table 1 prepare-stage row — pre-transaction data and
        counters are durable and correct. No-op for write-through caches.
        Returns the number of counter lines persisted.
        """
        self._check_alive()
        dirty = self.counter_cache.drain_dirty()
        for page in dirty:
            entry = self._counter_entry(
                line=page * self.counters.lines_per_block,
                block_key=page,
                payload_wanted=self.config.functional,
            )
            self.controller.append_write(
                self.controller.clock,
                entry.line,
                bank=entry.bank,
                row=entry.row,
                is_counter=True,
                payload=entry.payload,
            )
        self.controller.drain_all()
        return len(dirty)
