"""Counter-mode memory encryption for the secure NVM.

This package implements the cryptographic substrate of SuperMem:

* :mod:`repro.crypto.aes` — a self-contained AES-128 block cipher
  (FIPS-197), used as the reference one-time-pad generator;
* :mod:`repro.crypto.engine` — pluggable pad engines. The default for
  simulation is a SHA-256 PRF engine, which preserves the property counter
  mode needs (a unique pseudorandom pad per ``(key, line address, counter)``)
  at a small fraction of pure-Python AES's cost. The AES engine validates
  the same plumbing in tests;
* :mod:`repro.crypto.counters` — the split-counter layout: one 64-bit major
  counter per 4 KB page plus 64 seven-bit minor counters, all packed in one
  64 B memory line (paper Figure 9);
* :mod:`repro.crypto.otp` — line encryption/decryption by XOR with the pad
  (paper Figure 3).
"""

from repro.crypto.aes import AES128
from repro.crypto.counters import CounterBlock, MINOR_COUNTER_MAX
from repro.crypto.engine import AESPadEngine, PadEngine, PRFPadEngine, make_engine
from repro.crypto.otp import LineCipher

__all__ = [
    "AES128",
    "CounterBlock",
    "MINOR_COUNTER_MAX",
    "AESPadEngine",
    "PadEngine",
    "PRFPadEngine",
    "make_engine",
    "LineCipher",
]
