"""Self-contained AES-128 block cipher (FIPS-197).

The secure-NVM literature, SuperMem included, generates one-time pads with a
pipelined AES engine. No third-party crypto package is available in this
environment, so this module implements AES-128 from the standard: S-box,
key expansion, and the ten-round SubBytes/ShiftRows/MixColumns/AddRoundKey
pipeline, plus the inverse cipher for completeness.

The implementation favours clarity over raw speed — pure-Python AES costs
tens of microseconds per block, which is why the simulator defaults to the
SHA-256 PRF engine in :mod:`repro.crypto.engine` and uses this cipher for
validation and for functional examples where fidelity matters more than
throughput. Correctness is pinned to the FIPS-197 Appendix B/C vectors in
the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import ConfigError

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns and its inverse.
_MUL2 = [_gmul(x, 2) for x in range(256)]
_MUL3 = [_gmul(x, 3) for x in range(256)]
_MUL9 = [_gmul(x, 9) for x in range(256)]
_MUL11 = [_gmul(x, 11) for x in range(256)]
_MUL13 = [_gmul(x, 13) for x in range(256)]
_MUL14 = [_gmul(x, 14) for x in range(256)]


class AES128:
    """AES-128 encrypting and decrypting 16-byte blocks.

    Parameters
    ----------
    key:
        Exactly 16 bytes of key material.

    Examples
    --------
    >>> cipher = AES128(bytes(range(16)))
    >>> block = bytes.fromhex("00112233445566778899aabbccddeeff")
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ConfigError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """Expand a 16-byte key into 11 round keys of 16 bytes each."""
        words: List[List[int]] = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // 4 - 1]
            words.append([w ^ p for w, p in zip(word, words[i - 4])])
        return [
            [b for word in words[r * 4 : r * 4 + 4] for b in word] for r in range(11)
        ]

    # ------------------------------------------------------------------
    # Forward cipher
    # ------------------------------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        state = self._check_block(plaintext)
        state = self._add_round_key(state, 0)
        for rnd in range(1, 10):
            state = [_SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, rnd)
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = self._add_round_key(state, 10)
        return bytes(state)

    # ------------------------------------------------------------------
    # Inverse cipher
    # ------------------------------------------------------------------

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        state = self._check_block(ciphertext)
        state = self._add_round_key(state, 10)
        for rnd in range(9, 0, -1):
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
            state = self._add_round_key(state, rnd)
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        state = self._add_round_key(state, 0)
        return bytes(state)

    # ------------------------------------------------------------------
    # Round primitives (column-major state, state[r + 4c])
    # ------------------------------------------------------------------

    def _check_block(self, block: bytes) -> List[int]:
        if len(block) != self.BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        return list(block)

    def _add_round_key(self, state: Sequence[int], rnd: int) -> List[int]:
        key = self._round_keys[rnd]
        return [s ^ k for s, k in zip(state, key)]

    @staticmethod
    def _shift_rows(state: Sequence[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[row + 4 * col] = state[row + 4 * ((col + row) % 4)]
        return out

    @staticmethod
    def _inv_shift_rows(state: Sequence[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[row + 4 * ((col + row) % 4)] = state[row + 4 * col]
        return out

    @staticmethod
    def _mix_columns(state: Sequence[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 * col + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[4 * col + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[4 * col + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(state: Sequence[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * col + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * col + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * col + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
