"""Split-counter storage: one 64 B counter line per 4 KB page.

SuperMem adopts the *split counter* organisation (paper Figure 9): each
4 KB page shares a single 64-bit **major** counter and carries one 7-bit
**minor** counter per 64 B memory line. The whole bundle is
``64 + 64 * 7 = 512`` bits = 64 bytes, exactly one memory line. Two
consequences drive the design:

* *Spatial locality of counter storage* — the counters of 64 consecutive
  data lines live in **one** counter line, which is what counter write
  coalescing (CWC) exploits;
* *Overflow handling* — a minor counter saturates after
  ``2**7 - 1 = 127`` increments, at which point the page's major counter is
  bumped, all minors reset, and every line of the page is re-encrypted
  (:mod:`repro.core.reencrypt`).

The encryption counter of a line is the concatenation
``major << minor_bits | minor``, which is unique per write as long as the
major counter never overflows (a 64-bit major outlives NVM cell endurance,
Section 3.4.1).

A *monolithic* organisation (one private 64-bit counter per line, as in the
pre-split-counter literature) is also provided for the ablation benchmark:
it never overflows but packs only 8 counters per counter line, so CWC has
an eighth of the reach.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.common.address import LINES_PER_PAGE
from repro.common.errors import ConfigError

#: Maximum value of a 7-bit minor counter.
MINOR_COUNTER_MAX = (1 << 7) - 1


@dataclass
class CounterBlock:
    """The split counters of one page: a major and 64 minors.

    Attributes
    ----------
    major:
        The page's shared 64-bit major counter.
    minors:
        64 per-line minor counters (each < 2**minor_bits).
    minor_bits:
        Width of each minor counter; 7 in the paper.
    """

    major: int = 0
    minors: List[int] = field(default_factory=lambda: [0] * LINES_PER_PAGE)
    minor_bits: int = 7

    def __post_init__(self) -> None:
        if len(self.minors) != LINES_PER_PAGE:
            raise ConfigError(
                f"split counter block needs {LINES_PER_PAGE} minors, "
                f"got {len(self.minors)}"
            )

    @property
    def minor_max(self) -> int:
        """Largest representable minor counter value."""
        return (1 << self.minor_bits) - 1

    def encryption_counter(self, slot: int) -> int:
        """Combined counter encrypting line ``slot`` of the page.

        The value is unique per (page, slot, write) because the major
        counter increments whenever any minor wraps.
        """
        return (self.major << self.minor_bits) | self.minors[slot]

    def bump(self, slot: int) -> bool:
        """Increment the minor counter of ``slot`` for a new write.

        Returns
        -------
        bool
            ``True`` when the minor overflowed. The caller must then run
            page re-encryption: :meth:`start_reencryption` gives the new
            counters and every line of the page must be re-encrypted under
            them (Section 3.4.4). The minor is left saturated until
            re-encryption resets it, so the overflow is never silently
            dropped.
        """
        if self.minors[slot] >= self.minor_max:
            return True
        self.minors[slot] += 1
        return False

    def start_reencryption(self) -> int:
        """Bump the major counter; return the old major.

        Minor counters are **not** reset here: each minor is zeroed
        individually (:meth:`reset_minor`) as its line is re-encrypted.
        This is what makes a crash mid-re-encryption recoverable — the NVM
        counter-line image still carries the *old* minors of
        not-yet-re-encrypted lines, and the RSR's old major (recorded by
        the caller) completes their decryption counters.
        """
        old_major = self.major
        self.major += 1
        return old_major

    def reset_minor(self, slot: int) -> None:
        """Zero one minor as its line is re-encrypted under the new major."""
        self.minors[slot] = 0

    def copy(self) -> "CounterBlock":
        """An independent copy (used when snapshotting durable state)."""
        return CounterBlock(
            major=self.major, minors=list(self.minors), minor_bits=self.minor_bits
        )

    # ------------------------------------------------------------------
    # Wire format: 8-byte little-endian major + 64 minors packed 7 bits
    # each (for minor_bits == 7; wider minors use one byte each and the
    # block is then larger than a line, which only the ablation uses).
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the 64 B memory-line image stored in NVM."""
        out = bytearray(struct.pack("<Q", self.major & ((1 << 64) - 1)))
        if self.minor_bits == 7:
            bits = 0
            nbits = 0
            for minor in self.minors:
                bits |= (minor & 0x7F) << nbits
                nbits += 7
                while nbits >= 8:
                    out.append(bits & 0xFF)
                    bits >>= 8
                    nbits -= 8
            if nbits:
                out.append(bits & 0xFF)
        else:
            for minor in self.minors:
                out += struct.pack("<H", minor)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, minor_bits: int = 7) -> "CounterBlock":
        """Parse a memory-line image produced by :meth:`to_bytes`."""
        major = struct.unpack_from("<Q", data, 0)[0]
        minors: List[int] = []
        if minor_bits == 7:
            bits = 0
            nbits = 0
            pos = 8
            while len(minors) < LINES_PER_PAGE:
                while nbits < 7:
                    bits |= data[pos] << nbits
                    nbits += 8
                    pos += 1
                minors.append(bits & 0x7F)
                bits >>= 7
                nbits -= 7
        else:
            for slot in range(LINES_PER_PAGE):
                minors.append(struct.unpack_from("<H", data, 8 + 2 * slot)[0])
        return cls(major=major, minors=minors, minor_bits=minor_bits)


@dataclass
class MonolithicCounterBlock:
    """Eight private 64-bit line counters packed in one 64 B line.

    Used only by the counter-organisation ablation: no overflow ever
    happens, but one counter line covers just 8 data lines, shrinking both
    counter-cache reach and CWC's coalescing opportunity by 8x.
    """

    LINES_PER_BLOCK = 8

    counters: List[int] = field(default_factory=lambda: [0] * 8)

    def encryption_counter(self, slot: int) -> int:
        """The private counter of line ``slot`` in this block."""
        return self.counters[slot]

    def bump(self, slot: int) -> bool:
        """Increment; a 64-bit counter never overflows in practice."""
        self.counters[slot] += 1
        return False

    def copy(self) -> "MonolithicCounterBlock":
        return MonolithicCounterBlock(counters=list(self.counters))

    def to_bytes(self) -> bytes:
        return struct.pack("<8Q", *(c & ((1 << 64) - 1) for c in self.counters))

    @classmethod
    def from_bytes(cls, data: bytes) -> "MonolithicCounterBlock":
        return cls(counters=list(struct.unpack_from("<8Q", data, 0)))
