"""Pluggable one-time-pad engines for counter-mode encryption.

Counter-mode encryption (paper Figure 3) derives a 64-byte pad from
``(secret key, line address, counter)`` and XORs it with the memory line.
Security rests on one property: the pad for a given ``(address, counter)``
pair is pseudorandom and never reused. Any PRF with a secret key provides
this; the paper uses a pipelined AES engine because that is what hardware
ships.

Two engines are provided:

* :class:`AESPadEngine` — the faithful construction. Each 16-byte pad block
  is ``AES_k(address || counter || block_index)``, so a 64 B line needs four
  AES block encryptions. Pure-Python AES makes this the slow path; it is
  used in tests and high-fidelity functional runs.
* :class:`PRFPadEngine` — the default. The pad is
  ``SHA-256(key || address || counter || i)`` blocks concatenated. SHA-256
  is implemented in C inside CPython, so this is two orders of magnitude
  faster while preserving the unique-pseudorandom-pad property. This
  substitution is recorded in DESIGN.md.

Both engines are deterministic functions of their key, which is what lets
crash-recovery experiments re-derive pads after a simulated power failure.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Protocol, Tuple

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.crypto.aes import AES128

#: Default size of the per-engine pad memo. Counter-cache temporal locality
#: means the same (line, counter) pad is often needed twice in short order —
#: once to decrypt the old ciphertext during a read-modify-write or page
#: re-encryption, once more on the recovery scan — so a few thousand entries
#: capture most of the reuse without unbounded growth.
DEFAULT_PAD_MEMO_ENTRIES = 4096


class PadEngine(Protocol):
    """A deterministic one-time-pad generator."""

    def pad(self, line_addr: int, counter: int) -> bytes:
        """Return ``CACHE_LINE_SIZE`` pad bytes for ``(line_addr, counter)``."""
        ...

    def pads(self, pairs: Iterable[Tuple[int, int]]) -> List[bytes]:
        """Return pads for many ``(line_addr, counter)`` pairs at once."""
        ...


class _MemoMixin:
    """Bounded FIFO memo of ``(line_addr, counter) -> pad``.

    Pads are pure functions of the key, so caching is semantically
    invisible; the memo only saves recomputation. Eviction is
    insertion-order FIFO (``next(iter(dict))``), which is deterministic —
    important because the simulator's results must not depend on memory
    pressure. ``memo_entries=0`` disables caching entirely (used by the
    differential tests in tests/crypto/test_engine_memo.py).
    """

    _memo: Dict[Tuple[int, int], bytes]
    _memo_entries: int

    def _memo_init(self, memo_entries: int) -> None:
        if memo_entries < 0:
            raise ConfigError("pad memo size must be >= 0")
        self._memo = {}
        self._memo_entries = memo_entries

    def _memo_put(self, key: Tuple[int, int], pad: bytes) -> bytes:
        memo = self._memo
        if self._memo_entries:
            if len(memo) >= self._memo_entries:
                del memo[next(iter(memo))]
            memo[key] = pad
        return pad


class AESPadEngine(_MemoMixin):
    """Faithful AES-128 pad generation (four blocks per 64 B line).

    The 16-byte AES input packs the line address (8 bytes), the counter
    (7 bytes — enough for a 56-bit combined major/minor value far beyond
    NVM endurance), and the block index (1 byte), mirroring how hardware
    feeds the line address and counter into the AES pipeline.
    """

    def __init__(self, key: bytes, memo_entries: int = DEFAULT_PAD_MEMO_ENTRIES):
        if len(key) != 16:
            raise ConfigError("AES pad engine needs a 16-byte key")
        self._cipher = AES128(key)
        self._memo_init(memo_entries)

    def pad(self, line_addr: int, counter: int) -> bytes:
        key = (line_addr, counter)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        return self._memo_put(key, self._compute(line_addr, counter))

    def pads(self, pairs: Iterable[Tuple[int, int]]) -> List[bytes]:
        """Batch pad generation for recovery scans (bypasses the memo)."""
        compute = self._compute
        return [compute(line, counter) for line, counter in pairs]

    def _compute(self, line_addr: int, counter: int) -> bytes:
        blocks = []
        counter_bytes = (counter & ((1 << 56) - 1)).to_bytes(7, "little")
        for index in range(CACHE_LINE_SIZE // AES128.BLOCK_SIZE):
            seed = struct.pack("<Q", line_addr) + counter_bytes + bytes([index])
            blocks.append(self._cipher.encrypt_block(seed))
        return b"".join(blocks)


class PRFPadEngine(_MemoMixin):
    """SHA-256-based PRF pad generation (fast default).

    ``pad = SHA256(key || addr || counter || 0) || SHA256(key || addr ||
    counter || 1)`` truncated to 64 bytes.
    """

    def __init__(self, key: bytes, memo_entries: int = DEFAULT_PAD_MEMO_ENTRIES):
        if not key:
            raise ConfigError("PRF pad engine needs a non-empty key")
        self._key = bytes(key)
        self._memo_init(memo_entries)

    def pad(self, line_addr: int, counter: int) -> bytes:
        key = (line_addr, counter)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        prefix = self._key + struct.pack("<QQ", line_addr, counter)
        sha256 = hashlib.sha256
        return self._memo_put(
            key,
            sha256(prefix + b"\x00").digest() + sha256(prefix + b"\x01").digest(),
        )

    def pads(self, pairs: Iterable[Tuple[int, int]]) -> List[bytes]:
        """Batch pad generation for multi-line recovery scans.

        Binds ``hashlib.sha256``, the key, and ``struct.pack`` locally and
        skips the memo — a recovery scan touches each line once, so caching
        its pads would only evict the hot working set.
        """
        sha256 = hashlib.sha256
        pack = struct.pack
        base = self._key
        out = []
        for line_addr, counter in pairs:
            prefix = base + pack("<QQ", line_addr, counter)
            out.append(
                sha256(prefix + b"\x00").digest()
                + sha256(prefix + b"\x01").digest()
            )
        return out


def make_engine(kind: str, key: bytes) -> PadEngine:
    """Build a pad engine by name.

    Parameters
    ----------
    kind:
        ``"aes"`` for the reference AES-128 engine, ``"prf"`` for the fast
        SHA-256 engine.
    key:
        Secret key; 16 bytes for AES, any non-empty length for PRF.
    """
    if kind == "aes":
        return AESPadEngine(key)
    if kind == "prf":
        return PRFPadEngine(key)
    raise ConfigError(f"unknown pad engine {kind!r} (expected 'aes' or 'prf')")
