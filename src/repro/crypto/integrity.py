"""Memory authentication: line MACs + a Bonsai-style Merkle counter tree.

The paper's threat model (Section 2.2.1, footnote 1) excludes bus
*tampering*, noting it "can be defended via Merkle Trees based
authentication techniques, which are orthogonal to our work". This module
implements that orthogonal layer so the repository covers the full secure-
NVM stack:

* **per-line MACs** — ``HMAC(key, line_addr || counter || ciphertext)``
  stored alongside each line. Because the counter is MAC'd, replaying an
  old (ciphertext, MAC) pair fails once the counter advanced;
* **a Merkle tree over the counter blocks** (the Bonsai organisation:
  authenticating the counters transitively authenticates the data MACs,
  so only the tree root needs trusted on-chip storage). The root lives
  "on chip" — an attacker with full NVM access cannot forge any counter
  without breaking the hash.

The tree is binary, built over the serialized counter-block images, and
supports incremental updates (one leaf changes → log-depth path rehash),
root extraction for the trusted register, and verification with an
explicit audit path.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SecurityError

_HASH_BYTES = 16  # truncated SHA-256, plenty for a simulator


def _h(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()[:_HASH_BYTES]


class LineMAC:
    """Keyed MAC binding a line's ciphertext to its address and counter."""

    MAC_BYTES = 8

    def __init__(self, key: bytes):
        if not key:
            raise ConfigError("MAC key must be non-empty")
        self._key = bytes(key)

    def compute(self, line_addr: int, counter: int, ciphertext: bytes) -> bytes:
        message = struct.pack("<QQ", line_addr, counter) + ciphertext
        return hmac.new(self._key, message, hashlib.sha256).digest()[: self.MAC_BYTES]

    def verify(self, line_addr: int, counter: int, ciphertext: bytes, mac: bytes) -> bool:
        return hmac.compare_digest(self.compute(line_addr, counter, ciphertext), mac)


class MerkleCounterTree:
    """A binary Merkle tree over counter-block images (Bonsai style).

    Leaves are hashes of serialized counter blocks; the root is held in a
    trusted on-chip register. ``n_leaves`` is rounded up to a power of
    two; absent leaves hash an empty-block marker.
    """

    def __init__(self, n_leaves: int):
        if n_leaves <= 0:
            raise ConfigError("tree needs at least one leaf")
        size = 1
        while size < n_leaves:
            size *= 2
        self.n_leaves = size
        self._empty = _h(b"empty-counter-block")
        # nodes[level][index]; level 0 = leaves, top level = root.
        self._levels: List[List[bytes]] = []
        level = [self._empty] * size
        self._levels.append(level)
        while len(level) > 1:
            level = [
                _h(level[2 * i] + level[2 * i + 1]) for i in range(len(level) // 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        """The trusted on-chip root."""
        return self._levels[-1][0]

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def update_leaf(self, index: int, block_image: bytes) -> bytes:
        """Install a new counter-block image; returns the new root.

        Cost is one leaf hash plus ``depth`` internal rehashes — the
        incremental update real hardware performs per counter write.
        """
        self._check_index(index)
        self._levels[0][index] = _h(block_image)
        node = index
        for level in range(1, len(self._levels)):
            node //= 2
            left = self._levels[level - 1][2 * node]
            right = self._levels[level - 1][2 * node + 1]
            self._levels[level][node] = _h(left + right)
        return self.root

    def audit_path(self, index: int) -> List[Tuple[bytes, bool]]:
        """Sibling hashes from leaf to root: ``(hash, sibling_is_right)``."""
        self._check_index(index)
        path = []
        node = index
        for level in range(self.depth):
            sibling = node ^ 1
            path.append((self._levels[level][sibling], sibling > node))
            node //= 2
        return path

    @staticmethod
    def verify_path(
        block_image: bytes, path: List[Tuple[bytes, bool]], root: bytes
    ) -> bool:
        """Recompute the root from a leaf image and its audit path."""
        node = _h(block_image)
        for sibling, sibling_is_right in path:
            node = _h(node + sibling) if sibling_is_right else _h(sibling + node)
        return hmac.compare_digest(node, root)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise ConfigError(f"leaf index {index} outside 0..{self.n_leaves - 1}")


class IntegrityEngine:
    """The combined authentication layer for a secure NVM.

    Tracks per-line MACs and the counter Merkle tree; the memory system
    (or a test harness) calls :meth:`on_write` for every persisted line
    and :meth:`verify_read` for every fetch. Statistics expose the hash
    work so the overhead is measurable.
    """

    def __init__(self, n_counter_blocks: int, key: bytes = b"integrity-key"):
        self.mac = LineMAC(key)
        self.tree = MerkleCounterTree(n_counter_blocks)
        self._line_macs: Dict[int, bytes] = {}
        self.mac_computations = 0
        self.tree_updates = 0

    def on_write(
        self,
        line_addr: int,
        counter: int,
        ciphertext: bytes,
        block_key: Optional[int] = None,
        block_image: Optional[bytes] = None,
    ) -> None:
        """Authenticate one persisted line (and its counter block)."""
        self._line_macs[line_addr] = self.mac.compute(line_addr, counter, ciphertext)
        self.mac_computations += 1
        if block_key is not None and block_image is not None:
            self.tree.update_leaf(block_key, block_image)
            self.tree_updates += 1

    def verify_read(self, line_addr: int, counter: int, ciphertext: bytes) -> None:
        """Raise :class:`SecurityError` if the line fails authentication."""
        stored = self._line_macs.get(line_addr)
        self.mac_computations += 1
        if stored is None:
            raise SecurityError(f"no MAC recorded for line {line_addr:#x}")
        if not self.mac.verify(line_addr, counter, ciphertext, stored):
            raise SecurityError(f"MAC mismatch on line {line_addr:#x}")

    def verify_counter_block(self, block_key: int, block_image: bytes) -> None:
        """Raise :class:`SecurityError` if a counter block was tampered."""
        path = self.tree.audit_path(block_key)
        if not MerkleCounterTree.verify_path(block_image, path, self.tree.root):
            raise SecurityError(f"Merkle verification failed for block {block_key}")
