"""Line-level counter-mode encryption (paper Figure 3).

A :class:`LineCipher` encrypts and decrypts whole 64 B memory lines by
XOR with a one-time pad derived from ``(key, line address, counter)`` by a
:class:`~repro.crypto.engine.PadEngine`. Encryption and decryption are the
same XOR, as in any stream construction; what distinguishes them in the
memory system is *which* counter value is used — the caller must bump the
counter before encrypting a new write and must use the stored counter when
decrypting.

The cipher optionally tracks pad uniqueness: in paranoid mode it raises
:class:`~repro.common.errors.SecurityError` if the same ``(address,
counter)`` pair is ever used to encrypt twice, which is exactly the OTP
reuse the counter scheme exists to prevent. Tests use this to prove the
split-counter bump/overflow logic never reuses a pad.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import SecurityError
from repro.crypto.engine import PadEngine, make_engine


def xor_bytes(data: bytes, pad: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Implemented as one big-int XOR: ``int.from_bytes``/``to_bytes`` run in
    C, so a 64 B line costs three primitive calls instead of a 64-iteration
    Python generator with per-byte allocations.
    """
    n = len(data)
    if n != len(pad):
        raise ValueError(f"length mismatch: {n} vs {len(pad)}")
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(pad, "little")
    ).to_bytes(n, "little")


class LineCipher:
    """Counter-mode encryption of 64 B lines.

    Parameters
    ----------
    engine:
        Pad generator; defaults to the fast PRF engine with ``key``.
    key:
        Key handed to :func:`~repro.crypto.engine.make_engine` when no
        engine instance is supplied.
    engine_kind:
        ``"prf"`` (default) or ``"aes"``.
    track_pad_reuse:
        When True, every encryption records its ``(address, counter)`` pair
        and a repeat raises :class:`SecurityError`.
    """

    def __init__(
        self,
        key: bytes = b"supermem-default-key",
        engine: Optional[PadEngine] = None,
        engine_kind: str = "prf",
        track_pad_reuse: bool = False,
    ):
        if engine is None:
            if engine_kind == "aes":
                key = (key * 16)[:16]
            engine = make_engine(engine_kind, key)
        self._engine = engine
        self._track = track_pad_reuse
        self._used_pads: Set[Tuple[int, int]] = set()

    def encrypt(self, line_addr: int, counter: int, plaintext: bytes) -> bytes:
        """Encrypt one line under ``counter``.

        ``line_addr`` is the *line index* (not byte address); using the
        index keeps the pad input independent of the line size.
        """
        self._check_line(plaintext)
        if self._track:
            pair = (line_addr, counter)
            if pair in self._used_pads:
                raise SecurityError(
                    f"one-time pad reuse: line {line_addr:#x} counter {counter}"
                )
            self._used_pads.add(pair)
        return xor_bytes(plaintext, self._engine.pad(line_addr, counter))

    def decrypt(self, line_addr: int, counter: int, ciphertext: bytes) -> bytes:
        """Decrypt one line; correct only with the counter used to encrypt."""
        self._check_line(ciphertext)
        return xor_bytes(ciphertext, self._engine.pad(line_addr, counter))

    def decrypt_lines(
        self, items: Iterable[Tuple[int, int, bytes]]
    ) -> List[bytes]:
        """Decrypt many ``(line_addr, counter, ciphertext)`` triples at once.

        Recovery scans decrypt whole pages (or the full written image) in
        one pass; batching routes all pad derivations through
        :meth:`PadEngine.pads`, which binds the hash primitive once instead
        of per-line, and skips the pad memo the online path relies on.
        """
        triples = list(items)
        for _, _, ciphertext in triples:
            self._check_line(ciphertext)
        pads = self._engine.pads((line, counter) for line, counter, _ in triples)
        return [
            xor_bytes(ciphertext, pad)
            for (_, _, ciphertext), pad in zip(triples, pads)
        ]

    @staticmethod
    def _check_line(data: bytes) -> None:
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError(
                f"memory lines are {CACHE_LINE_SIZE} bytes, got {len(data)}"
            )
