"""Timed integrity-tree machinery: geometry, coalesced walk, reference.

Three pieces promote :mod:`repro.crypto.integrity` from functional-only
to a *timed, evaluated* scheme (``Scheme.SUPERMEM_BMT``):

* :class:`TreeGeometry` — the NVM placement of the Bonsai counter tree.
  Leaves are the counter blocks themselves (already persisted in the
  counter region at ``amap.n_lines + page``); internal nodes are 16 B
  hashes packed four to a 64 B line in a region *above* the counters,
  at ``amap.n_lines + n_pages + k``. The root lives in an on-chip
  register and has no NVM line. Node lines stripe across banks by line
  index, so with page-interleaved data they also stripe across memory
  channels — the placement the ``fig-channels`` sweep exercises.

* :class:`CoalescedTreeModel` — the functional twin of the timed write
  path: a real :class:`~repro.crypto.integrity.MerkleCounterTree`
  updated eagerly (so roots and verify outcomes are exact), with hash
  work counted per the Freij-style walk — climb leaf→root through the
  node cache and *stop at the first dirty cached ancestor*, whose
  eventual rehash folds the pending update in.

* :class:`NaiveTreeReference` — the retained full-path-update oracle:
  every counter write rehashes the entire leaf→root path. The
  differential suite (tests/crypto/test_tree_timed.py) drives both over
  randomized write/read sequences and asserts identical roots and
  verify outcomes with ``coalesced.hash_ops <= naive.hash_ops``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.address import AddressMap, CACHE_LINE_SIZE
from repro.common.config import CacheConfig, _default_tree_cache
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.cache.tree_cache import TreeNodeCache
from repro.crypto.integrity import _HASH_BYTES, MerkleCounterTree

#: 16 B hashes pack four to a 64 B NVM line.
NODES_PER_LINE = CACHE_LINE_SIZE // _HASH_BYTES


class TreeGeometry:
    """Node numbering and NVM placement of the counter Merkle tree.

    Internal nodes (levels ``1 .. depth-1``; the root register is not a
    node) get dense ids: level 1 first, then level 2, and so on. Node
    ``k`` lives in NVM line ``base_line + k // NODES_PER_LINE``.
    """

    def __init__(self, n_leaves: int, amap: Optional[AddressMap] = None):
        if n_leaves <= 0:
            raise ConfigError("tree needs at least one leaf")
        size = 1
        while size < n_leaves:
            size *= 2
        self.n_leaves = size
        self.depth = size.bit_length() - 1
        # Id offset of each internal level (1 .. depth-1).
        self._offsets: List[int] = [0, 0]
        count = 0
        for level in range(1, self.depth):
            count += size >> level
            self._offsets.append(count)
        #: Internal (cacheable, NVM-resident) nodes, root excluded.
        self.n_nodes = count
        self.amap = amap
        #: First NVM line of the tree-node region (just above the
        #: counter region's index extension).
        self.base_line = amap.n_lines + amap.n_pages if amap is not None else 0
        self.n_node_lines = -(-self.n_nodes // NODES_PER_LINE)

    def ancestors(self, leaf: int) -> List[int]:
        """Internal-node ids on the leaf→root path (root excluded)."""
        if not 0 <= leaf < self.n_leaves:
            raise ConfigError(f"leaf index {leaf} outside 0..{self.n_leaves - 1}")
        node = leaf
        out = []
        for level in range(1, self.depth):
            node >>= 1
            out.append(self._offsets[level] + node)
        return out

    def node_line(self, node: int) -> int:
        """NVM line holding ``node``'s 16 B hash."""
        return self.base_line + node // NODES_PER_LINE

    def placement(self, node: int, n_banks: int) -> Tuple[int, int, int]:
        """``(line, bank, row)`` of a tree node — bank-striped by line
        index so adjacent node lines spread over banks (and channels)."""
        line = self.node_line(node)
        bank = line % n_banks
        row = self.amap.row_of_line(line) if self.amap is not None else 0
        return line, bank, row


class NaiveTreeReference:
    """Full-path-update oracle: one leaf write rehashes leaf→root."""

    def __init__(self, n_leaves: int):
        self.tree = MerkleCounterTree(n_leaves)
        self.hash_ops = 0

    @property
    def root(self) -> bytes:
        return self.tree.root

    def update(self, leaf: int, block_image: bytes) -> bytes:
        self.tree.update_leaf(leaf, block_image)
        # One leaf hash + every internal level + the root register.
        self.hash_ops += 1 + self.tree.depth
        return self.tree.root

    def verify(self, leaf: int, block_image: bytes) -> bool:
        path = self.tree.audit_path(leaf)
        return MerkleCounterTree.verify_path(block_image, path, self.tree.root)


class CoalescedTreeModel:
    """Node-cached, coalesced twin of :class:`NaiveTreeReference`.

    Functionally identical (the underlying tree is updated eagerly, so
    the root is always exact); only the *counted hash work* follows the
    timed walk: stop at the first dirty cached ancestor, pay a fetch for
    every cache miss, write back dirty victims.
    """

    def __init__(self, n_leaves: int, cache_config: Optional[CacheConfig] = None):
        self.tree = MerkleCounterTree(n_leaves)
        self.geometry = TreeGeometry(self.tree.n_leaves)
        self.cache = TreeNodeCache(cache_config or _default_tree_cache(), Stats())
        self.hash_ops = 0
        self.node_fetches = 0
        self.node_writebacks = 0
        self.coalesced_stops = 0

    @property
    def root(self) -> bytes:
        return self.tree.root

    def update(self, leaf: int, block_image: bytes) -> bytes:
        self.tree.update_leaf(leaf, block_image)
        self.hash_ops += 1  # the leaf (counter-block) rehash
        for node in self.geometry.ancestors(leaf):
            if self.cache.is_dirty(node):
                self.cache.note_coalesced()
                self.coalesced_stops += 1
                return self.tree.root
            _, writeback, fetch = self.cache.access(node, update=True)
            if fetch:
                self.node_fetches += 1
            if writeback is not None:
                self.node_writebacks += 1
            self.hash_ops += 1
        if self.tree.depth:  # a single-leaf tree's leaf hash IS the root
            self.hash_ops += 1  # root register rehash
        return self.tree.root

    def verify(self, leaf: int, block_image: bytes) -> bool:
        path = self.tree.audit_path(leaf)
        return MerkleCounterTree.verify_path(block_image, path, self.tree.root)
