"""Experiment runners regenerating every table and figure of the paper.

Each module produces the paper artifact named in DESIGN.md's experiment
index:

* :mod:`repro.experiments.table1` — Table 1 (recoverability per
  transaction stage, via real crash injection and log recovery);
* :mod:`repro.experiments.fig13` — Figure 13 (single-core transaction
  latency across workloads, schemes, and request sizes);
* :mod:`repro.experiments.fig14` — Figure 14 (multi-programmed latency);
* :mod:`repro.experiments.fig15` — Figure 15 (NVM write requests
  normalised to Unsec);
* :mod:`repro.experiments.fig16` — Figure 16 (write-queue size
  sensitivity);
* :mod:`repro.experiments.fig17` — Figure 17 (counter-cache size
  sensitivity);
* :mod:`repro.experiments.ablations` — design-choice ablations beyond the
  paper (CWC policy, XBank offset, drain policy, counter organisation).

All runners accept a :class:`~repro.experiments.common.Scale` so the same
code serves quick benchmarks and full regenerations.
"""

from repro.experiments.common import Scale, SCALES, experiment_base_config
from repro.experiments.report import render_table

__all__ = ["Scale", "SCALES", "experiment_base_config", "render_table"]
