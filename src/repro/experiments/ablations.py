"""Design-choice ablations beyond the paper's figures.

These quantify the decisions DESIGN.md calls out:

* **CWC removal policy** — the paper argues removing the older counter
  entry and appending the new one at the tail coalesces more than merging
  in place (Section 3.4.3). :func:`cwc_policy_ablation` measures both.
* **XBank offset** — the paper picks ``N/2``; :func:`xbank_offset_sweep`
  sweeps the offset 1..N-1 to show the half-ring choice (adjacent-page
  allocations never collide with their own counters).
* **Drain policy** — the deferred-counter FR-FCFS drain vs eager FR-FCFS
  vs strict FIFO (:func:`drain_policy_ablation`): eager drains gut CWC's
  coalescing window; FIFO destroys bank parallelism.
* **Counter organisation** — split counters (64 lines per counter line)
  vs monolithic 64-bit per-line counters (8 per line):
  :func:`counter_organization_ablation` shows the split layout is what
  gives CWC its reach.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from repro.core.schemes import Scheme, scheme_config
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points


@dataclass
class AblationRow:
    label: str
    avg_latency_ns: float
    surviving_writes: int
    coalesced: int


def _spec(base, workload="array", scheme=Scheme.SUPERMEM, scale=None, **kw):
    return PointSpec(
        workload=workload,
        scheme=scheme,
        n_ops=scale.n_ops,
        request_size=kw.pop("request_size", 1024),
        footprint=scale.footprint,
        base_config=base,
        seed=1,
        **kw,
    )


def cwc_policy_ablation(
    scale: str | Scale = "default",
    workload: str = "array",
    jobs: int = 1,
    journal: str | None = None,
) -> List[AblationRow]:
    """Remove-older-and-append-at-tail vs merge-in-place."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    policies = ("remove-older", "merge-in-place")
    specs = [
        _spec(
            dataclasses.replace(experiment_base_config(scale), cwc_policy=policy),
            workload=workload,
            scale=scale,
        )
        for policy in policies
    ]
    results = run_points(specs, jobs=jobs, label="ablation:cwc-policy", journal=journal)
    return [
        AblationRow(policy, r.avg_txn_latency_ns, r.surviving_writes, r.coalesced_counter_writes)
        for policy, r in zip(policies, results)
    ]


def xbank_offset_sweep(
    scale: str | Scale = "default",
    workload: str = "array",
    jobs: int = 1,
    journal: str | None = None,
) -> List[AblationRow]:
    """Counter-bank offset 1..N-1 (the paper picks N/2 = 4)."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    offsets = range(1, 8)
    specs = [
        _spec(
            dataclasses.replace(experiment_base_config(scale), xbank_offset=offset),
            workload=workload,
            scheme=Scheme.WT_XBANK,
            scale=scale,
        )
        for offset in offsets
    ]
    results = run_points(specs, jobs=jobs, label="ablation:xbank-offset", journal=journal)
    return [
        AblationRow(f"offset={offset}", r.avg_txn_latency_ns, r.surviving_writes, 0)
        for offset, r in zip(offsets, results)
    ]


def drain_policy_ablation(
    scale: str | Scale = "default",
    workload: str = "array",
    jobs: int = 1,
    journal: str | None = None,
) -> List[AblationRow]:
    """Deferred-counter FR-FCFS (default) vs eager FR-FCFS vs FIFO."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    policies = ("defer-counters", "frfcfs", "fifo")
    specs = []
    for policy in policies:
        base = experiment_base_config(scale)
        base = dataclasses.replace(
            base, memory=dataclasses.replace(base.memory, drain_policy=policy)
        )
        specs.append(_spec(base, workload=workload, scale=scale))
    results = run_points(specs, jobs=jobs, label="ablation:drain-policy", journal=journal)
    return [
        AblationRow(policy, r.avg_txn_latency_ns, r.surviving_writes, r.coalesced_counter_writes)
        for policy, r in zip(policies, results)
    ]


def counter_organization_ablation(
    scale: str | Scale = "default",
    workload: str = "array",
    jobs: int = 1,
    journal: str | None = None,
) -> List[AblationRow]:
    """Split counters (paper) vs monolithic per-line 64-bit counters."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    organizations = ("split", "monolithic")
    specs = [
        _spec(
            experiment_base_config(scale),
            workload=workload,
            scale=scale,
            counter_organization=organization,
        )
        for organization in organizations
    ]
    results = run_points(specs, jobs=jobs, label="ablation:counter-org", journal=journal)
    return [
        AblationRow(
            organization, r.avg_txn_latency_ns, r.surviving_writes, r.coalesced_counter_writes
        )
        for organization, r in zip(organizations, results)
    ]


def render_all(
    scale: str | Scale = "default", jobs: int = 1, journal: str | None = None
) -> str:
    """Run and render every ablation."""
    headers = ["variant", "avg txn latency (ns)", "NVM writes", "coalesced"]
    sections = []
    for title, rows in (
        ("Ablation: CWC removal policy (SuperMem, array, 1KB)", cwc_policy_ablation(scale, jobs=jobs, journal=journal)),
        ("Ablation: XBank offset sweep (WT+XBank, array, 1KB)", xbank_offset_sweep(scale, jobs=jobs, journal=journal)),
        ("Ablation: write-drain policy (SuperMem, array, 1KB)", drain_policy_ablation(scale, jobs=jobs, journal=journal)),
        ("Ablation: counter organisation (SuperMem, array, 1KB)", counter_organization_ablation(scale, jobs=jobs, journal=journal)),
    ):
        sections.append(
            render_table(
                title,
                headers,
                [[r.label, r.avg_latency_ns, r.surviving_writes, r.coalesced] for r in rows],
            )
        )
    return "\n".join(sections)
