"""Wall-clock benchmark of the experiment sweep runner.

Times the standard Figure 13 sweep four ways — serial with the trace
cache disabled (the pre-runner baseline), serial with the cache, parallel
with ``--jobs N`` (journaling each completed point), and a resume pass
over the journal the parallel leg wrote (every point satisfied from disk,
nothing simulated) — and writes the measurements to a JSON file
(``BENCH_SWEEP.json`` by convention; the start of the repo's perf
trajectory). Each record follows the schema
``{name, scale, jobs, wall_s, points, runner}`` where ``runner`` is the
:meth:`~repro.experiments.runner.RunnerReport.to_dict` accounting of that
leg (retries, timeouts, resumed points, serial fallbacks, failures); the
``speedup`` block reports the headline ratios the runner is responsible
for.

Run via ``python -m repro bench-sweep`` or
``python benchmarks/bench_wallclock.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: The fig13 request sizes exercised by the benchmark sweep.
BENCH_REQUEST_SIZES = (256, 1024, 4096)


def _timed_sweep(
    scale: str,
    request_sizes: Sequence[int],
    jobs: int,
    cache_enabled: bool,
    journal: Optional[str] = None,
) -> Tuple[float, int, Optional[Dict[str, object]]]:
    """One fig13 sweep; returns (wall s, number of points, runner accounting)."""
    from repro.experiments import fig13, runner
    from repro.sim import trace_cache

    trace_cache.configure(cache_enabled)
    trace_cache.clear()
    try:
        started = time.perf_counter()
        points = fig13.run(
            scale, request_sizes=tuple(request_sizes), jobs=jobs, journal=journal
        )
        wall = time.perf_counter() - started
    finally:
        trace_cache.configure(True)
    report = runner.last_report()
    return wall, len(points), report.to_dict() if report is not None else None


def _timed_recovery_sweep(scale: str, jobs: int, runs: List[Dict[str, object]]) -> float:
    """Time the fig-recovery sweep and append its record to ``runs``.

    Not part of the speedup ratios (the recovery kernel is a different
    workload from the fig13 timing simulation); recorded so the perf
    trajectory covers the recovery-cost subsystem too.
    """
    from repro.experiments import fig_recovery, runner

    started = time.perf_counter()
    points = fig_recovery.run(scale, jobs=jobs)
    wall = time.perf_counter() - started
    report = runner.last_report()
    runs.append(
        {
            "name": "fig-recovery",
            "scale": scale,
            "jobs": jobs,
            "wall_s": round(wall, 3),
            "points": len(points),
            "runner": report.to_dict() if report is not None else None,
        }
    )
    return wall


def run_sweep_benchmark(
    scale: str = "smoke",
    jobs: int = 4,
    request_sizes: Sequence[int] = BENCH_REQUEST_SIZES,
    output: Optional[str] = "BENCH_SWEEP.json",
) -> Dict[str, object]:
    """Benchmark the fig13 sweep serial vs cached vs parallel vs resume.

    Returns the payload written to ``output`` (pass ``None`` to skip the
    file). Simulated results are identical across the runs — only
    wall-clock differs — so this is purely a harness benchmark. The
    ``resume`` leg replays the journal the parallel leg wrote: zero
    simulation, pure journal-read cost, and its ``runner.resumed`` count
    equals the full point count (the accounting CI asserts on).
    """
    runs: List[Dict[str, object]] = []

    def record(
        name: str, n_jobs: int, cache_enabled: bool, journal: Optional[str] = None
    ) -> float:
        wall, n_points, runner_accounting = _timed_sweep(
            scale, request_sizes, n_jobs, cache_enabled, journal=journal
        )
        runs.append(
            {
                "name": name,
                "scale": scale,
                "jobs": n_jobs,
                "wall_s": round(wall, 3),
                "points": n_points,
                "runner": runner_accounting,
            }
        )
        return wall

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        journal = os.path.join(tmp, "sweep-journal.jsonl")
        serial_nocache = record("serial-nocache", 1, False)
        serial = record("serial", 1, True)
        parallel = record("parallel", jobs, True, journal=journal)
        resume = record("resume", jobs, True, journal=journal)
        _timed_recovery_sweep(scale, jobs, runs)

    payload: Dict[str, object] = {
        "benchmark": "fig13-sweep",
        "runs": runs,
        "speedup": {
            # Trace memoization alone (serial, cold vs warm generation).
            "trace_cache": round(serial_nocache / serial, 3) if serial else 0.0,
            # Process fan-out on top of the cache.
            "parallel_vs_serial": round(serial / parallel, 3) if parallel else 0.0,
            # Journal resume vs re-simulating (the crash-recovery payoff).
            "resume_vs_parallel": round(parallel / resume, 3) if resume else 0.0,
            "total": round(serial_nocache / parallel, 3) if parallel else 0.0,
        },
        "host_cpus": os.cpu_count(),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


def format_summary(payload: Dict[str, object]) -> str:
    """Human-readable digest of a benchmark payload."""
    lines = []
    for run in payload["runs"]:  # type: ignore[index]
        line = (
            f"{run['name']:>16}: {run['wall_s']:8.3f}s "
            f"(jobs={run['jobs']}, {run['points']} points, scale={run['scale']})"
        )
        accounting = run.get("runner")
        if accounting:
            extras = []
            for key in ("resumed", "retries", "timeouts", "serial_fallbacks"):
                if accounting.get(key):
                    extras.append(f"{key}={accounting[key]}")
            if accounting.get("failures"):
                extras.append(f"failures={len(accounting['failures'])}")
            if extras:
                line += " [" + ", ".join(extras) + "]"
        lines.append(line)
    speedup = payload["speedup"]  # type: ignore[index]
    lines.append(
        f"{'speedup':>16}: trace-cache {speedup['trace_cache']}x, "
        f"parallel {speedup['parallel_vs_serial']}x, "
        f"resume {speedup['resume_vs_parallel']}x, "
        f"total {speedup['total']}x "
        f"({payload['host_cpus']} host CPUs)"
    )
    return "\n".join(lines)
