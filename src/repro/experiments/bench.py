"""Wall-clock benchmark of the experiment sweep runner.

Times the standard Figure 13 sweep along the repo's perf trajectory and
writes the measurements to a JSON file (``BENCH_SWEEP.json`` by
convention). Legs, in execution order:

``serial-nocache``
    The reference timing model (``hot_path=False`` — the straight-line
    pre-optimisation code paths kept for differential testing) with the
    trace cache disabled: the pre-runner baseline.
``serial``
    The reference model with the trace cache enabled.
``full-fidelity``
    The production hot path at ``fidelity="full"``: payload-tracking
    traces and the byte-level crypto/NVM functional machinery.
``timing-fidelity``
    The production hot path at ``fidelity="timing"`` (the default mode):
    identical simulated results, no functional byte work. This is the
    headline serial leg.
``hotpath``
    The scalar hot path (``batched_replay=False``) with a warm trace
    cache — isolates the per-op simulator loop itself. CI asserts this
    leg is at least 2x faster than the ``serial`` reference leg
    (``tools/check_bench_ratio.py``).
``hotpath-metrics``
    The warm scalar hot path once more with a real in-memory
    :class:`~repro.obs.metrics.MetricsRegistry` installed as the runner
    default — pure instrumentation overhead. CI caps the
    ``metrics_overhead`` ratio at 1.05 (metrics cost under 5%).
``batched-replay``
    The full production configuration (``batched_replay=True``): chunked
    array replay plus recorded hierarchy-outcome reuse across the
    schemes of each cell. Recorded outcome streams from earlier legs are
    dropped first, so this leg honestly pays its own one-recording-in-
    six-schemes cost. CI asserts ``batched_vs_hotpath`` >= 1.3
    (``tools/check_bench_ratio.py``).
``shared-record``
    A *cold* fleet member against an (empty) on-disk outcome store
    (:mod:`repro.sim.outcome_store`): process cache cleared, one
    SuperMem point per fig13 cell — the recording owner's share of a
    fleet sweep. Generates every trace, records every hierarchy walk,
    and writes both to the store. The single-scheme subset isolates the
    per-(trace, geometry) work the store deduplicates; in the full
    seven-scheme sweep that work is only 1/7 of the points and the
    ratio would drown in scheme-replay time both members pay alike.
``shared-outcomes``
    The same single-scheme subset, process cache cleared again, store
    warm: a *second* fleet member. Zero trace generations and zero
    outcome recordings — every trace and recording loads from the
    store's binary entries, bit-identically. CI asserts
    ``shared_vs_record`` >= 1.15 (``tools/check_bench_ratio.py``).
``parallel`` / ``resume``
    Process fan-out over the production configuration, then a pure
    journal-resume pass (nothing simulated).

Every full-sweep leg simulates the exact same results — the
golden-digest guarantee — so those legs differ only in wall clock; the
two ``shared-*`` legs run the same single-scheme subset of that grid
(cold store vs warm store, results bit-identical to each other). Each record follows
the schema ``{name, scale, jobs, wall_s, points, runner}`` where
``runner`` is the :meth:`~repro.experiments.runner.RunnerReport.to_dict`
accounting of that leg; the ``speedup`` block reports the headline
ratios.

Run via ``python -m repro bench-sweep`` or
``python benchmarks/bench_wallclock.py``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: The fig13 request sizes exercised by the benchmark sweep.
BENCH_REQUEST_SIZES = (256, 1024, 4096)


def _timed_sweep(
    scale: str,
    request_sizes: Sequence[int],
    jobs: int,
    cache_enabled: bool,
    journal: Optional[str] = None,
    fidelity: str = "timing",
    base_config=None,
    clear_cache: bool = True,
    metrics: bool = False,
    drop_outcomes: bool = False,
) -> Tuple[float, int, Optional[Dict[str, object]]]:
    """One fig13 sweep; returns (wall s, number of points, runner accounting).

    ``metrics=True`` installs a real in-memory
    :class:`~repro.obs.metrics.MetricsRegistry` (no JSONL stream) as the
    runner default for the duration of the sweep — the ``hotpath-metrics``
    leg, measuring pure instrumentation overhead against ``hotpath``.
    ``drop_outcomes=True`` clears recorded hierarchy outcome streams
    (keeping traces/arrays warm) so the ``batched-replay`` leg records
    its own.
    """
    from repro.experiments import fig13, runner
    from repro.obs.metrics import NULL_METRICS, MetricsRegistry
    from repro.sim import trace_cache

    trace_cache.configure(cache_enabled)
    if clear_cache:
        trace_cache.clear()
    if drop_outcomes:
        trace_cache.clear_outcomes()
    if metrics:
        runner.set_default_metrics(MetricsRegistry())
    try:
        started = time.perf_counter()
        points = fig13.run(
            scale,
            request_sizes=tuple(request_sizes),
            jobs=jobs,
            journal=journal,
            fidelity=fidelity,
            base_config=base_config,
        )
        wall = time.perf_counter() - started
    finally:
        trace_cache.configure(True)
        if metrics:
            runner.set_default_metrics(NULL_METRICS)
    report = runner.last_report()
    return wall, len(points), report.to_dict() if report is not None else None


def _reference_config(scale: str):
    """The ``hot_path=False`` base config for the reference-model legs."""
    from repro.experiments.common import experiment_base_config, get_scale

    return dataclasses.replace(
        experiment_base_config(get_scale(scale)), hot_path=False
    )


def _scalar_config(scale: str):
    """The scalar hot path (``batched_replay=False``) for the hotpath legs."""
    from repro.experiments.common import experiment_base_config, get_scale

    return dataclasses.replace(
        experiment_base_config(get_scale(scale)), batched_replay=False
    )


def _store_config(scale: str, store_dir: str):
    """The production config with the on-disk outcome store configured
    (the ``shared-record``/``shared-outcomes`` legs)."""
    from repro.experiments.common import experiment_base_config, get_scale

    return dataclasses.replace(
        experiment_base_config(get_scale(scale)), outcome_store=store_dir
    )


def _timed_store_leg(
    name: str,
    scale: str,
    request_sizes: Sequence[int],
    store_cfg,
) -> Tuple[float, int, Optional[Dict[str, object]]]:
    """One outcome-store leg: the SuperMem point of every fig13 cell.

    Clears the process trace cache first, so the leg pays (cold store)
    or loads (warm store) every trace and recording — exactly the work
    a fresh fleet member does for the cells it records on behalf of the
    fleet. ``store_cfg`` carries ``outcome_store``; the store's state
    (empty vs populated) is what distinguishes the two legs.
    """
    from repro.core.schemes import Scheme
    from repro.experiments import fig13, runner
    from repro.sim import trace_cache

    trace_cache.configure(True)
    trace_cache.clear()
    _, point_specs = fig13.specs(
        scale, request_sizes=tuple(request_sizes), base_config=store_cfg
    )
    subset = [spec for spec in point_specs if spec.scheme is Scheme.SUPERMEM]
    started = time.perf_counter()
    results = runner.run_points(subset, jobs=1, label=name)
    wall = time.perf_counter() - started
    report = runner.last_report()
    return wall, len(results), report.to_dict() if report is not None else None


def _timed_recovery_sweep(scale: str, jobs: int, runs: List[Dict[str, object]]) -> float:
    """Time the fig-recovery sweep and append its record to ``runs``.

    Not part of the speedup ratios (the recovery kernel is a different
    workload from the fig13 timing simulation); recorded so the perf
    trajectory covers the recovery-cost subsystem too.
    """
    from repro.experiments import fig_recovery, runner

    started = time.perf_counter()
    points = fig_recovery.run(scale, jobs=jobs)
    wall = time.perf_counter() - started
    report = runner.last_report()
    runs.append(
        {
            "name": "fig-recovery",
            "scale": scale,
            "jobs": jobs,
            "wall_s": round(wall, 3),
            "points": len(points),
            "runner": report.to_dict() if report is not None else None,
        }
    )
    return wall


def _timed_channels_sweep(scale: str, jobs: int, runs: List[Dict[str, object]]) -> float:
    """Time the fig-channels sweep and append its record to ``runs``.

    Like the fig-recovery leg, not part of the speedup ratios — recorded
    so the perf trajectory covers the channel-sensitivity sweep (and with
    it the SuperMem+BMT integrity-tree write path) too.
    """
    from repro.experiments import fig_channels, runner

    started = time.perf_counter()
    points = fig_channels.run(scale, jobs=jobs)
    wall = time.perf_counter() - started
    report = runner.last_report()
    runs.append(
        {
            "name": "fig-channels",
            "scale": scale,
            "jobs": jobs,
            "wall_s": round(wall, 3),
            "points": len(points),
            "runner": report.to_dict() if report is not None else None,
        }
    )
    return wall


def run_sweep_benchmark(
    scale: str = "smoke",
    jobs: int = 4,
    request_sizes: Sequence[int] = BENCH_REQUEST_SIZES,
    output: Optional[str] = "BENCH_SWEEP.json",
    outcome_store: Optional[str] = None,
) -> Dict[str, object]:
    """Benchmark the fig13 sweep across the legs described in the module
    docstring: reference model (cold/cached), production full/timing
    fidelity, warm hot path, parallel, and journal resume.

    Returns the payload written to ``output`` (pass ``None`` to skip the
    file). Simulated results are identical across the runs — only
    wall-clock differs — so this is purely a harness benchmark. The
    ``resume`` leg replays the journal the parallel leg wrote: zero
    simulation, pure journal-read cost, and its ``runner.resumed`` count
    equals the full point count (the accounting CI asserts on).
    """
    runs: List[Dict[str, object]] = []

    def record(
        name: str,
        n_jobs: int,
        cache_enabled: bool,
        journal: Optional[str] = None,
        fidelity: str = "timing",
        base_config=None,
        clear_cache: bool = True,
        metrics: bool = False,
        drop_outcomes: bool = False,
    ) -> float:
        wall, n_points, runner_accounting = _timed_sweep(
            scale,
            request_sizes,
            n_jobs,
            cache_enabled,
            journal=journal,
            fidelity=fidelity,
            base_config=base_config,
            clear_cache=clear_cache,
            metrics=metrics,
            drop_outcomes=drop_outcomes,
        )
        runs.append(
            {
                "name": name,
                "scale": scale,
                "jobs": n_jobs,
                "wall_s": round(wall, 3),
                "points": n_points,
                "runner": runner_accounting,
            }
        )
        return wall

    reference = _reference_config(scale)
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        journal = os.path.join(tmp, "sweep-journal.jsonl")
        serial_nocache = record(
            "serial-nocache", 1, False, base_config=reference
        )
        serial = record("serial", 1, True, base_config=reference)
        full_fidelity = record("full-fidelity", 1, True, fidelity="full")
        timing_fidelity = record("timing-fidelity", 1, True)
        # The scalar hot path (batched replay off) with the trace cache
        # warm from the previous leg: the per-op simulator loop alone.
        scalar = _scalar_config(scale)
        hotpath = record(
            "hotpath", 1, True, base_config=scalar, clear_cache=False
        )
        # hotpath again with a live in-memory metrics registry: the
        # instrumentation overhead CI caps at 5% (check_bench_ratio.py).
        hotpath_metrics = record(
            "hotpath-metrics",
            1,
            True,
            base_config=scalar,
            clear_cache=False,
            metrics=True,
        )
        # The production batched replay, paying its own outcome-recording
        # cost (recordings from earlier legs dropped, traces kept warm).
        batched = record(
            "batched-replay", 1, True, clear_cache=False, drop_outcomes=True
        )
        # The cross-process outcome store, on the single-scheme subset
        # (one SuperMem point per cell — the recording owner's share of
        # a fleet sweep): a cold member generates, records, and writes
        # the store...
        store_dir = outcome_store or os.path.join(tmp, "outcome-store")
        store_cfg = _store_config(scale, store_dir)
        shared_record, store_points, store_acct = _timed_store_leg(
            "shared-record", scale, request_sizes, store_cfg
        )
        runs.append(
            {
                "name": "shared-record",
                "scale": scale,
                "jobs": 1,
                "wall_s": round(shared_record, 3),
                "points": store_points,
                "runner": store_acct,
            }
        )
        # ...then a warm second member: process cache cleared again, so
        # every trace and recording must come from the store — zero
        # generations, zero walks, bit-identical results.
        shared_outcomes, store_points, store_acct = _timed_store_leg(
            "shared-outcomes", scale, request_sizes, store_cfg
        )
        runs.append(
            {
                "name": "shared-outcomes",
                "scale": scale,
                "jobs": 1,
                "wall_s": round(shared_outcomes, 3),
                "points": store_points,
                "runner": store_acct,
            }
        )
        parallel = record("parallel", jobs, True, journal=journal)
        resume = record("resume", jobs, True, journal=journal)
        _timed_recovery_sweep(scale, jobs, runs)
        _timed_channels_sweep(scale, jobs, runs)

    payload: Dict[str, object] = {
        "benchmark": "fig13-sweep",
        "runs": runs,
        "speedup": {
            # Trace memoization alone (reference model, cold vs warm
            # generation).
            "trace_cache": round(serial_nocache / serial, 3) if serial else 0.0,
            # The flattened hot path vs the reference model, trace cache
            # warm/enabled on both sides. CI enforces >= 2.0
            # (tools/check_bench_ratio.py).
            "hotpath_vs_serial": round(serial / hotpath, 3) if hotpath else 0.0,
            # Instrumented sweep vs the bare hot path (>1 = overhead).
            # CI enforces <= 1.05 (tools/check_bench_ratio.py CEILINGS).
            "metrics_overhead": (
                round(hotpath_metrics / hotpath, 3) if hotpath else 0.0
            ),
            # Batched array replay + hierarchy outcome reuse vs the
            # scalar hot path, trace cache warm on both sides. CI
            # enforces >= 1.3 (tools/check_bench_ratio.py).
            "batched_vs_hotpath": round(hotpath / batched, 3) if batched else 0.0,
            # A warm fleet member (store hits only) vs a cold one
            # (generate + record + store writes). CI enforces >= 1.15
            # (tools/check_bench_ratio.py).
            "shared_vs_record": (
                round(shared_record / shared_outcomes, 3) if shared_outcomes else 0.0
            ),
            # Timing-only fidelity vs the full functional byte path on
            # the same production simulator.
            "timing_vs_full": (
                round(full_fidelity / timing_fidelity, 3) if timing_fidelity else 0.0
            ),
            # Process fan-out on top of the production serial leg.
            "parallel_vs_serial": (
                round(timing_fidelity / parallel, 3) if parallel else 0.0
            ),
            # Journal resume vs re-simulating (the crash-recovery payoff).
            "resume_vs_parallel": round(parallel / resume, 3) if resume else 0.0,
            # The whole trajectory: pre-runner reference baseline vs the
            # parallel production harness.
            "total": round(serial_nocache / parallel, 3) if parallel else 0.0,
        },
        "host_cpus": os.cpu_count(),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


def format_summary(payload: Dict[str, object]) -> str:
    """Human-readable digest of a benchmark payload."""
    lines = []
    for run in payload["runs"]:  # type: ignore[index]
        line = (
            f"{run['name']:>16}: {run['wall_s']:8.3f}s "
            f"(jobs={run['jobs']}, {run['points']} points, scale={run['scale']})"
        )
        accounting = run.get("runner")
        if accounting:
            extras = []
            for key in ("resumed", "retries", "timeouts", "serial_fallbacks"):
                if accounting.get(key):
                    extras.append(f"{key}={accounting[key]}")
            if accounting.get("failures"):
                extras.append(f"failures={len(accounting['failures'])}")
            if extras:
                line += " [" + ", ".join(extras) + "]"
        lines.append(line)
    speedup = payload["speedup"]  # type: ignore[index]
    lines.append(
        f"{'speedup':>16}: trace-cache {speedup['trace_cache']}x, "
        f"hotpath {speedup['hotpath_vs_serial']}x, "
        f"batched {speedup.get('batched_vs_hotpath', 0.0)}x, "
        f"shared-store {speedup.get('shared_vs_record', 0.0)}x, "
        f"metrics-overhead {speedup.get('metrics_overhead', 0.0)}x, "
        f"timing-vs-full {speedup['timing_vs_full']}x, "
        f"parallel {speedup['parallel_vs_serial']}x, "
        f"resume {speedup['resume_vs_parallel']}x, "
        f"total {speedup['total']}x "
        f"({payload['host_cpus']} host CPUs)"
    )
    return "\n".join(lines)
