"""Shared experiment infrastructure: scales and the base configuration.

The paper evaluated an 8 GB PCM system in gem5/NVMain with workloads whose
footprints reach a full memory bank. A pure-Python reproduction scales the
*geometry* down while preserving the ratios that drive every result:

* 8 banks, 32-entry write queue, PCM latencies — identical to the paper;
* capacity 64 MB (vs 8 GB) and per-workload footprint 4 MB — footprint
  still spans many pages in every bank and exceeds what one transaction
  touches by orders of magnitude;
* counter cache 256 KB as in Table 2 (its 16 MB reach vs 4 MB footprint is
  *larger* relatively than the paper's 16 MB vs ~1 GB; Figure 17 sweeps
  the size down to 1 KB, crossing the same reach-vs-footprint boundary the
  paper's sweep crosses).

Three scales trade run time for statistical smoothness; all reproduce the
same shapes.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Optional

from repro.common.config import MemoryConfig, SimConfig


@dataclass(frozen=True)
class Scale:
    """Run-size preset for the experiment suite."""

    name: str
    #: Measured transactions per (workload, scheme, size) point.
    n_ops: int
    #: Transactions per point in multi-programmed runs (per program).
    n_ops_multicore: int
    #: Workload footprint in bytes.
    footprint: int
    #: NVM capacity in bytes.
    capacity: int
    #: Counter-cache size scaled with the footprint: the paper pairs a
    #: 256 KB cache (16 MB reach) with ~GB footprints, i.e. the cache
    #: covers a small fraction of the data. These values keep
    #: reach/footprint in the same regime so write-back eviction traffic
    #: and cold counter fetches appear as they do in the paper.
    counter_cache_size: int
    #: Memory capacities swept by the ``fig-recovery`` experiment. The
    #: Section 6 argument is about the *shape* over capacity (SuperMem
    #: flat, SCA linear), so a 4x range suffices at every scale.
    recovery_capacities: tuple = (8 << 20, 16 << 20, 32 << 20)
    #: Log sizes (in 64 B lines) swept by ``fig-recovery``.
    recovery_log_lines: tuple = (128, 512)
    #: Transactions executed before the crash in each recovery point.
    recovery_txns: int = 12


SCALES = {
    "smoke": Scale(
        "smoke",
        n_ops=30,
        n_ops_multicore=15,
        footprint=1 << 20,
        capacity=32 << 20,
        counter_cache_size=1 << 10,
        recovery_capacities=(8 << 20, 16 << 20, 32 << 20),
        recovery_log_lines=(128, 512),
        recovery_txns=12,
    ),
    "default": Scale(
        "default",
        n_ops=120,
        n_ops_multicore=50,
        footprint=4 << 20,
        capacity=64 << 20,
        counter_cache_size=4 << 10,
        recovery_capacities=(16 << 20, 32 << 20, 64 << 20),
        recovery_log_lines=(128, 512, 2048),
        recovery_txns=24,
    ),
    "full": Scale(
        "full",
        n_ops=400,
        n_ops_multicore=150,
        footprint=8 << 20,
        capacity=128 << 20,
        counter_cache_size=8 << 10,
        recovery_capacities=(32 << 20, 64 << 20, 128 << 20),
        recovery_log_lines=(128, 512, 2048),
        recovery_txns=48,
    ),
}


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; expected one of {sorted(SCALES)}") from None


#: Process default for ``SimConfig.outcome_store``, set by the CLI's
#: ``--outcome-store`` flag before any experiment builds its base config.
_default_outcome_store: Optional[str] = None


def set_default_outcome_store(path: Optional[str]) -> None:
    """Set (or clear, with ``None``) the default on-disk outcome store.

    Every :func:`experiment_base_config` built afterwards carries the
    path in ``SimConfig.outcome_store``, so it reaches each
    :class:`~repro.experiments.runner.PointSpec` — and through pickling,
    every parallel worker: a ``--jobs 4`` sweep shares one store
    fleet-wide. The path is absolutised so worker processes agree on it
    regardless of working directory.
    """
    global _default_outcome_store
    _default_outcome_store = os.path.abspath(path) if path else None


def default_outcome_store() -> Optional[str]:
    """The process-default outcome-store path, if one is set."""
    return _default_outcome_store


def experiment_base_config(
    scale: Scale,
    write_queue_entries: int = 32,
    counter_cache_size: int | None = None,
) -> SimConfig:
    """The Table 2 system at the given scale.

    The counter cache defaults to the scale's footprint-proportional size
    (see :class:`Scale`); pass an explicit ``counter_cache_size`` to
    override (the Figure 17 sweep does). When a default outcome store is
    set (:func:`set_default_outcome_store`), the returned config carries
    its path.
    """
    if counter_cache_size is None:
        counter_cache_size = scale.counter_cache_size
    base = SimConfig(
        memory=MemoryConfig(
            capacity=scale.capacity,
            write_queue_entries=write_queue_entries,
        ),
        outcome_store=_default_outcome_store,
    )
    if counter_cache_size != base.counter_cache.size:
        assoc = min(8, max(1, counter_cache_size // 64))
        base = dataclasses.replace(
            base,
            counter_cache=dataclasses.replace(
                base.counter_cache, size=counter_cache_size, assoc=assoc
            ),
        )
    return base
