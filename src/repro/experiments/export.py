"""Machine-readable export of experiment results.

The markdown renderers serve humans; this module serialises the same
dataclass points to JSON so plots and regression dashboards can consume
regenerated results (`python -m repro run fig13 --json out.json`).
Any experiment's point list works — dataclasses are introspected, enums
flattened to their labels.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, List, Sequence


def _jsonify(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return getattr(value, "label", value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonify(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, bytes):
        return value.hex()
    return value


def points_to_records(points: Sequence[Any]) -> List[dict]:
    """Convert a list of experiment dataclass points to plain dicts."""
    return [_jsonify(point) for point in points]


def export_json(points: Sequence[Any], path: str | Path, experiment: str = "") -> int:
    """Write points as ``{"experiment": ..., "points": [...]}`` JSON.

    Returns the number of points written.
    """
    records = points_to_records(points)
    payload = {"experiment": experiment, "points": records}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return len(records)


def load_json(path: str | Path) -> dict:
    """Read a file written by :func:`export_json`."""
    return json.loads(Path(path).read_text())
