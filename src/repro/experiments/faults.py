"""Deterministic fault injection for the sweep runner.

The crash experiments of the paper (Table 1, Figure 6) inject power
failures into the *simulated* machine; this module injects failures into
the *experiment harness itself*, so the runner's recovery machinery —
per-point timeouts, bounded retry, serial fallback, journal resume — can
be exercised deterministically from tests and from the command line.

A :class:`FaultPlan` maps point indices to a :class:`PointFault`. Three
modes mirror how real sweep workers die:

``crash``
    The worker process hard-exits (``os._exit``) without reporting — the
    moral equivalent of a SIGKILL or a segfault. The parent observes a
    closed pipe, records a :class:`~repro.experiments.runner.PointFailure`
    attempt, and retries.
``hang``
    The worker sleeps forever. Only a per-point wall-clock timeout
    (:class:`~repro.experiments.runner.RunnerPolicy.point_timeout_s`)
    rescues the sweep; the parent kills and replaces the worker. When a
    hang fault fires in-process (serial execution or the serial fallback,
    where sleeping would block the whole sweep), it degrades to ``crash``
    — a raised :class:`InjectedFault`.
``corrupt``
    The worker completes but returns garbage instead of a
    :class:`~repro.sim.metrics.SimResult`; the parent's result validation
    rejects it. This stands in for unpicklable or wrongly-typed results.

Each fault fires for the first ``times`` attempts of its point (1-based)
and then clears, so ``times=1`` (the default) models a transient fault
that a single retry survives, while a large ``times`` models a
persistent fault that exhausts the retry budget and surfaces as a
recorded failure.

The environment hook ``REPRO_FAULT=point:<k>:<mode>[:<times>]`` arms a
plan without touching code — e.g. ``REPRO_FAULT=point:3:crash`` kills the
worker executing point 3 on its first attempt. Multiple clauses are
comma-separated: ``REPRO_FAULT=point:0:hang,point:4:corrupt:2``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.common.errors import ConfigError

#: Valid fault modes.
FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_CORRUPT = "corrupt"
FAULT_MODES = (FAULT_CRASH, FAULT_HANG, FAULT_CORRUPT)

#: Environment variable consumed by :meth:`FaultPlan.from_env`.
FAULT_ENV = "REPRO_FAULT"

#: Exit status of a worker killed by an injected ``crash`` fault
#: (distinguishable from a clean exit in post-mortem debugging).
CRASH_EXIT_CODE = 73


class InjectedFault(RuntimeError):
    """Raised when an armed fault fires in-process."""


@dataclass(frozen=True)
class PointFault:
    """One armed fault: ``mode`` fires for the first ``times`` attempts."""

    mode: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ConfigError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        if self.times < 1:
            raise ConfigError(f"fault times must be >= 1, got {self.times}")


class FaultPlan:
    """Maps sweep point indices to the fault armed at that point."""

    def __init__(self, faults: Mapping[int, PointFault]):
        self._faults: Dict[int, PointFault] = dict(faults)

    def __bool__(self) -> bool:
        return bool(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def fault_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault mode firing at ``(index, attempt)``, else ``None``.

        ``attempt`` is 1-based; a fault fires while ``attempt <= times``.
        """
        fault = self._faults.get(index)
        if fault is not None and attempt <= fault.times:
            return fault.mode
        return None

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """Parse :data:`FAULT_ENV` into a plan; ``None`` when unset/empty."""
        value = (environ if environ is not None else os.environ).get(FAULT_ENV, "")
        value = value.strip()
        if not value:
            return None
        return cls.parse(value)

    @classmethod
    def parse(cls, value: str) -> "FaultPlan":
        """Parse ``point:<k>:<mode>[:<times>]`` clauses (comma-separated)."""
        faults: Dict[int, PointFault] = {}
        for clause in value.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) not in (3, 4) or parts[0] != "point":
                raise ConfigError(
                    f"bad {FAULT_ENV} clause {clause!r}; expected "
                    f"point:<k>:<mode>[:<times>]"
                )
            try:
                index = int(parts[1])
            except ValueError:
                raise ConfigError(
                    f"bad point index in {FAULT_ENV} clause {clause!r}"
                ) from None
            times = 1
            if len(parts) == 4:
                try:
                    times = int(parts[3])
                except ValueError:
                    raise ConfigError(
                        f"bad times in {FAULT_ENV} clause {clause!r}"
                    ) from None
            faults[index] = PointFault(mode=parts[2], times=times)
        if not faults:
            raise ConfigError(f"{FAULT_ENV} set but no clauses parsed: {value!r}")
        return cls(faults)
