"""Figure 13: single-core transaction execution latency.

Five workloads x six schemes x three transaction request sizes (256 B,
1 KB, 4 KB). The paper reports average transaction execution latency; we
normalise to Unsec per (workload, size) so the scheme effect is explicit.

Expected shape (paper Section 5.1.1): WT at 1.7-2x Unsec; WT+CWC cutting
17-48 % of WT's latency, growing with request size; WT+XBank cutting up to
45 %; SuperMem approximately equal to the ideal WB, slightly above Unsec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.core.schemes import EVALUATED_SCHEMES, Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.sim.validation import validate_result
from repro.workloads.base import WORKLOAD_NAMES

REQUEST_SIZES = (256, 1024, 4096)


@dataclass
class Fig13Point:
    workload: str
    request_size: int
    scheme: Scheme
    avg_latency_ns: float
    normalized: float


def specs(
    scale: str | Scale = "default",
    request_sizes=REQUEST_SIZES,
    fidelity: str = "timing",
    base_config=None,
) -> tuple:
    """The Figure 13 grid as ``(cells, point_specs)``.

    ``cells`` is the ``(workload, request_size)`` grid in sweep order;
    ``point_specs`` holds one :class:`PointSpec` per cell x scheme
    (schemes innermost, :data:`EVALUATED_SCHEMES` order). Shared by
    :func:`run` and the analytical surrogate
    (:mod:`repro.sim.surrogate`), which trains and validates on exactly
    this grid — one definition keeps the two in lockstep.
    """
    scale = get_scale(scale) if isinstance(scale, str) else scale
    base = base_config if base_config is not None else experiment_base_config(scale)
    cells = [(workload, size) for workload in WORKLOAD_NAMES for size in request_sizes]
    point_specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops,
            request_size=size,
            footprint=scale.footprint,
            base_config=base,
            seed=1,
            fidelity=fidelity,
        )
        for (workload, size) in cells
        for scheme in EVALUATED_SCHEMES
    ]
    return cells, point_specs


def run(
    scale: str | Scale = "default",
    request_sizes=REQUEST_SIZES,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
    base_config=None,
) -> List[Fig13Point]:
    """Run the full Figure 13 sweep; returns one point per cell.

    ``fidelity`` selects the simulation fidelity for every point
    (``"timing"`` — the default, functional byte work skipped — or
    ``"full"``); both produce bit-identical results. ``base_config``
    overrides the scale's default :class:`SimConfig` (used by the
    benchmark harness to time the ``hot_path=False`` reference model).
    """
    if EVALUATED_SCHEMES[0] is not Scheme.UNSEC:
        # The first scheme of each cell is the normalization baseline; a
        # reordered EVALUATED_SCHEMES would silently normalise to the
        # wrong system instead of Unsec.
        raise ConfigError(
            f"EVALUATED_SCHEMES must start with Unsec (the normalization "
            f"baseline), got {EVALUATED_SCHEMES[0]!r}"
        )
    cells, point_specs = specs(
        scale,
        request_sizes=request_sizes,
        fidelity=fidelity,
        base_config=base_config,
    )
    results = iter(run_points(point_specs, jobs=jobs, label="fig13", journal=journal))
    points: List[Fig13Point] = []
    for workload, size in cells:
        baseline = None
        for scheme in EVALUATED_SCHEMES:
            result = next(results)
            validate_result(result, encrypted=(scheme is not Scheme.UNSEC))
            latency = result.avg_txn_latency_ns
            if baseline is None:
                baseline = latency
            points.append(
                Fig13Point(
                    workload=workload,
                    request_size=size,
                    scheme=scheme,
                    avg_latency_ns=latency,
                    normalized=latency / baseline if baseline else 0.0,
                )
            )
    return points


def render(points: List[Fig13Point]) -> str:
    """One markdown table per request size (13a/13b/13c)."""
    sections = []
    sizes = sorted({p.request_size for p in points})
    for size in sizes:
        cells: Dict[str, Dict[Scheme, float]] = {}
        for p in points:
            if p.request_size == size:
                cells.setdefault(p.workload, {})[p.scheme] = p.normalized
        rows = [
            [wl] + [cells[wl][s] for s in EVALUATED_SCHEMES]
            for wl in WORKLOAD_NAMES
            if wl in cells
        ]
        sections.append(
            render_table(
                f"Figure 13 ({size} B requests): txn latency normalised to Unsec",
                ["workload"] + [s.label for s in EVALUATED_SCHEMES],
                rows,
                note="Paper shape: WT~1.7-2x; SuperMem ~ WB; CWC benefit grows with size.",
            )
        )
    return "\n".join(sections)
