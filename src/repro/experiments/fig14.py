"""Figure 14: multi-programmed transaction latency (1/4/8 programs).

Each of N cores runs the same workload in its own physical region; L3, the
memory controller, the write queue, and the counter cache are shared. The
paper's observation: with 4-8 programs every bank is busy, so CWC (which
removes writes) gains more than XBank (which only spreads them); SuperMem
still tracks the ideal WB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes import EVALUATED_SCHEMES, Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.workloads.base import WORKLOAD_NAMES

PROGRAM_COUNTS = (1, 4, 8)


@dataclass
class Fig14Point:
    workload: str
    n_programs: int
    scheme: Scheme
    avg_latency_ns: float
    normalized: float


def run(
    scale: str | Scale = "default",
    program_counts=PROGRAM_COUNTS,
    workloads=WORKLOAD_NAMES,
    request_size: int = 1024,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
) -> List[Fig14Point]:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    base = experiment_base_config(scale)
    cells = [
        (workload, n_programs)
        for workload in workloads
        for n_programs in program_counts
    ]
    specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops_multicore,
            request_size=request_size,
            footprint=None,
            base_config=base,
            seed=1,
            fidelity=fidelity,
            n_programs=n_programs,
        )
        for (workload, n_programs) in cells
        for scheme in EVALUATED_SCHEMES
    ]
    results = iter(run_points(specs, jobs=jobs, label="fig14", journal=journal))
    points: List[Fig14Point] = []
    for workload, n_programs in cells:
        baseline = None
        for scheme in EVALUATED_SCHEMES:
            result = next(results)
            latency = result.avg_txn_latency_ns
            if baseline is None:
                baseline = latency
            points.append(
                Fig14Point(
                    workload=workload,
                    n_programs=n_programs,
                    scheme=scheme,
                    avg_latency_ns=latency,
                    normalized=latency / baseline if baseline else 0.0,
                )
            )
    return points


def render(points: List[Fig14Point]) -> str:
    sections = []
    for count in sorted({p.n_programs for p in points}):
        cells: Dict[str, Dict[Scheme, float]] = {}
        for p in points:
            if p.n_programs == count:
                cells.setdefault(p.workload, {})[p.scheme] = p.normalized
        rows = [
            [wl] + [cells[wl][s] for s in EVALUATED_SCHEMES]
            for wl in cells
        ]
        sections.append(
            render_table(
                f"Figure 14 ({count} program(s)): txn latency normalised to Unsec",
                ["workload"] + [s.label for s in EVALUATED_SCHEMES],
                rows,
                note="Paper shape: at 8 programs CWC >= XBank benefit; SuperMem ~ WB.",
            )
        )
    return "\n".join(sections)
