"""Figure 15: NVM write requests normalised to Unsec.

The paper's bands: WT = 2x at every size; WB = 1.03-1.16x at 256 B,
shrinking as the request size grows; SuperMem cuts 20-27 % (256 B),
35-42 % (1 KB), 45-48 % (4 KB) of WT's writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes import EVALUATED_SCHEMES, Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.sim.validation import validate_result
from repro.workloads.base import WORKLOAD_NAMES

REQUEST_SIZES = (256, 1024, 4096)


@dataclass
class Fig15Point:
    workload: str
    request_size: int
    scheme: Scheme
    writes: int
    normalized: float


def run(
    scale: str | Scale = "default",
    request_sizes=REQUEST_SIZES,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
) -> List[Fig15Point]:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    base = experiment_base_config(scale)
    cells = [(workload, size) for workload in WORKLOAD_NAMES for size in request_sizes]
    specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops,
            request_size=size,
            footprint=scale.footprint,
            base_config=base,
            seed=1,
            fidelity=fidelity,
        )
        for (workload, size) in cells
        for scheme in EVALUATED_SCHEMES
    ]
    results = iter(run_points(specs, jobs=jobs, label="fig15", journal=journal))
    points: List[Fig15Point] = []
    for workload, size in cells:
        baseline = None
        for scheme in EVALUATED_SCHEMES:
            result = next(results)
            validate_result(result, encrypted=(scheme is not Scheme.UNSEC))
            writes = result.surviving_writes
            if baseline is None:
                baseline = writes
            points.append(
                Fig15Point(
                    workload=workload,
                    request_size=size,
                    scheme=scheme,
                    writes=writes,
                    normalized=writes / baseline if baseline else 0.0,
                )
            )
    return points


def supermem_reduction_vs_wt(points: List[Fig15Point]) -> Dict[tuple, float]:
    """``(workload, size) -> fraction of WT writes removed by SuperMem``."""
    by_cell: Dict[tuple, Dict[Scheme, int]] = {}
    for p in points:
        by_cell.setdefault((p.workload, p.request_size), {})[p.scheme] = p.writes
    out = {}
    for cell, writes in by_cell.items():
        wt = writes.get(Scheme.WT_BASE)
        sm = writes.get(Scheme.SUPERMEM)
        if wt:
            out[cell] = (wt - sm) / wt
    return out


def render(points: List[Fig15Point]) -> str:
    sections = []
    for size in sorted({p.request_size for p in points}):
        cells: Dict[str, Dict[Scheme, float]] = {}
        for p in points:
            if p.request_size == size:
                cells.setdefault(p.workload, {})[p.scheme] = p.normalized
        rows = [
            [wl] + [cells[wl][s] for s in EVALUATED_SCHEMES]
            for wl in WORKLOAD_NAMES
            if wl in cells
        ]
        sections.append(
            render_table(
                f"Figure 15 ({size} B requests): NVM writes normalised to Unsec",
                ["workload"] + [s.label for s in EVALUATED_SCHEMES],
                rows,
                note="Paper shape: WT=2x everywhere; SuperMem reduction grows with size.",
            )
        )
    return "\n".join(sections)
