"""Figure 16: sensitivity to the write-queue length (8 to 128 entries).

(a) the share of counter writes SuperMem removes relative to WT — a
longer queue gives CWC more residency to merge against, plateauing around
32 entries; (b) the average transaction latency, which improves a few
percent from 8 to 32 entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes import Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.workloads.base import WORKLOAD_NAMES

QUEUE_LENGTHS = (8, 16, 32, 64, 128)


@dataclass
class Fig16Point:
    workload: str
    wq_entries: int
    reduced_counter_write_fraction: float
    supermem_latency_ns: float


def run(
    scale: str | Scale = "default",
    queue_lengths=QUEUE_LENGTHS,
    request_size: int = 1024,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
) -> List[Fig16Point]:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    cells = [
        (workload, entries)
        for workload in WORKLOAD_NAMES
        for entries in queue_lengths
    ]
    specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops,
            request_size=request_size,
            footprint=scale.footprint,
            base_config=experiment_base_config(scale, write_queue_entries=entries),
            seed=1,
            fidelity=fidelity,
        )
        for (workload, entries) in cells
        for scheme in (Scheme.WT_BASE, Scheme.SUPERMEM)
    ]
    results = iter(run_points(specs, jobs=jobs, label="fig16", journal=journal))
    points: List[Fig16Point] = []
    for workload, entries in cells:
        wt = next(results)
        sm = next(results)
        reduced = 0.0
        if wt.counter_writes:
            reduced = sm.coalesced_counter_writes / wt.counter_writes
        points.append(
            Fig16Point(
                workload=workload,
                wq_entries=entries,
                reduced_counter_write_fraction=reduced,
                supermem_latency_ns=sm.avg_txn_latency_ns,
            )
        )
    return points


def render(points: List[Fig16Point]) -> str:
    lengths = sorted({p.wq_entries for p in points})
    frac: Dict[str, Dict[int, float]] = {}
    lat: Dict[str, Dict[int, float]] = {}
    for p in points:
        frac.setdefault(p.workload, {})[p.wq_entries] = p.reduced_counter_write_fraction
        lat.setdefault(p.workload, {})[p.wq_entries] = p.supermem_latency_ns
    rows_a = [
        [wl] + [frac[wl][n] for n in lengths] for wl in WORKLOAD_NAMES if wl in frac
    ]
    rows_b = []
    for wl in WORKLOAD_NAMES:
        if wl not in lat:
            continue
        base = lat[wl][lengths[0]]
        rows_b.append([wl] + [lat[wl][n] / base for n in lengths])
    return "\n".join(
        [
            render_table(
                "Figure 16a: fraction of counter writes removed by SuperMem vs WQ length",
                ["workload"] + [str(n) for n in lengths],
                rows_a,
                note="Paper shape: grows with queue length, plateaus at >= 32 entries.",
            ),
            render_table(
                "Figure 16b: SuperMem txn latency vs WQ length (normalised to 8 entries)",
                ["workload"] + [str(n) for n in lengths],
                rows_b,
                note="Paper shape: a few percent improvement from 8 to 32 entries.",
            ),
        ]
    )
