"""Figure 17: sensitivity to the counter-cache size.

(a) counter-cache hit rate and (b) workload execution time, sweeping the
counter cache from 1 KB to 4 MB with a 32-entry write queue and 1 KB
transactions. The paper's shape: queue and B-tree are insensitive (their
accesses are sequential/clustered, so even a tiny cache hits); array, hash
table and RB-tree gain a few percent of hit rate and 1-5 % of execution
time as the cache grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes import Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.workloads.base import WORKLOAD_NAMES

CACHE_SIZES = (1 << 10, 16 << 10, 256 << 10, 4 << 20)


@dataclass
class Fig17Point:
    workload: str
    counter_cache_size: int
    hit_rate: float
    total_time_ns: float


def run(
    scale: str | Scale = "default",
    cache_sizes=CACHE_SIZES,
    request_size: int = 1024,
    jobs: int = 1,
    journal: str | None = None,
    fidelity: str = "timing",
) -> List[Fig17Point]:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    cells = [(workload, size) for workload in WORKLOAD_NAMES for size in cache_sizes]
    # Cache-sensitivity needs steady state: longer measured runs with a
    # warmup so cross-transaction reuse (what a bigger cache captures)
    # dominates cold compulsory misses.
    specs = [
        PointSpec(
            workload=workload,
            scheme=Scheme.SUPERMEM,
            n_ops=4 * scale.n_ops,
            request_size=request_size,
            footprint=scale.footprint,
            base_config=experiment_base_config(scale, counter_cache_size=size),
            seed=1,
            fidelity=fidelity,
            warmup_ops=scale.n_ops,
        )
        for (workload, size) in cells
    ]
    results = iter(run_points(specs, jobs=jobs, label="fig17", journal=journal))
    points: List[Fig17Point] = []
    for workload, size in cells:
        result = next(results)
        # Report the read-path hit rate: those are the hits that let
        # OTP generation overlap the data fetch (Figure 2b).
        points.append(
            Fig17Point(
                workload=workload,
                counter_cache_size=size,
                hit_rate=result.counter_cache_read_hit_rate,
                total_time_ns=result.total_time_ns,
            )
        )
    return points


def _size_label(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}MB"
    return f"{size >> 10}KB"


def render(points: List[Fig17Point]) -> str:
    sizes = sorted({p.counter_cache_size for p in points})
    hits: Dict[str, Dict[int, float]] = {}
    times: Dict[str, Dict[int, float]] = {}
    for p in points:
        hits.setdefault(p.workload, {})[p.counter_cache_size] = p.hit_rate
        times.setdefault(p.workload, {})[p.counter_cache_size] = p.total_time_ns
    rows_a = [
        [wl] + [hits[wl][s] for s in sizes] for wl in WORKLOAD_NAMES if wl in hits
    ]
    rows_b = []
    for wl in WORKLOAD_NAMES:
        if wl not in times:
            continue
        base = times[wl][sizes[0]]
        rows_b.append([wl] + [times[wl][s] / base for s in sizes])
    labels = [_size_label(s) for s in sizes]
    return "\n".join(
        [
            render_table(
                "Figure 17a: counter cache hit rate vs cache size (SuperMem)",
                ["workload"] + labels,
                rows_a,
                note="Paper shape: queue/btree flat; array/hashtable/rbtree improve.",
            ),
            render_table(
                "Figure 17b: execution time vs cache size (normalised to smallest)",
                ["workload"] + labels,
                rows_b,
                note="Paper shape: 1-5% improvement for the poor-locality workloads.",
            ),
        ]
    )
