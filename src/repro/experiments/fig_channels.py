"""Channel-count sensitivity: bank-conflict relief as channels grow.

A fig16-style sweep over ``MemoryConfig.n_channels`` at fixed
``n_banks``: every channel carries its own command bus, so splitting the
same eight banks over more channels removes request-serialisation
stalls. The sweep runs the two metadata-heaviest schemes — SuperMem
(counters XBank-striped across banks, hence across channels) and
SuperMem+BMT (adds tree-node lines, themselves bank-striped by line
index; see :class:`repro.crypto.tree_timed.TreeGeometry`) — because
their extra metadata traffic is what contends for the command bus in
the first place.

Every cell is a regular ``PointSpec`` through the supervised runner
pool, so ``--jobs`` parallelism, the resume journal, and the retry
policy are inherited; results are bit-identical at any job count.
:func:`validate` asserts the monotone shape — at fixed bank count,
adding channels never makes a scheme slower (beyond float jitter) —
and the CLI run fails loudly if the model drifts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.schemes import Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.workloads.base import WORKLOAD_NAMES

#: Channel counts swept (n_banks stays 8: every count divides it).
CHANNEL_COUNTS = (1, 2, 4, 8)
#: The metadata-heavy schemes whose bus contention the sweep measures.
SCHEMES = (Scheme.SUPERMEM, Scheme.SUPERMEM_BMT)
#: Relative tolerance for the per-step monotonicity check. Splitting the
#: bus changes issue *ordering* too, which can shift individual
#: transaction latencies a hair either way; the trend check (the widest
#: configuration must beat the narrowest outright) stays strict.
_EPSILON = 1e-3


@dataclass
class FigChannelsPoint:
    """One (workload, n_channels, scheme) cell of the sweep."""

    workload: str
    n_channels: int
    scheme: Scheme
    avg_latency_ns: float
    #: Latency normalised to the same (workload, scheme) at 1 channel.
    normalized: float


def run(
    scale: Union[str, Scale] = "default",
    channel_counts=CHANNEL_COUNTS,
    request_size: int = 1024,
    jobs: int = 1,
    journal: Optional[str] = None,
    fidelity: str = "timing",
) -> List[FigChannelsPoint]:
    """Execute the sweep through the supervised runner pool."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    cells: List[Tuple[str, int]] = [
        (workload, n_channels)
        for workload in WORKLOAD_NAMES
        for n_channels in channel_counts
    ]
    base = experiment_base_config(scale)
    specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops,
            request_size=request_size,
            footprint=scale.footprint,
            base_config=dataclasses.replace(
                base,
                memory=dataclasses.replace(base.memory, n_channels=n_channels),
            ),
            seed=1,
            fidelity=fidelity,
        )
        for (workload, n_channels) in cells
        for scheme in SCHEMES
    ]
    results = iter(
        run_points(specs, jobs=jobs, label="fig-channels", journal=journal)
    )
    points: List[FigChannelsPoint] = []
    base_latency: Dict[Tuple[str, Scheme], float] = {}
    for workload, n_channels in cells:
        for scheme in SCHEMES:
            result = next(results)
            latency = result.avg_txn_latency_ns
            key = (workload, scheme)
            if key not in base_latency:
                base_latency[key] = latency
            points.append(
                FigChannelsPoint(
                    workload=workload,
                    n_channels=n_channels,
                    scheme=scheme,
                    avg_latency_ns=latency,
                    normalized=(
                        latency / base_latency[key] if base_latency[key] else 0.0
                    ),
                )
            )
    validate(points)
    return points


def validate(points: List[FigChannelsPoint]) -> None:
    """Assert the channel-relief shape on the swept points.

    At fixed bank count, growing ``n_channels`` splits the command bus:
    per (workload, scheme) the average latency must be monotone
    non-increasing in the channel count (within a scheduling-jitter
    band), and the widest configuration must beat the narrowest
    outright.
    """
    series: Dict[Tuple[str, Scheme], List[FigChannelsPoint]] = {}
    for p in points:
        series.setdefault((p.workload, p.scheme), []).append(p)
    for (workload, scheme), row in series.items():
        row = sorted(row, key=lambda p: p.n_channels)
        for narrow, wide in zip(row, row[1:]):
            assert (
                wide.avg_latency_ns
                <= narrow.avg_latency_ns * (1.0 + _EPSILON)
            ), (
                f"{workload}/{scheme.value}: {wide.n_channels} channels "
                f"({wide.avg_latency_ns} ns) slower than "
                f"{narrow.n_channels} ({narrow.avg_latency_ns} ns)"
            )
        if len(row) >= 2:
            assert row[-1].avg_latency_ns < row[0].avg_latency_ns, (
                f"{workload}/{scheme.value}: {row[-1].n_channels} channels "
                "shows no bank-conflict relief over "
                f"{row[0].n_channels}"
            )


def render(points: List[FigChannelsPoint]) -> str:
    counts = sorted({p.n_channels for p in points})
    tables = []
    for scheme in SCHEMES:
        norm: Dict[str, Dict[int, float]] = {}
        for p in points:
            if p.scheme is scheme:
                norm.setdefault(p.workload, {})[p.n_channels] = p.normalized
        rows = [
            [wl] + [norm[wl][n] for n in counts]
            for wl in WORKLOAD_NAMES
            if wl in norm
        ]
        tables.append(
            render_table(
                f"Channel sweep: {scheme.label} latency vs channels "
                "(normalised to 1 channel)",
                ["workload"] + [str(n) for n in counts],
                rows,
                note=(
                    "Monotone non-increasing: more channels split the "
                    "command bus, relieving bank-conflict serialisation "
                    "at fixed n_banks."
                ),
            )
        )
    return "\n".join(tables)
