"""Section 6 recovery-cost sweep: recovery time vs memory capacity.

The paper's recovery argument is an asymptotic ordering, not a runtime
figure: SuperMem's write-through counters make post-crash recovery work
**independent of memory capacity** (finish the interrupted page
re-encryption, walk the log tail), while SCA's counter-region scan is
**linear in capacity** and Osiris pays a **replay window per written
line**. This sweep makes the ordering measurable with the timed recovery
model of :mod:`repro.core.recovery_cost`:

* a headline grid — every recovery scheme x the scale's capacities, at a
  fixed log size and dirty fraction (the paper's Section 6 shape);
* knob columns off the smallest capacity — log size (SuperMem's only
  growth term), RSR armed vs disarmed (the O(RSR) constant), and
  counter-cache dirty fraction (which SCA's blind scan cannot exploit).

Every cell is a ``PointSpec(kernel="recovery")`` executed through the
supervised runner pool, so ``--jobs`` parallelism, the resume journal,
and retry policy are all inherited; results are bit-identical at any job
count. :func:`validate` re-asserts the Section 6 ordering on the swept
points — the CLI run fails loudly if the model drifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.common.config import MemoryConfig, SimConfig
from repro.core.schemes import RECOVERY_SCHEMES, Scheme, recovery_path
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points
from repro.sim.metrics import SimResult

#: Request size of the pre-crash transactional writes.
REQUEST_SIZE = 256
#: Footprint the pre-crash transactions scatter over.
FOOTPRINT = 1 << 18
#: Dirty fraction of the headline capacity grid.
BASE_DIRTY_FRAC = 0.5


@dataclass
class FigRecoveryPoint:
    """One priced recovery cell of the sweep."""

    scheme: Scheme
    path: str
    capacity_mb: int
    log_lines: int
    rsr: str
    dirty_frac: float
    recovery_ns: float
    nvm_reads: int
    counter_line_reads: int
    aes_ops: int
    trial_decryptions: int
    replay_writes: int
    log_lines_scanned: int
    rsr_lines_resumed: int
    counter_region_lines: int
    written_data_lines: int
    tree_leaves_rebuilt: int
    hash_ops: int
    tree_root_verified: int


#: One sweep cell: (capacity, scheme, log_lines, rsr, dirty_frac).
_Cell = Tuple[int, Scheme, int, str, float]


def _cells(scale: Scale) -> List[_Cell]:
    capacities = scale.recovery_capacities
    log_sweep = scale.recovery_log_lines
    base_log = log_sweep[0]
    cells: List[_Cell] = []
    # Headline grid: the Section 6 capacity shape, one row per capacity.
    for capacity in capacities:
        for scheme in RECOVERY_SCHEMES:
            cells.append((capacity, scheme, base_log, "off", BASE_DIRTY_FRAC))
    # Log-size sweep (SuperMem's only size-dependent term).
    for log_lines in log_sweep[1:]:
        cells.append((capacities[0], Scheme.SUPERMEM, log_lines, "off", BASE_DIRTY_FRAC))
    # RSR armed: crash mid page re-encryption; recovery resumes it.
    cells.append((capacities[0], Scheme.SUPERMEM, base_log, "armed", BASE_DIRTY_FRAC))
    # Dirty-fraction extremes for the write-back (scan / trial) schemes.
    for dirty_frac in (0.0, 1.0):
        for scheme in (Scheme.SCA, Scheme.OSIRIS):
            cells.append((capacities[0], scheme, base_log, "off", dirty_frac))
    return cells


def _spec(scale: Scale, cell: _Cell) -> PointSpec:
    import dataclasses

    capacity, scheme, log_lines, rsr, dirty_frac = cell
    base = experiment_base_config(scale)
    base = dataclasses.replace(
        base, memory=dataclasses.replace(base.memory, capacity=capacity)
    )
    return PointSpec(
        workload="recovery",
        scheme=scheme,
        n_ops=scale.recovery_txns,
        request_size=REQUEST_SIZE,
        footprint=FOOTPRINT,
        base_config=base,
        seed=1,
        kernel="recovery",
        kernel_params=(
            ("log_lines", log_lines),
            ("rsr", rsr),
            ("dirty_frac", dirty_frac),
        ),
    )


def _point(cell: _Cell, result: SimResult) -> FigRecoveryPoint:
    capacity, scheme, log_lines, rsr, dirty_frac = cell
    stats = result.stats

    def rec(name: str) -> int:
        return int(stats.get("recovery", name))

    return FigRecoveryPoint(
        scheme=scheme,
        path=recovery_path(scheme),
        capacity_mb=capacity >> 20,
        log_lines=log_lines,
        rsr=rsr,
        dirty_frac=dirty_frac,
        recovery_ns=result.total_time_ns,
        nvm_reads=rec("nvm_reads"),
        counter_line_reads=rec("counter_line_reads"),
        aes_ops=rec("aes_ops"),
        trial_decryptions=rec("trial_decryptions"),
        replay_writes=rec("replay_writes"),
        log_lines_scanned=rec("log_lines_scanned"),
        rsr_lines_resumed=rec("rsr_lines_resumed"),
        counter_region_lines=rec("counter_region_lines"),
        written_data_lines=rec("written_data_lines"),
        tree_leaves_rebuilt=rec("tree_leaves_rebuilt"),
        hash_ops=rec("hash_ops"),
        tree_root_verified=rec("tree_root_verified"),
    )


def run(
    scale: Union[str, Scale] = "default",
    jobs: int = 1,
    journal: Optional[str] = None,
) -> List[FigRecoveryPoint]:
    """Execute the sweep through the supervised runner pool."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    cells = _cells(scale)
    specs = [_spec(scale, cell) for cell in cells]
    results = run_points(specs, jobs=jobs, label="fig-recovery", journal=journal)
    points = [_point(cell, result) for cell, result in zip(cells, results)]
    validate(points)
    return points


def validate(points: List[FigRecoveryPoint]) -> None:
    """Assert the Section 6 ordering holds on the swept points.

    * SuperMem recovery time is flat in capacity (a small band covers
      bank-mapping jitter of counter-region addresses);
    * the SCA scan grows monotonically — and roughly linearly — with the
      counter-region size;
    * Osiris performs at least one trial decryption per written line and
      never beats SuperMem at equal state;
    * at every capacity the ordering is SuperMem <= SCA and
      SuperMem <= Osiris.
    """
    headline = [p for p in points if p.rsr == "off" and p.dirty_frac == BASE_DIRTY_FRAC]
    base_log = min(p.log_lines for p in headline)
    headline = [p for p in headline if p.log_lines == base_log]
    by_scheme = {
        scheme: sorted(
            (p for p in headline if p.scheme is scheme),
            key=lambda p: p.capacity_mb,
        )
        for scheme in RECOVERY_SCHEMES
    }
    supermem = by_scheme[Scheme.SUPERMEM]
    if len(supermem) >= 2:
        low, high = min(p.recovery_ns for p in supermem), max(
            p.recovery_ns for p in supermem
        )
        assert high <= low * 1.2, (
            f"SuperMem recovery should be flat in capacity, got {low}..{high} ns"
        )
    sca = by_scheme[Scheme.SCA]
    for smaller, larger in zip(sca, sca[1:]):
        assert larger.recovery_ns > smaller.recovery_ns, (
            "SCA scan cost must grow with capacity: "
            f"{smaller.capacity_mb}MB={smaller.recovery_ns} vs "
            f"{larger.capacity_mb}MB={larger.recovery_ns}"
        )
        assert larger.counter_region_lines > smaller.counter_region_lines
    if len(sca) >= 2:
        span = sca[-1].capacity_mb / sca[0].capacity_mb
        growth = sca[-1].recovery_ns / sca[0].recovery_ns
        assert growth >= span / 2, (
            f"SCA scan should scale ~linearly: capacity x{span}, cost x{growth:.2f}"
        )
    for osiris in by_scheme[Scheme.OSIRIS]:
        assert osiris.trial_decryptions >= osiris.written_data_lines - osiris.log_lines_scanned
    for bmt in by_scheme[Scheme.SUPERMEM_BMT]:
        # The tree rebuild must actually run and be priced: leaves hashed,
        # hash engine charged, and the rebuilt root must match the root
        # register captured at crash time.
        assert bmt.tree_leaves_rebuilt > 0, "BMT recovery rebuilt no leaves"
        assert bmt.hash_ops > 0, "BMT recovery charged no hash work"
        assert bmt.tree_root_verified == 1, (
            "rebuilt integrity-tree root does not match the crash-time root"
        )
    for capacity_mb in {p.capacity_mb for p in headline}:
        at = {p.scheme: p for p in headline if p.capacity_mb == capacity_mb}
        assert at[Scheme.SUPERMEM].recovery_ns <= at[Scheme.SCA].recovery_ns, (
            f"SCA must not beat SuperMem at {capacity_mb}MB"
        )
        assert at[Scheme.SUPERMEM].recovery_ns <= at[Scheme.OSIRIS].recovery_ns, (
            f"Osiris must not beat SuperMem at {capacity_mb}MB"
        )
        assert (
            at[Scheme.SUPERMEM_BMT].recovery_ns
            >= at[Scheme.SUPERMEM].recovery_ns
        ), f"tree rebuild cannot make recovery cheaper at {capacity_mb}MB"


def render(points: List[FigRecoveryPoint]) -> str:
    headline = [p for p in points if p.rsr == "off" and p.dirty_frac == BASE_DIRTY_FRAC]
    base_log = min(p.log_lines for p in headline)
    headline = [p for p in headline if p.log_lines == base_log]
    capacities = sorted({p.capacity_mb for p in headline})
    rows_a = []
    for capacity_mb in capacities:
        at = {p.scheme: p for p in headline if p.capacity_mb == capacity_mb}
        rows_a.append(
            [f"{capacity_mb} MB"]
            + [at[s].recovery_ns for s in RECOVERY_SCHEMES]
            + [
                at[Scheme.SCA].counter_region_lines,
                at[Scheme.OSIRIS].trial_decryptions,
                at[Scheme.SUPERMEM_BMT].tree_leaves_rebuilt,
            ]
        )
    knobs = [p for p in points if p not in headline]
    rows_b = [
        [
            p.scheme.label,
            f"{p.capacity_mb} MB",
            p.log_lines,
            p.rsr,
            p.dirty_frac,
            p.recovery_ns,
            p.rsr_lines_resumed,
            p.replay_writes,
        ]
        for p in knobs
    ]
    return "\n".join(
        [
            render_table(
                "Recovery cost vs memory capacity (Section 6 ordering)",
                ["capacity"]
                + [s.label + " ns" for s in RECOVERY_SCHEMES]
                + ["SCA scan lines", "Osiris trials", "BMT leaves"],
                rows_a,
                note=(
                    "Paper shape: SuperMem flat in capacity (log tail + RSR only); "
                    "SCA linear (full counter-region scan); Osiris grows with "
                    "replay-window x written lines."
                ),
            ),
            render_table(
                "Recovery knobs: log size, RSR resume, counter-cache dirty fraction",
                [
                    "scheme",
                    "capacity",
                    "log_lines",
                    "rsr",
                    "dirty_frac",
                    "recovery ns",
                    "rsr resumed",
                    "replay writes",
                ],
                rows_b,
                note=(
                    "SuperMem's cost moves only with the log and the bounded RSR "
                    "resume; SCA's blind scan cannot exploit a clean cache "
                    "(dirty_frac 0.0 costs the same scan as 1.0)."
                ),
            ),
        ]
    )
