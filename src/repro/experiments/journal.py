"""On-disk sweep journal: completed points keyed by content digest.

The runner journals every completed point as one JSONL line, keyed by a
sha256 digest of the *content* of the point — the full
:class:`~repro.experiments.runner.PointSpec` (workload, scheme, sizes,
seed, and the entire nested :class:`~repro.common.config.SimConfig`) plus
a code-version salt. A re-run of the same sweep against the same journal
(``repro run ... --resume <journal>``) recognises finished points by
digest and skips them; because the journaled record round-trips the
simulation result exactly (floats survive JSON via shortest-repr), an
interrupted sweep resumed this way is bit-identical to an uninterrupted
one — the same golden-digest guarantee the parallel runner makes against
serial execution.

Robustness properties the resume guarantee rests on:

* **Content keys, not positions.** A digest covers everything that
  determines a result, so reordering specs, changing the grid, or mixing
  experiments in one journal file cannot alias two different points.
* **Salted by code version.** :data:`JOURNAL_SALT` plus
  ``repro.__version__`` is folded into every digest; bumping either
  invalidates stale journals wholesale instead of silently replaying
  results from an older model.
* **Torn tails are expected.** A SIGKILL can land mid-append, leaving a
  truncated final line. Loading tolerates (and drops) undecodable lines,
  so a journal written up to the instant of death resumes cleanly.
* **Append-only, flushed per point.** Records are flushed (and fsynced)
  as soon as a point completes; a crash loses at most the in-flight
  point, never a completed one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from typing import Dict, Iterator, Optional, Tuple

from repro.common.stats import Stats
from repro.sim.metrics import SimResult

#: Bump when a model change intentionally shifts simulation results —
#: this (with ``repro.__version__``) invalidates every existing journal.
#: v2: PointSpec grew ``fidelity`` and SimConfig grew ``fidelity``/
#: ``hot_path``, changing every spec's asdict() shape.
#: v3: SimConfig grew ``batched_replay``, changing the asdict() shape
#: again (results are bit-identical; the shape alone invalidates).
JOURNAL_SALT = "supermem-journal-v3"


def _jsonify(obj: object) -> object:
    if isinstance(obj, enum.Enum):
        return obj.value
    raise TypeError(f"not journal-serialisable: {obj!r}")


def digest_salt() -> str:
    """The full salt folded into every spec digest."""
    from repro import __version__

    return f"{JOURNAL_SALT}:{__version__}"


def spec_digest(spec, salt: Optional[str] = None) -> str:
    """Content digest of one :class:`PointSpec` (plus the code salt).

    Two specs share a digest iff every field — including the whole nested
    ``SimConfig`` — is equal, so a journal lookup can never confuse two
    points that would simulate differently.
    """
    spec_dict = dataclasses.asdict(spec)
    base_config = spec_dict.get("base_config")
    if isinstance(base_config, dict):
        # The outcome-store path is a harness knob: store hits are
        # bit-identical to the compute path, so runs with and without a
        # configured store must share digests (and digests must match
        # journals written before the field existed — no salt bump).
        base_config.pop("outcome_store", None)
    payload = {
        "salt": salt if salt is not None else digest_salt(),
        "spec": spec_dict,
    }
    canon = json.dumps(payload, sort_keys=True, default=_jsonify)
    return hashlib.sha256(canon.encode()).hexdigest()


def result_to_record(result: SimResult) -> Dict[str, object]:
    """Lossless JSON form of a :class:`SimResult`.

    Covers everything any experiment's ``render``/``validate`` reads:
    the simulated wall clock, every transaction latency, and every raw
    counter of the shared statistics registry.
    """
    return {
        "total_time_ns": result.total_time_ns,
        "txn_latencies": list(result.txn_latencies),
        "stats": [[space, counter, value] for space, counter, value in result.stats],
    }


def result_from_record(record: Dict[str, object]) -> SimResult:
    """Rebuild a :class:`SimResult` journaled by :func:`result_to_record`."""
    stats = Stats()
    for space, counter, value in record["stats"]:  # type: ignore[union-attr]
        stats.set(space, counter, value)
    return SimResult(
        total_time_ns=record["total_time_ns"],  # type: ignore[arg-type]
        txn_latencies=list(record["txn_latencies"]),  # type: ignore[arg-type]
        stats=stats,
    )


class SweepJournal:
    """Append-only JSONL store of completed (and failed) sweep points.

    One journal file can serve many sweeps — digests make records
    self-identifying — so ``--resume sweep.jsonl`` works for ``run all``
    as naturally as for a single figure.
    """

    def __init__(self, path: str):
        self.path = path
        self._results: Dict[str, SimResult] = {}
        #: Failure records loaded from disk (digest -> record), kept for
        #: post-mortem inspection; failures are never "resumed".
        self.failures: Dict[str, Dict[str, object]] = {}
        #: Undecodable lines dropped during load — 0 or 1 after a clean
        #: kill (the torn tail), more only if the file was corrupted.
        #: The runner surfaces this as ``repro_journal_torn_tails_total``.
        self.torn_tails = 0
        #: Records appended by this process (points + failures).
        self.records_written = 0
        self._salt = digest_salt()
        self._load()

    # -- loading ---------------------------------------------------------

    def _iter_lines(self) -> Iterator[Tuple[int, Dict[str, object]]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A SIGKILL mid-append leaves a torn tail; drop it.
                    self.torn_tails += 1
                    continue
                if isinstance(record, dict):
                    yield lineno, record

    def _load(self) -> None:
        for _, record in self._iter_lines():
            if record.get("salt") != self._salt:
                continue  # journal written by a different code version
            digest = record.get("digest")
            if not isinstance(digest, str):
                continue
            if record.get("kind") == "failure":
                self.failures[digest] = record
                continue
            try:
                self._results[digest] = result_from_record(record["result"])
            except (KeyError, TypeError, ValueError):
                continue

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def get(self, digest: str) -> Optional[SimResult]:
        """The journaled result for ``digest``, or ``None``."""
        return self._results.get(digest)

    # -- appends ---------------------------------------------------------

    def _append(self, record: Dict[str, object]) -> None:
        record["salt"] = self._salt
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True, default=_jsonify))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.records_written += 1

    def record(self, digest: str, label: str, result: SimResult) -> None:
        """Journal one completed point (idempotent per digest)."""
        if digest in self._results:
            return
        self._results[digest] = result
        self._append(
            {
                "kind": "point",
                "digest": digest,
                "label": label,
                "result": result_to_record(result),
            }
        )

    def record_failure(self, digest: str, label: str, failure: Dict[str, object]) -> None:
        """Journal one exhausted-retries failure for post-mortem reading."""
        self.failures[digest] = dict(failure)
        self._append(
            {"kind": "failure", "digest": digest, "label": label, **failure}
        )
