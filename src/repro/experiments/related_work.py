"""Related-work comparison (paper Section 6, quantified).

Two tables the paper argues qualitatively, measured here:

* **runtime traffic and latency** — SuperMem vs SCA (selective
  counter-atomicity) vs Osiris (relaxed counter persistence) vs the WT
  baseline, on one workload;
* **recovery cost** — trial decryptions needed to rebuild counters after
  a crash, as a function of how much memory was written. The paper's
  claim: Osiris's recovery "linearly increases with the memory size",
  SuperMem's is zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.config import MemoryConfig, SimConfig
from repro.core.osiris import OsirisRecovery
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.report import render_table
from repro.experiments.runner import PointSpec, run_points

COMPARED = (Scheme.WT_BASE, Scheme.SCA, Scheme.OSIRIS, Scheme.SUPERMEM)


@dataclass
class RuntimeRow:
    scheme: Scheme
    avg_latency_ns: float
    nvm_writes: int
    counter_writes_surviving: int


@dataclass
class RecoveryRow:
    written_lines: int
    osiris_trials: int
    supermem_trials: int  # always 0 (strict persistence)


def run_runtime(
    scale: str | Scale = "default",
    workload: str = "array",
    request_size: int = 1024,
    jobs: int = 1,
    journal: str | None = None,
) -> List[RuntimeRow]:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    base = experiment_base_config(scale)
    specs = [
        PointSpec(
            workload=workload,
            scheme=scheme,
            n_ops=scale.n_ops,
            request_size=request_size,
            footprint=scale.footprint,
            base_config=base,
            seed=1,
        )
        for scheme in COMPARED
    ]
    results = run_points(specs, jobs=jobs, label="related-work", journal=journal)
    return [
        RuntimeRow(
            scheme=scheme,
            avg_latency_ns=r.avg_txn_latency_ns,
            nvm_writes=r.surviving_writes,
            counter_writes_surviving=r.counter_writes - r.coalesced_counter_writes,
        )
        for scheme, r in zip(COMPARED, results)
    ]


def run_recovery(written_line_counts=(64, 256, 1024)) -> List[RecoveryRow]:
    rows = []
    for n_lines in written_line_counts:
        cfg = scheme_config(
            Scheme.OSIRIS, SimConfig(memory=MemoryConfig(capacity=64 << 20))
        )
        system = SecureMemorySystem(cfg)
        for i in range(n_lines):
            system.persist_line(float(i), line=i, payload=bytes([i % 250 + 1]) * 64)
        report = OsirisRecovery(system.crash()).recover()
        rows.append(
            RecoveryRow(
                written_lines=n_lines,
                osiris_trials=report.trial_decryptions,
                supermem_trials=0,
            )
        )
    return rows


def render(runtime: List[RuntimeRow], recovery: List[RecoveryRow]) -> str:
    runtime_table = render_table(
        "Related work: runtime comparison (array, 1KB transactions)",
        ["scheme", "avg txn latency (ns)", "NVM writes", "surviving counter writes"],
        [
            [r.scheme.label, r.avg_latency_ns, r.nvm_writes, r.counter_writes_surviving]
            for r in runtime
        ],
        note=(
            "SCA pairs every persistent write (no coalescing); Osiris "
            "persists every 4th counter update; SuperMem coalesces in the "
            "write queue."
        ),
    )
    recovery_table = render_table(
        "Related work: post-crash counter recovery cost",
        ["written lines", "Osiris trial decryptions", "SuperMem trial decryptions"],
        [[r.written_lines, r.osiris_trials, r.supermem_trials] for r in recovery],
        note="Paper Section 6: Osiris recovery grows with memory size; "
        "SuperMem needs none (strict counter persistence).",
    )
    return runtime_table + "\n" + recovery_table
