"""Plain-text / markdown table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render a GitHub-markdown table with a title line.

    Cells are stringified; floats get three significant decimals.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    body: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in body)) if body else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = [f"### {title}", ""]
    out.append(line([str(h) for h in headers]))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(r) for r in body)
    if note:
        out.append("")
        out.append(f"*{note}*")
    out.append("")
    return "\n".join(out)
