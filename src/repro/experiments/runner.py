"""Parallel experiment runner: fan a grid of simulation points over processes.

Every experiment in the suite is an embarrassingly parallel grid of
independent simulation points — fig13 alone is 5 workloads x 3 sizes x 6
schemes = 90 serial runs. This module turns such grids into lists of
picklable :class:`PointSpec` records and executes them either in-process
(``jobs=1``, the default) or across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism: results are keyed by spec position, never by completion
order — ``run_points`` returns ``results[i]`` for ``specs[i]`` regardless
of which worker finished first, and each point simulates a fresh, isolated
memory system, so ``--jobs N`` output is bit-identical to serial. The
guarantee is asserted point-for-point (including every stats counter) by
``tests/experiments/test_runner.py``.

Trace reuse: each worker process keeps its own
:mod:`repro.sim.trace_cache`, so a worker that simulates several schemes
of the same (workload, size, seed) point generates the trace once.
Serial runs share the parent process's cache the same way.

Observability: per-point wall times are aggregated into a
:class:`repro.obs.histogram.Histogram` on the returned :class:`RunnerReport`
and progress is logged to stderr. Simulation-time tracers
(:class:`repro.obs.Tracer`) remain per-run objects and are not supported
across process boundaries — trace a single point with ``repro simulate
--trace`` instead (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.core.schemes import Scheme
from repro.obs.histogram import Histogram
from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of an experiment grid.

    Picklable by construction (enums, numbers, strings, and the frozen
    ``SimConfig`` dataclass), so specs can cross process boundaries.
    ``n_programs`` selects the kernel: ``None`` runs the single-core
    :func:`~repro.sim.simulator.simulate_workload`; an integer runs the
    multi-programmed :func:`~repro.sim.multicore.simulate_multiprogrammed`
    with that many programs (``workload`` may then be a tuple naming one
    workload per program for heterogeneous mixes).
    """

    workload: Union[str, Tuple[str, ...]]
    scheme: Scheme
    n_ops: int
    request_size: int = 1024
    #: ``None`` lets the multi-programmed kernel default to one bank's worth.
    footprint: Optional[int] = 1 << 20
    base_config: Optional[SimConfig] = None
    seed: int = 1
    warmup_ops: int = 0
    counter_organization: str = "split"
    #: ``None`` = single-core; N = multi-programmed with N programs.
    n_programs: Optional[int] = None


@dataclass
class RunnerReport:
    """Wall-clock accounting for one :func:`run_points` call."""

    label: str
    jobs: int
    n_points: int
    wall_s: float = 0.0
    #: Distribution of per-point wall times (seconds; serial runs only —
    #: parallel workers don't report individual timings back).
    point_wall_s: Histogram = field(default_factory=Histogram)
    #: Parent-process trace-cache (hits, misses) delta, serial runs only.
    trace_cache: Tuple[int, int] = (0, 0)


#: Called after each completed point with (done, total).
ProgressFn = Callable[[int, int], None]


def _run_point(spec: PointSpec) -> SimResult:
    """Execute one spec (also the child-process entry point)."""
    if spec.n_programs is not None:
        from repro.sim.multicore import simulate_multiprogrammed

        workload = (
            list(spec.workload)
            if isinstance(spec.workload, tuple)
            else spec.workload
        )
        return simulate_multiprogrammed(
            workload,
            spec.scheme,
            n_programs=spec.n_programs,
            n_ops=spec.n_ops,
            request_size=spec.request_size,
            footprint=spec.footprint,
            base_config=spec.base_config,
            seed=spec.seed,
        )
    from repro.sim.simulator import simulate_workload

    if not isinstance(spec.workload, str):
        raise ConfigError("single-core point needs exactly one workload name")
    return simulate_workload(
        spec.workload,
        spec.scheme,
        n_ops=spec.n_ops,
        request_size=spec.request_size,
        footprint=spec.footprint,
        base_config=spec.base_config,
        seed=spec.seed,
        warmup_ops=spec.warmup_ops,
        counter_organization=spec.counter_organization,
    )


def default_jobs() -> int:
    """A sensible ``--jobs auto`` value: the machine's CPU count."""
    return os.cpu_count() or 1


def _log_progress(label: str, done: int, total: int, jobs: int) -> None:
    print(
        f"[runner] {label}: {done}/{total} points (jobs={jobs})",
        file=sys.stderr,
    )


def run_points(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    label: str = "sweep",
    progress: Optional[ProgressFn] = None,
) -> List[SimResult]:
    """Run every spec; returns results in spec order (deterministic).

    ``jobs=1`` executes in-process; ``jobs>1`` fans out over a process
    pool. ``progress`` (or a default stderr logger for multi-point grids)
    is invoked after each completed point with ``(done, total)``.
    """
    results, _ = run_points_report(specs, jobs=jobs, label=label, progress=progress)
    return results


def run_points_report(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    label: str = "sweep",
    progress: Optional[ProgressFn] = None,
) -> Tuple[List[SimResult], RunnerReport]:
    """Like :func:`run_points` but also returns the wall-clock report."""
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    specs = list(specs)
    total = len(specs)
    report = RunnerReport(label=label, jobs=jobs, n_points=total)
    if progress is None and total > 1:
        # Log at ~10% granularity so big sweeps stay readable.
        step = max(1, total // 10)
        progress = lambda done, n: (
            _log_progress(label, done, n, jobs) if done % step == 0 or done == n else None
        )
    started = time.perf_counter()
    if jobs == 1 or total <= 1:
        results = _run_serial(specs, report, progress)
    else:
        results = _run_parallel(specs, jobs, progress)
    report.wall_s = time.perf_counter() - started
    return results, report


def _run_serial(
    specs: List[PointSpec],
    report: RunnerReport,
    progress: Optional[ProgressFn],
) -> List[SimResult]:
    from repro.sim import trace_cache

    hits0, misses0 = trace_cache.cache_stats()
    results: List[SimResult] = []
    for index, spec in enumerate(specs):
        t0 = time.perf_counter()
        results.append(_run_point(spec))
        report.point_wall_s.record(time.perf_counter() - t0)
        if progress is not None:
            progress(index + 1, len(specs))
    hits1, misses1 = trace_cache.cache_stats()
    report.trace_cache = (hits1 - hits0, misses1 - misses0)
    return results


def _run_parallel(
    specs: List[PointSpec],
    jobs: int,
    progress: Optional[ProgressFn],
) -> List[SimResult]:
    total = len(specs)
    results: List[Optional[SimResult]] = [None] * total
    # Workers inherit nothing mutable from the grid: each future carries
    # one picklable spec and returns one picklable SimResult. Results are
    # stored at the spec's index, so completion order never shows.
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        pending = {
            pool.submit(_run_point, spec): index
            for index, spec in enumerate(specs)
        }
        done_count = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                results[index] = future.result()
                done_count += 1
                if progress is not None:
                    progress(done_count, total)
    return results  # type: ignore[return-value]
