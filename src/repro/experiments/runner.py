"""Fault-tolerant, resumable experiment runner.

Every experiment in the suite is an embarrassingly parallel grid of
independent simulation points — fig13 alone is 5 workloads x 3 sizes x 6
schemes = 90 serial runs. This module turns such grids into lists of
picklable :class:`PointSpec` records and executes them either in-process
(``jobs=1``, the default) or across a pool of worker processes.

Determinism: results are keyed by spec position, never by completion
order — ``run_points`` returns ``results[i]`` for ``specs[i]`` regardless
of which worker finished first, and each point simulates a fresh, isolated
memory system, so ``--jobs N`` output is bit-identical to serial. The
guarantee is asserted point-for-point (including every stats counter) by
``tests/experiments/test_runner.py``.

Fault tolerance: the paper's whole subject is surviving crashes, and the
harness holds itself to the same standard. A worker that dies (hard exit,
unpicklable result, injected fault), hangs past the per-point wall-clock
timeout, or returns garbage poisons only its own point: the runner
records the attempt, retries with exponential backoff up to
:class:`RunnerPolicy.max_attempts`, replaces the dead worker, and — when
the parallel budget is exhausted — degrades to one last serial in-process
execution before giving up. Points that still fail surface as structured
:class:`PointFailure` records on the :class:`RunnerReport` (and as
``CAT_RUNNER`` trace events via :meth:`RunnerReport.failure_events`);
:func:`run_points` then raises :class:`~repro.common.errors.SweepError`
listing exactly the poisoned points. Deterministic fault injection for
tests and drills lives in :mod:`repro.experiments.faults`
(``REPRO_FAULT=point:<k>:crash|hang|corrupt``).

Resume: pass ``journal=<path>`` (CLI: ``repro run ... --resume <path>``)
and every completed point is appended to an on-disk JSONL keyed by a
content digest of (spec, config, code-version salt) — see
:mod:`repro.experiments.journal`. Re-running against the same journal
skips finished points, and because journaled results round-trip exactly,
an interrupted sweep resumed this way is bit-identical to an
uninterrupted one (the golden-digest guarantee extends across a SIGKILL).

Trace reuse: each worker process keeps its own
:mod:`repro.sim.trace_cache`, so a worker that simulates several schemes
of the same (workload, size, seed) point generates the trace once.
Serial runs share the parent process's cache the same way.

Observability: per-point wall times are aggregated into a
:class:`repro.obs.histogram.Histogram` on the returned :class:`RunnerReport`
and progress is logged to stderr. Simulation-time tracers
(:class:`repro.obs.Tracer`) remain per-run objects and are not supported
across process boundaries — trace a single point with ``repro simulate
--trace`` instead (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.config import SimConfig
from repro.common.errors import ConfigError, SweepError
from repro.core.schemes import Scheme
from repro.experiments.faults import (
    CRASH_EXIT_CODE,
    FAULT_CORRUPT,
    FAULT_CRASH,
    FAULT_HANG,
    FaultPlan,
    InjectedFault,
)
from repro.experiments.journal import SweepJournal, spec_digest
from repro.obs.events import (
    CAT_RUNNER,
    RUNNER_EV_FAILURE,
    RUNNER_EV_FALLBACK,
    RUNNER_EV_RESUME,
    RUNNER_EV_RETRY,
    RUNNER_EV_TIMEOUT,
    TRACK_RUNNER,
    TraceEvent,
)
from repro.obs.histogram import Histogram
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.sim.metrics import SimResult


#: The metric-name vocabulary the sweep runner publishes when a
#: :class:`~repro.obs.metrics.MetricsRegistry` is installed. Docs-drift
#: guarded: ``tests/test_docs_drift.py`` asserts every name appears in
#: ``docs/OBSERVABILITY.md`` — add here, document there.
METRIC_NAMES = (
    "repro_sweep_points",
    "repro_sweep_done",
    "repro_sweep_points_total",
    "repro_sweep_attempts_total",
    "repro_sweep_retries_total",
    "repro_sweep_timeouts_total",
    "repro_sweep_workers_total",
    "repro_sweep_in_flight",
    "repro_sweep_queue_depth",
    "repro_sweep_points_per_second",
    "repro_sweep_eta_seconds",
    "repro_sweep_point_wall_seconds",
    "repro_journal_records_total",
    "repro_journal_resume_hits_total",
    "repro_journal_resume_misses_total",
    "repro_journal_torn_tails_total",
    "repro_trace_array_hits_total",
    "repro_trace_array_misses_total",
    "repro_trace_outcome_hits_total",
    "repro_trace_outcome_misses_total",
    "repro_outcome_store_hits_total",
    "repro_outcome_store_misses_total",
    "repro_outcome_store_bytes_total",
)

#: 1-2-5 seconds ladder (1 ms .. 500 s) for per-point wall times.
_WALL_BOUNDS = tuple(
    mag * mult for mag in (0.001, 0.01, 0.1, 1.0, 10.0, 100.0) for mult in (1, 2, 5)
)


class SweepMetrics:
    """Typed handles on every sweep-runner metric family.

    Constructed per :func:`run_points_report` call against whatever
    registry is in force (the zero-overhead :data:`NULL_METRICS` by
    default — declaring against it hands back shared no-op families, so
    an uninstrumented sweep allocates nothing per point). Instrumentation
    sites guard non-trivial argument construction with
    ``if metrics.enabled:``, mirroring the tracer idiom.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.enabled = registry.enabled
        self.points = registry.gauge(
            "repro_sweep_points", "Points in the current sweep grid.", merge="max"
        )
        self.done = registry.gauge(
            "repro_sweep_done",
            "Points completed so far (resumed + executed).",
            merge="max",
        )
        self.points_total = registry.counter(
            "repro_sweep_points_total",
            "Points finished, by final status.",
            labels=("status",),  # ok / failed / resumed
        )
        self.attempts = registry.counter(
            "repro_sweep_attempts_total",
            "Point execution attempts, by outcome.",
            labels=("outcome",),  # ok / error / timeout / worker_died / corrupt
        )
        self.retries = registry.counter(
            "repro_sweep_retries_total", "Failed attempts that were retried."
        )
        self.timeouts = registry.counter(
            "repro_sweep_timeouts_total",
            "Attempts killed by the per-point wall-clock timeout.",
        )
        self.workers = registry.counter(
            "repro_sweep_workers_total",
            "Worker-pool lifecycle events.",
            labels=("event",),  # spawn / respawn / kill
        )
        self.in_flight = registry.gauge(
            "repro_sweep_in_flight",
            "Points executing in workers right now.",
            merge="sum",
        )
        self.queue_depth = registry.gauge(
            "repro_sweep_queue_depth",
            "Points ready to run or waiting out retry backoff.",
            merge="sum",
        )
        self.throughput = registry.gauge(
            "repro_sweep_points_per_second",
            "Executed points per wall-clock second.",
            merge="sum",
        )
        self.eta = registry.gauge(
            "repro_sweep_eta_seconds",
            "Estimated seconds until the sweep completes.",
            merge="max",
        )
        self.point_wall = registry.histogram(
            "repro_sweep_point_wall_seconds",
            "Per-point wall time in seconds.",
            bounds=_WALL_BOUNDS,
        )
        self.journal_records = registry.counter(
            "repro_journal_records_total",
            "Records appended to the sweep journal.",
        )
        self.resume_hits = registry.counter(
            "repro_journal_resume_hits_total",
            "Points satisfied from the resume journal without re-execution.",
        )
        self.resume_misses = registry.counter(
            "repro_journal_resume_misses_total",
            "Points looked up in the resume journal but not found.",
        )
        self.torn_tails = registry.counter(
            "repro_journal_torn_tails_total",
            "Undecodable journal lines dropped at load (torn-tail recoveries).",
        )
        self.array_hits = registry.counter(
            "repro_trace_array_hits_total",
            "Batched replays that reused already-decoded trace arrays "
            "(serial sweeps; parent-process cache only).",
        )
        self.array_misses = registry.counter(
            "repro_trace_array_misses_total",
            "Batched replays that paid a trace-array decode pass.",
        )
        self.outcome_hits = registry.counter(
            "repro_trace_outcome_hits_total",
            "Batched replays that reused a recorded hierarchy outcome "
            "stream (skipping the CPU cache walk).",
        )
        self.outcome_misses = registry.counter(
            "repro_trace_outcome_misses_total",
            "Batched runs that walked (and recorded) the cache hierarchy.",
        )
        self.store_hits = registry.counter(
            "repro_outcome_store_hits_total",
            "On-disk outcome-store entries loaded, by entry kind "
            "(serial sweeps; parent-process store counters only).",
            labels=("kind",),  # trace / outcomes
        )
        self.store_misses = registry.counter(
            "repro_outcome_store_misses_total",
            "On-disk outcome-store lookups that fell through to the "
            "compute path (absent, torn, or corrupt entries).",
            labels=("kind",),  # trace / outcomes
        )
        self.store_bytes = registry.counter(
            "repro_outcome_store_bytes_total",
            "Outcome-store entry bytes moved, by direction.",
            labels=("direction",),  # read / written
        )

    def event(self, kind: str, **fields: object) -> None:
        self.registry.event(kind, **fields)

    def attempt_outcome(self, exc_type: str) -> None:
        """Classify one failed attempt into the ``outcome`` label set."""
        outcome = {
            "PointTimeout": "timeout",
            "WorkerDied": "worker_died",
            "CorruptResult": "corrupt",
        }.get(exc_type, "error")
        self.attempts.labels(outcome).inc()


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of an experiment grid.

    Picklable by construction (enums, numbers, strings, and the frozen
    ``SimConfig`` dataclass), so specs can cross process boundaries.
    ``n_programs`` selects the kernel: ``None`` runs the single-core
    :func:`~repro.sim.simulator.simulate_workload`; an integer runs the
    multi-programmed :func:`~repro.sim.multicore.simulate_multiprogrammed`
    with that many programs (``workload`` may then be a tuple naming one
    workload per program for heterogeneous mixes).
    """

    workload: Union[str, Tuple[str, ...]]
    scheme: Scheme
    n_ops: int
    request_size: int = 1024
    #: ``None`` lets the multi-programmed kernel default to one bank's worth.
    footprint: Optional[int] = 1 << 20
    base_config: Optional[SimConfig] = None
    seed: int = 1
    warmup_ops: int = 0
    counter_organization: str = "split"
    #: ``None`` = single-core; N = multi-programmed with N programs.
    n_programs: Optional[int] = None
    #: Execution kernel: ``"simulate"`` (the timing simulators above) or
    #: ``"recovery"`` (the timed post-crash recovery model of
    #: :func:`repro.core.recovery_cost.run_recovery_point`).
    kernel: str = "simulate"
    #: Kernel-specific knobs as a tuple of ``(key, value)`` pairs — kept
    #: hashable and picklable so specs stay frozen and journal-digestable.
    kernel_params: Tuple[Tuple[str, object], ...] = ()
    #: Simulation fidelity: ``"timing"`` (default — skip functional byte
    #: work, identical timing/stats) or ``"full"``. Ignored by the
    #: recovery kernel, which always runs full fidelity. Part of the spec
    #: so the journal digest distinguishes the two modes.
    fidelity: str = "timing"

    def label(self) -> str:
        """Short human label for progress/failure reporting."""
        workload = (
            "+".join(self.workload)
            if isinstance(self.workload, tuple)
            else self.workload
        )
        return f"{workload}/{self.scheme.value}/{self.request_size}B"


@dataclass(frozen=True)
class RunnerPolicy:
    """Retry/timeout budget governing one sweep.

    The defaults retry transient failures twice (three attempts total)
    with exponential backoff, never time points out (simulation points
    have no natural wall-clock bound; the CLI exposes
    ``--point-timeout``), and fall back to one serial in-process attempt
    after the parallel budget is spent — a hung pool or a worker-side
    environment problem should not take down a sweep that the parent
    process could finish by itself.
    """

    #: Wall-clock seconds one point may run in a worker before the worker
    #: is killed and the attempt counts as failed. ``None`` = no timeout.
    point_timeout_s: Optional[float] = None
    #: Total execution attempts per point (1 = no retry).
    max_attempts: int = 3
    #: Base of the exponential backoff between attempts of one point
    #: (attempt ``n`` waits ``backoff_s * 2**(n-1)`` seconds).
    backoff_s: float = 0.05
    #: After parallel attempts are exhausted, re-execute the failed point
    #: serially in the parent before recording a failure.
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ConfigError(
                f"point_timeout_s must be positive, got {self.point_timeout_s}"
            )
        if self.backoff_s < 0:
            raise ConfigError(f"backoff_s must be >= 0, got {self.backoff_s}")


@dataclass
class PointFailure:
    """One point that exhausted its retry (and fallback) budget."""

    index: int
    digest: str
    label: str
    attempts: int
    exc_type: str
    traceback_tail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "digest": self.digest,
            "label": self.label,
            "attempts": self.attempts,
            "exc_type": self.exc_type,
            "traceback_tail": self.traceback_tail,
        }


@dataclass
class RunnerReport:
    """Wall-clock + fault/resume accounting for one :func:`run_points` call."""

    label: str
    jobs: int
    n_points: int
    wall_s: float = 0.0
    #: Distribution of per-point wall times (seconds; serial runs only —
    #: parallel workers don't report individual timings back).
    point_wall_s: Histogram = field(default_factory=Histogram)
    #: Parent-process trace-cache (hits, misses) delta, serial runs only.
    trace_cache: Tuple[int, int] = (0, 0)
    #: Replay-array decode cache (hits, misses) delta, serial runs only.
    trace_arrays: Tuple[int, int] = (0, 0)
    #: Hierarchy outcome-stream cache (hits, misses) delta, serial only.
    trace_outcomes: Tuple[int, int] = (0, 0)
    #: On-disk outcome-store counter delta (hits/misses by entry kind,
    #: bytes by direction; see
    #: :func:`repro.sim.outcome_store.store_stats`), serial runs only.
    outcome_store: Dict[str, int] = field(default_factory=dict)
    #: Failed attempts that were retried (includes timeouts).
    retries: int = 0
    #: Attempts killed by the per-point wall-clock timeout.
    timeouts: int = 0
    #: Points satisfied from the resume journal without re-execution.
    resumed: int = 0
    #: Points rescued by the post-pool serial in-process fallback.
    serial_fallbacks: int = 0
    #: Points that exhausted every attempt (run_points raises on these).
    failures: List[PointFailure] = field(default_factory=list)
    #: Journal file completed points were appended to, if any.
    journal_path: Optional[str] = None
    #: Final :meth:`MetricsRegistry.snapshot` of the sweep, when a real
    #: registry was installed (``None`` under :data:`NULL_METRICS`).
    metrics: Optional[Dict[str, object]] = None

    def failure_events(self) -> List[TraceEvent]:
        """The report's fault accounting as ``CAT_RUNNER`` trace events.

        Timestamps are wall-clock microseconds relative to the sweep
        start, matching the Chrome exporter's unit, so harness events can
        ride in the same file as a simulation trace.
        """
        events: List[TraceEvent] = []
        if self.resumed:
            events.append(
                TraceEvent(
                    cat=CAT_RUNNER,
                    name=RUNNER_EV_RESUME,
                    track=TRACK_RUNNER,
                    ts=0.0,
                    args={"points": self.resumed, "journal": self.journal_path},
                )
            )
        for _ in range(self.timeouts):
            events.append(
                TraceEvent(
                    cat=CAT_RUNNER, name=RUNNER_EV_TIMEOUT, track=TRACK_RUNNER, ts=0.0
                )
            )
        for _ in range(self.retries):
            events.append(
                TraceEvent(
                    cat=CAT_RUNNER, name=RUNNER_EV_RETRY, track=TRACK_RUNNER, ts=0.0
                )
            )
        for _ in range(self.serial_fallbacks):
            events.append(
                TraceEvent(
                    cat=CAT_RUNNER, name=RUNNER_EV_FALLBACK, track=TRACK_RUNNER, ts=0.0
                )
            )
        for failure in self.failures:
            events.append(
                TraceEvent(
                    cat=CAT_RUNNER,
                    name=RUNNER_EV_FAILURE,
                    track=TRACK_RUNNER,
                    ts=0.0,
                    args=failure.to_dict(),
                )
            )
        return events

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable accounting (surfaced by ``bench-sweep``/CI).

        Symmetric with the report's full surface: the ``failure_events``
        trace-event view and the final metrics snapshot ride along, so a
        serialized report loses nothing a consumer could have read off
        the live object (round-trip asserted in
        ``tests/experiments/test_runner_metrics.py``).
        """
        return {
            "label": self.label,
            "jobs": self.jobs,
            "n_points": self.n_points,
            "wall_s": round(self.wall_s, 3),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
            "serial_fallbacks": self.serial_fallbacks,
            "outcome_store": dict(self.outcome_store),
            "failures": [f.to_dict() for f in self.failures],
            "failure_events": [_event_to_dict(e) for e in self.failure_events()],
            "journal": self.journal_path,
            "metrics": self.metrics,
        }


def _event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """JSON form of one :class:`TraceEvent` (for report serialization)."""
    return {
        "cat": event.cat,
        "name": event.name,
        "track": event.track,
        "ts": event.ts,
        "ph": event.ph,
        "dur": event.dur,
        "args": event.args,
    }


#: Called after each completed point with (done, total).
ProgressFn = Callable[[int, int], None]

#: Sentinel a ``corrupt`` fault substitutes for the worker's real result;
#: any non-SimResult return is rejected the same way.
_CORRUPT_SENTINEL = "<corrupt-result>"

_default_policy = RunnerPolicy()

#: The registry used when ``run_points`` gets ``metrics=None`` — the
#: zero-overhead null registry unless the CLI installed a real one
#: (``--live``), mirroring the default-policy pattern.
_default_metrics: MetricsRegistry = NULL_METRICS  # type: ignore[assignment]

#: The report of the most recent run_points_report call in this process.
#: ``bench-sweep`` reads it after driving an experiment whose public API
#: returns only points (fig13.run and friends).
_last_report: Optional[RunnerReport] = None


def set_default_metrics(registry: MetricsRegistry) -> None:
    """Install the registry used when ``run_points`` gets ``metrics=None``.

    The CLI maps ``--live`` here so every experiment module publishes
    fleet metrics without signature churn (pass :data:`NULL_METRICS` to
    uninstall). Same pattern as :func:`set_default_policy`.
    """
    global _default_metrics
    _default_metrics = registry


def default_metrics() -> MetricsRegistry:
    """The currently installed default metrics registry."""
    return _default_metrics


def set_default_policy(policy: RunnerPolicy) -> None:
    """Install the policy used when ``run_points`` gets ``policy=None``.

    The CLI maps ``--point-timeout``/``--retries`` here so every
    experiment module inherits the budget without signature churn.
    """
    global _default_policy
    _default_policy = policy


def default_policy() -> RunnerPolicy:
    """The currently installed default :class:`RunnerPolicy`."""
    return _default_policy


def last_report() -> Optional[RunnerReport]:
    """The :class:`RunnerReport` of the most recent sweep, if any."""
    return _last_report


def _run_point(spec: PointSpec) -> SimResult:
    """Execute one spec (also the child-process entry point)."""
    if spec.kernel == "recovery":
        from repro.core.recovery_cost import run_recovery_point

        return run_recovery_point(spec)
    if spec.kernel != "simulate":
        raise ConfigError(f"unknown point kernel {spec.kernel!r}")
    if spec.n_programs is not None:
        from repro.sim.multicore import simulate_multiprogrammed

        workload = (
            list(spec.workload)
            if isinstance(spec.workload, tuple)
            else spec.workload
        )
        return simulate_multiprogrammed(
            workload,
            spec.scheme,
            n_programs=spec.n_programs,
            n_ops=spec.n_ops,
            request_size=spec.request_size,
            footprint=spec.footprint,
            base_config=spec.base_config,
            seed=spec.seed,
            fidelity=spec.fidelity,
        )
    from repro.sim.simulator import simulate_workload

    if not isinstance(spec.workload, str):
        raise ConfigError("single-core point needs exactly one workload name")
    return simulate_workload(
        spec.workload,
        spec.scheme,
        n_ops=spec.n_ops,
        request_size=spec.request_size,
        footprint=spec.footprint,
        base_config=spec.base_config,
        seed=spec.seed,
        warmup_ops=spec.warmup_ops,
        counter_organization=spec.counter_organization,
        fidelity=spec.fidelity,
    )


def default_jobs() -> int:
    """A sensible ``--jobs auto`` value: the machine's CPU count."""
    return os.cpu_count() or 1


def _log_progress(label: str, done: int, total: int, jobs: int) -> None:
    print(
        f"[runner] {label}: {done}/{total} points (jobs={jobs})",
        file=sys.stderr,
    )


class _ProgressReporter:
    """The default throttled stderr reporter (~10% granularity).

    One reporter serves the whole sweep, so journal-resume replays and
    fresh completions share a single throttle: the replay prints exactly
    one line (however many points it covered), fresh completions then
    continue the stepped cadence from that count, and the final point
    always prints — no duplicate and no skipped lines, where the old
    ad-hoc ``done % step`` lambda fired the throttle with an arbitrary
    aggregate count after a resume.
    """

    def __init__(self, label: str, total: int, jobs: int):
        self.label = label
        self.total = total
        self.jobs = jobs
        self.step = max(1, total // 10)
        self._last_printed = 0

    def replay(self, done: int, resumed: int) -> None:
        """One line for an entire journal-resume replay."""
        print(
            f"[runner] {self.label}: resumed {resumed} journaled points "
            f"({done}/{self.total})",
            file=sys.stderr,
        )
        self._last_printed = done

    def update(self, done: int, total: Optional[int] = None) -> None:
        """ProgressFn-compatible throttled update."""
        if done == self._last_printed:
            return
        if done >= self.total or done - self._last_printed >= self.step:
            self._last_printed = done
            _log_progress(self.label, done, self.total, self.jobs)


def _traceback_tail(limit: int = 6) -> str:
    """The last ``limit`` lines of the current exception's traceback."""
    lines = traceback.format_exc().strip().splitlines()
    return "\n".join(lines[-limit:])


def run_points(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    label: str = "sweep",
    progress: Optional[ProgressFn] = None,
    policy: Optional[RunnerPolicy] = None,
    journal: Optional[Union[str, SweepJournal]] = None,
    faults: Optional[FaultPlan] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[SimResult]:
    """Run every spec; returns results in spec order (deterministic).

    ``jobs=1`` executes in-process; ``jobs>1`` fans out over a worker
    pool. ``progress`` (or a default stderr logger for multi-point grids)
    is invoked after each completed point with ``(done, total)``.

    Raises :class:`~repro.common.errors.SweepError` if any point
    exhausted its retry budget — after every other point completed.
    Callers that want the partial results instead use
    :func:`run_points_report` and read ``report.failures``.
    """
    results, report = run_points_report(
        specs,
        jobs=jobs,
        label=label,
        progress=progress,
        policy=policy,
        journal=journal,
        faults=faults,
        metrics=metrics,
    )
    if report.failures:
        raise SweepError(report.failures)
    return results  # type: ignore[return-value]


def run_points_report(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    label: str = "sweep",
    progress: Optional[ProgressFn] = None,
    policy: Optional[RunnerPolicy] = None,
    journal: Optional[Union[str, SweepJournal]] = None,
    faults: Optional[FaultPlan] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[List[Optional[SimResult]], RunnerReport]:
    """Like :func:`run_points` but never raises on point failures.

    Returns ``(results, report)`` where ``results[i]`` is ``None`` for
    every point listed in ``report.failures`` — the sweep runs to the end
    regardless. ``journal`` (a path or an open :class:`SweepJournal`)
    enables resume: journaled points are returned without re-execution
    and fresh completions are appended. ``faults`` defaults to the
    ``REPRO_FAULT`` environment plan (see :mod:`repro.experiments.faults`).
    ``metrics`` (default: the registry installed via
    :func:`set_default_metrics`, normally :data:`NULL_METRICS`) receives
    the fleet-health instrumentation catalogued in :data:`METRIC_NAMES`;
    with a real registry the final snapshot lands on ``report.metrics``.
    """
    global _last_report
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    policy = policy if policy is not None else _default_policy
    if faults is None:
        faults = FaultPlan.from_env()
    if isinstance(journal, str):
        journal = SweepJournal(journal)
    sm = SweepMetrics(metrics if metrics is not None else _default_metrics)

    specs = list(specs)
    total = len(specs)
    report = RunnerReport(
        label=label,
        jobs=jobs,
        n_points=total,
        journal_path=journal.path if journal is not None else None,
    )
    reporter: Optional[_ProgressReporter] = None
    if progress is None and total > 1:
        # Log at ~10% granularity so big sweeps stay readable; one
        # reporter per sweep so resume replays share the throttle.
        reporter = _ProgressReporter(label, total, jobs)
        progress = reporter.update

    started = time.perf_counter()
    results: List[Optional[SimResult]] = [None] * total
    digests = [spec_digest(spec) for spec in specs]
    if sm.enabled:
        sm.points.set(total)
        if journal is not None and journal.torn_tails:
            sm.torn_tails.inc(journal.torn_tails)

    # Resume: satisfy journaled points without re-execution.
    done_count = 0
    executed = 0
    remaining: List[int] = []
    for index, digest in enumerate(digests):
        cached = journal.get(digest) if journal is not None else None
        if cached is not None:
            results[index] = cached
            report.resumed += 1
            done_count += 1
            if sm.enabled:
                sm.resume_hits.inc()
                sm.points_total.labels("resumed").inc()
        elif journal is not None and sm.enabled:
            remaining.append(index)
            sm.resume_misses.inc()
        else:
            remaining.append(index)
    if report.resumed:
        if sm.enabled:
            sm.done.set(done_count)
            sm.event(
                "resumed", label=label, points=report.resumed, done=done_count
            )
        if reporter is not None:
            reporter.replay(done_count, report.resumed)
        elif progress is not None:
            progress(done_count, total)

    def on_done(index: int, result: SimResult) -> None:
        nonlocal done_count, executed
        results[index] = result
        if journal is not None:
            journal.record(digests[index], specs[index].label(), result)
            if sm.enabled:
                sm.journal_records.inc()
        done_count += 1
        executed += 1
        if sm.enabled:
            sm.done.set(done_count)
            sm.points_total.labels("ok").inc()
            elapsed = time.perf_counter() - started
            if elapsed > 0:
                rate = executed / elapsed
                sm.throughput.set(rate)
                sm.eta.set((total - done_count) / rate if rate > 0 else 0.0)
        if progress is not None:
            progress(done_count, total)

    if remaining:
        if jobs == 1 or len(remaining) <= 1:
            _run_serial(
                specs, remaining, digests, report, policy, faults, on_done, sm
            )
        else:
            _run_parallel(
                specs, remaining, digests, jobs, report, policy, faults, on_done, sm
            )

    for failure in report.failures:
        if journal is not None:
            journal.record_failure(
                failure.digest, failure.label, failure.to_dict()
            )
        if sm.enabled:
            sm.points_total.labels("failed").inc()
            sm.event(
                "point_failure",
                index=failure.index,
                label=failure.label,
                exc_type=failure.exc_type,
                attempts=failure.attempts,
            )
        print(
            f"[runner] {label}: point #{failure.index} ({failure.label}) "
            f"FAILED after {failure.attempts} attempts: {failure.exc_type}",
            file=sys.stderr,
        )

    report.wall_s = time.perf_counter() - started
    if sm.enabled:
        sm.eta.set(0.0)
        report.metrics = sm.registry.snapshot()
    _last_report = report
    return results, report


# ----------------------------------------------------------------------
# Serial execution (and the shared attempt/backoff loop)
# ----------------------------------------------------------------------


def _attempt_in_process(
    spec: PointSpec, index: int, attempt: int, faults: Optional[FaultPlan]
) -> SimResult:
    """One in-process attempt, honouring an armed fault.

    ``hang`` degrades to ``crash`` in-process: sleeping would block the
    whole sweep, and the point of the serial path is that the parent
    itself executes the point — there is no one left to kill it.
    """
    fault = faults.fault_for(index, attempt) if faults else None
    if fault in (FAULT_CRASH, FAULT_HANG):
        raise InjectedFault(f"injected {fault} at point {index} attempt {attempt}")
    result = _run_point(spec)
    if fault == FAULT_CORRUPT:
        result = _CORRUPT_SENTINEL  # type: ignore[assignment]
    if not isinstance(result, SimResult):
        raise InjectedFault(
            f"point {index} returned a corrupt result: {type(result).__name__}"
        )
    return result


def _run_serial(
    specs: List[PointSpec],
    indices: Sequence[int],
    digests: List[str],
    report: RunnerReport,
    policy: RunnerPolicy,
    faults: Optional[FaultPlan],
    on_done: Callable[[int, SimResult], None],
    sm: SweepMetrics,
) -> None:
    from repro.sim import trace_cache

    hits0, misses0 = trace_cache.cache_stats()
    array0 = trace_cache.array_stats()
    outcome0 = trace_cache.outcome_stats()
    store0 = trace_cache.store_stats()
    for index in indices:
        spec = specs[index]
        last_exc = ("", "")
        attempt = 0
        while attempt < policy.max_attempts:
            attempt += 1
            t0 = time.perf_counter()
            try:
                result = _attempt_in_process(spec, index, attempt, faults)
            except ConfigError:
                # A misconfigured spec is a programming error, not a
                # transient fault — no retry will change the outcome.
                raise
            except Exception:
                last_exc = (sys.exc_info()[0].__name__, _traceback_tail())
                sm.attempt_outcome(last_exc[0])
                if attempt < policy.max_attempts:
                    report.retries += 1
                    sm.retries.inc()
                    time.sleep(policy.backoff_s * (2 ** (attempt - 1)))
                continue
            wall = time.perf_counter() - t0
            report.point_wall_s.record(wall)
            if sm.enabled:
                sm.attempts.labels("ok").inc()
                sm.point_wall.observe(wall)
                sm.event(
                    "point",
                    index=index,
                    label=spec.label(),
                    wall_s=wall,
                    worker=-1,
                    attempts=attempt,
                )
            on_done(index, result)
            break
        else:
            report.failures.append(
                PointFailure(
                    index=index,
                    digest=digests[index],
                    label=spec.label(),
                    attempts=attempt,
                    exc_type=last_exc[0],
                    traceback_tail=last_exc[1],
                )
            )
    hits1, misses1 = trace_cache.cache_stats()
    report.trace_cache = (hits1 - hits0, misses1 - misses0)
    array1 = trace_cache.array_stats()
    outcome1 = trace_cache.outcome_stats()
    report.trace_arrays = (array1[0] - array0[0], array1[1] - array0[1])
    report.trace_outcomes = (outcome1[0] - outcome0[0], outcome1[1] - outcome0[1])
    store1 = trace_cache.store_stats()
    report.outcome_store = {
        key: store1[key] - store0.get(key, 0) for key in store1
    }
    if sm.enabled:
        sm.array_hits.inc(report.trace_arrays[0])
        sm.array_misses.inc(report.trace_arrays[1])
        sm.outcome_hits.inc(report.trace_outcomes[0])
        sm.outcome_misses.inc(report.trace_outcomes[1])
        store = report.outcome_store
        sm.store_hits.labels("trace").inc(store.get("trace_hits", 0))
        sm.store_hits.labels("outcomes").inc(store.get("outcome_hits", 0))
        sm.store_misses.labels("trace").inc(store.get("trace_misses", 0))
        sm.store_misses.labels("outcomes").inc(store.get("outcome_misses", 0))
        sm.store_bytes.labels("read").inc(store.get("bytes_read", 0))
        sm.store_bytes.labels("written").inc(store.get("bytes_written", 0))


# ----------------------------------------------------------------------
# Parallel execution: a worker pool the sweep can outlive
# ----------------------------------------------------------------------
#
# concurrent.futures.ProcessPoolExecutor treats one dead worker as fatal
# (BrokenProcessPool poisons every outstanding future) and cannot kill a
# hung task at all. The pool below keeps the same submission model —
# picklable spec in, picklable result out over a pipe — but supervises
# each worker individually: a worker past its deadline is killed and
# replaced, a worker that dies mid-point costs one attempt of that point
# only, and the rest of the sweep never notices.


def _worker_main(conn) -> None:
    """Child-process loop: recv (index, spec, fault), send the outcome."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        index, spec, fault = message
        if fault == FAULT_CRASH:
            os._exit(CRASH_EXIT_CODE)
        if fault == FAULT_HANG:
            while True:  # rescued only by the parent's timeout kill
                time.sleep(3600)
        try:
            result = _run_point(spec)
            payload = (
                "ok",
                index,
                _CORRUPT_SENTINEL if fault == FAULT_CORRUPT else result,
            )
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            payload = ("err", index, type(exc).__name__, _traceback_tail())
        try:
            conn.send(payload)
        except Exception:
            # Unpicklable result: die loudly; the parent records the
            # attempt as a worker death and retries.
            os._exit(1)


class _Worker:
    """One supervised worker process with its command/result pipe."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        #: (index, attempt) of the in-flight point, None when idle.
        self.running: Optional[Tuple[int, int]] = None
        self.deadline: Optional[float] = None
        #: ``time.monotonic()`` at submit, for per-point wall accounting.
        self.started: Optional[float] = None

    def submit(
        self,
        index: int,
        attempt: int,
        spec: PointSpec,
        fault: Optional[str],
        timeout_s: Optional[float],
    ) -> None:
        self.running = (index, attempt)
        self.started = time.monotonic()
        self.deadline = (
            self.started + timeout_s if timeout_s is not None else None
        )
        self.conn.send((index, spec, fault))

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=5)
        self.conn.close()

    def shutdown(self) -> None:
        """Polite stop for an idle worker (fall back to kill)."""
        try:
            self.conn.send(None)
        except Exception:
            pass
        self.process.join(timeout=1)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)
        self.conn.close()


def _run_parallel(
    specs: List[PointSpec],
    indices: Sequence[int],
    digests: List[str],
    jobs: int,
    report: RunnerReport,
    policy: RunnerPolicy,
    faults: Optional[FaultPlan],
    on_done: Callable[[int, SimResult], None],
    sm: SweepMetrics,
) -> None:
    from multiprocessing import connection as mpc

    ctx = multiprocessing.get_context()
    n_workers = min(jobs, len(indices))
    # Ready-to-run (index, attempt) pairs; retries wait in a time heap so
    # backoff never stalls unrelated points.
    ready = deque((index, 1) for index in indices)
    retry_heap: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
    exhausted: Dict[int, Tuple[int, str, str]] = {}  # index -> (attempts, exc, tb)
    workers = [_Worker(ctx) for _ in range(n_workers)]
    sm.workers.labels("spawn").inc(n_workers)

    def replace_worker(worker: _Worker) -> None:
        worker.kill()
        workers[workers.index(worker)] = _Worker(ctx)
        sm.workers.labels("kill").inc()
        sm.workers.labels("respawn").inc()

    def record_attempt_failure(
        index: int, attempt: int, exc_type: str, tb_tail: str
    ) -> None:
        sm.attempt_outcome(exc_type)
        if attempt < policy.max_attempts:
            report.retries += 1
            sm.retries.inc()
            ready_at = time.monotonic() + policy.backoff_s * (2 ** (attempt - 1))
            heapq.heappush(retry_heap, (ready_at, index, attempt + 1))
        else:
            exhausted[index] = (attempt, exc_type, tb_tail)

    def handle_message(worker: _Worker) -> None:
        index, attempt = worker.running  # type: ignore[misc]
        started = worker.started
        worker.running = None
        worker.deadline = None
        worker.started = None
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # Worker died mid-point (hard exit, segfault, unpicklable
            # result). Replace it; charge the point one attempt.
            replace_worker(worker)
            record_attempt_failure(
                index, attempt, "WorkerDied", "worker process exited mid-point"
            )
            return
        status = message[0]
        if status == "ok":
            result = message[2]
            if isinstance(result, SimResult):
                wall = (
                    time.monotonic() - started if started is not None else 0.0
                )
                report.point_wall_s.record(wall)
                if sm.enabled:
                    sm.attempts.labels("ok").inc()
                    sm.point_wall.observe(wall)
                    sm.event(
                        "point",
                        index=index,
                        label=specs[index].label(),
                        wall_s=wall,
                        worker=workers.index(worker),
                        attempts=attempt,
                    )
                on_done(index, result)
            else:
                record_attempt_failure(
                    index,
                    attempt,
                    "CorruptResult",
                    f"worker returned {type(result).__name__}",
                )
        else:
            record_attempt_failure(index, attempt, message[2], message[3])

    try:
        while ready or retry_heap or any(w.running is not None for w in workers):
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index, attempt = heapq.heappop(retry_heap)
                ready.append((index, attempt))
            for slot, worker in enumerate(workers):
                if worker.running is None and ready:
                    index, attempt = ready.popleft()
                    fault = faults.fault_for(index, attempt) if faults else None
                    try:
                        worker.submit(
                            index, attempt, specs[index], fault, policy.point_timeout_s
                        )
                    except OSError:
                        # The worker died between points; replace it and
                        # charge the submission as one failed attempt.
                        replace_worker(worker)
                        record_attempt_failure(
                            index, attempt, "WorkerDied", "pipe closed on submit"
                        )
            busy = [w for w in workers if w.running is not None]
            if sm.enabled:
                sm.in_flight.set(len(busy))
                sm.queue_depth.set(len(ready) + len(retry_heap))
            if not busy:
                if retry_heap:
                    time.sleep(
                        min(0.05, max(0.0, retry_heap[0][0] - time.monotonic()))
                    )
                continue
            # Wake on the first result, the nearest deadline, or the next
            # retry becoming ready — whichever comes first.
            wake_at: Optional[float] = None
            for w in busy:
                if w.deadline is not None:
                    wake_at = w.deadline if wake_at is None else min(wake_at, w.deadline)
            if retry_heap:
                head = retry_heap[0][0]
                wake_at = head if wake_at is None else min(wake_at, head)
            timeout = (
                max(0.0, wake_at - time.monotonic()) if wake_at is not None else None
            )
            ready_conns = mpc.wait([w.conn for w in busy], timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready_conns:
                handle_message(by_conn[conn])
            now = time.monotonic()
            for worker in busy:
                if (
                    worker.running is not None
                    and worker.conn not in ready_conns
                    and worker.deadline is not None
                    and now >= worker.deadline
                ):
                    index, attempt = worker.running
                    report.timeouts += 1
                    sm.timeouts.inc()
                    replace_worker(worker)
                    record_attempt_failure(
                        index,
                        attempt,
                        "PointTimeout",
                        f"exceeded {policy.point_timeout_s}s wall-clock budget",
                    )
    finally:
        for worker in workers:
            if worker.running is None:
                worker.shutdown()
            else:
                worker.kill()
        if sm.enabled:
            sm.in_flight.set(0)
            sm.queue_depth.set(0)

    # Graceful degradation: one last serial in-process attempt per
    # exhausted point before recording a failure.
    for index, (attempts, exc_type, tb_tail) in sorted(exhausted.items()):
        spec = specs[index]
        if policy.serial_fallback:
            attempts += 1
            t0 = time.perf_counter()
            try:
                result = _attempt_in_process(spec, index, attempts, faults)
            except Exception:
                exc_type, tb_tail = sys.exc_info()[0].__name__, _traceback_tail()
                sm.attempt_outcome(exc_type)
            else:
                report.serial_fallbacks += 1
                wall = time.perf_counter() - t0
                report.point_wall_s.record(wall)
                if sm.enabled:
                    sm.attempts.labels("ok").inc()
                    sm.point_wall.observe(wall)
                    sm.event(
                        "point",
                        index=index,
                        label=spec.label(),
                        wall_s=wall,
                        worker=-1,
                        attempts=attempts,
                    )
                on_done(index, result)
                continue
        report.failures.append(
            PointFailure(
                index=index,
                digest=digests[index],
                label=spec.label(),
                attempts=attempts,
                exc_type=exc_type,
                traceback_tail=tb_tail,
            )
        )
