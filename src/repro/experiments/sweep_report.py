"""``repro sweep-report``: post-hoc fleet health from a metrics stream.

A sweep run with ``--live`` (or any :class:`~repro.obs.metrics.MetricsStream`
attached to its registry) leaves a JSONL event file next to the journal:
one ``point`` record per executed point (wall time, worker slot, attempt
count), one ``point_failure`` per exhausted point, one ``resumed`` record
per resume replay, and periodic ``snapshot``/``final`` registry dumps.
This module folds that stream back into the operator-facing questions —
*what failed and why, how hard did the retry machinery work, were the
workers balanced, which points dominated the wall clock* — without
re-running anything.

The accounting here is the same the runner keeps live: the drill test
(`tests/experiments/test_runner_metrics.py`) injects a deterministic
``REPRO_FAULT`` plan and asserts the rendered report reproduces the
:class:`~repro.experiments.runner.RunnerReport` failure/retry numbers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import load_stream, snapshot_value


def render_sweep_report(
    records: Sequence[Dict[str, object]],
    top: int = 5,
    journal_path: Optional[str] = None,
) -> str:
    """Markdown fleet-health report over loaded metrics-stream records."""
    points = [r for r in records if r.get("kind") == "point"]
    failures = [r for r in records if r.get("kind") == "point_failure"]
    resumes = [r for r in records if r.get("kind") == "resumed"]
    snapshots = [r for r in records if r.get("kind") in ("snapshot", "final")]

    lines: List[str] = ["# Sweep fleet report", ""]

    # -- header: where the sweep ended up -----------------------------
    resumed = sum(int(r.get("points", 0)) for r in resumes)
    executed = len(points)
    final = snapshots[-1].get("metrics") if snapshots else None
    if isinstance(final, dict):
        total = int(snapshot_value(final, "repro_sweep_points"))
        done = int(snapshot_value(final, "repro_sweep_done"))
        retries = int(snapshot_value(final, "repro_sweep_retries_total"))
        timeouts = int(snapshot_value(final, "repro_sweep_timeouts_total"))
    else:
        total = resumed + executed + len(failures)
        done = resumed + executed
        retries = sum(max(0, int(r.get("attempts", 1)) - 1) for r in points)
        retries += sum(max(0, int(r.get("attempts", 1)) - 1) for r in failures)
        timeouts = 0
    lines.append(
        f"- points: {done}/{total} done "
        f"({executed} executed, {resumed} resumed, {len(failures)} failed)"
    )
    lines.append(f"- retries: {retries}, timeouts: {timeouts}")
    walls = [float(r.get("wall_s", 0.0)) for r in points]
    if walls:
        lines.append(
            f"- point wall: total {sum(walls):.2f}s, "
            f"mean {sum(walls) / len(walls):.3f}s, max {max(walls):.3f}s"
        )
    if journal_path is not None:
        from repro.experiments.journal import SweepJournal

        journal = SweepJournal(journal_path)
        lines.append(
            f"- journal {journal_path}: {len(journal)} results, "
            f"{len(journal.failures)} failure records, "
            f"{journal.torn_tails} torn tails dropped"
        )

    # -- failure breakdown by exception type --------------------------
    lines += ["", "## Failures by exception type", ""]
    if failures:
        by_exc = Counter(str(r.get("exc_type", "?")) for r in failures)
        for exc_type, count in by_exc.most_common():
            examples = [
                str(r.get("label", "?"))
                for r in failures
                if str(r.get("exc_type", "?")) == exc_type
            ]
            shown = ", ".join(examples[:3]) + (", ..." if len(examples) > 3 else "")
            lines.append(f"- {exc_type}: {count} ({shown})")
    else:
        lines.append("- none")

    # -- retry histogram: attempts needed per finished point -----------
    lines += ["", "## Attempts per point", ""]
    attempts = Counter(int(r.get("attempts", 1)) for r in points)
    attempts.update(int(r.get("attempts", 1)) for r in failures)
    if attempts:
        width = max(attempts.values())
        for n in sorted(attempts):
            count = attempts[n]
            bar = "#" * max(1, round(40 * count / width))
            lines.append(f"- {n} attempt(s): {count:4d} {bar}")
    else:
        lines.append("- no executed points recorded")

    # -- per-worker utilization ----------------------------------------
    lines += ["", "## Worker utilization", ""]
    busy: Dict[int, float] = defaultdict(float)
    count_by_worker: Dict[int, int] = defaultdict(int)
    for r in points:
        worker = int(r.get("worker", -1))
        busy[worker] += float(r.get("wall_s", 0.0))
        count_by_worker[worker] += 1
    if busy:
        grand = sum(busy.values()) or 1.0
        for worker in sorted(busy):
            name = "in-process" if worker < 0 else f"worker {worker}"
            share = 100.0 * busy[worker] / grand
            lines.append(
                f"- {name}: {count_by_worker[worker]} points, "
                f"{busy[worker]:.2f}s busy ({share:.1f}% of fleet busy time)"
            )
    else:
        lines.append("- no executed points recorded")

    # -- slowest points -------------------------------------------------
    lines += ["", f"## Slowest {top} points", ""]
    slowest = sorted(points, key=lambda r: float(r.get("wall_s", 0.0)), reverse=True)
    if slowest:
        for r in slowest[:top]:
            lines.append(
                f"- {r.get('label', '?')}: {float(r.get('wall_s', 0.0)):.3f}s "
                f"(worker {r.get('worker', '?')}, {r.get('attempts', 1)} attempt(s))"
            )
    else:
        lines.append("- no executed points recorded")

    return "\n".join(lines) + "\n"


def render_sweep_report_file(
    metrics_path: str, top: int = 5, journal_path: Optional[str] = None
) -> str:
    """Load a metrics JSONL stream from disk and render the report."""
    return render_sweep_report(
        load_stream(metrics_path), top=top, journal_path=journal_path
    )
