"""Table 1: recoverability of a durable transaction per crash stage.

The paper's Table 1 analyses a durable transaction on an encrypted NVM
*without* counter-atomicity (counters live in a volatile write-back
counter cache): a crash in the prepare stage is recoverable, but crashes
in the mutate and commit stages are not, because the log's (or data's)
counters may not have been persisted.

This experiment runs that scenario for real: one transaction updating a
256 B object, a crash injected at the end of each stage, then log-scan
recovery over the durable image. Three systems are compared:

* **Unprotected** — encrypted NVM, write-back counter cache, no battery
  (the paper's motivating baseline);
* **SuperMem** — write-through counter cache with the atomicity register;
* **SuperMem (no register)** — the Figure 6 broken write-through variant,
  crashed inside the counter/data append gap, demonstrating why the
  register is needed.

Recoverable means: after recovery, every data line reads either the
complete old value or the complete new value.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from repro.common.config import (
    CounterCacheConfig,
    CounterCacheMode,
    MemoryConfig,
    SimConfig,
)
from repro.common.errors import CrashInjected
from repro.core.crash import CrashController
from repro.core.recovery import RecoveredSystem
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.experiments.report import render_table
from repro.txn.log import LogRegion
from repro.txn.persist import DirectDomain
from repro.txn.transaction import TransactionManager, recover_data_view

STAGES = ("prepare", "mutate", "commit")
OBJECT_SIZE = 256
DATA_BASE = 4 * 4096
OLD = bytes([0xAA]) * OBJECT_SIZE
NEW = bytes([0xBB]) * OBJECT_SIZE


@dataclass
class Table1Row:
    system: str
    stage: str
    recoverable: bool
    recovered_value: str  # "old" / "new" / "garbage"


def _build(system_kind: str):
    """Build (manager, system) for one of the three compared systems."""
    mem = MemoryConfig(capacity=8 << 20)
    if system_kind == "unprotected":
        cfg = SimConfig(
            memory=mem,
            counter_cache=CounterCacheConfig(
                size=256 << 10,
                assoc=8,
                latency_cycles=8,
                mode=CounterCacheMode.WRITE_BACK,
                battery_backed=False,
            ),
        )
    elif system_kind == "supermem":
        cfg = scheme_config(Scheme.SUPERMEM, SimConfig(memory=mem))
    elif system_kind == "supermem-no-register":
        cfg = dataclasses.replace(
            scheme_config(Scheme.SUPERMEM, SimConfig(memory=mem)),
            atomicity_register=False,
        )
    else:
        raise ValueError(system_kind)
    # Table 1 inspects recovered byte images, so it always needs the
    # functional crypto path regardless of any sweep-level fidelity mode.
    cfg = dataclasses.replace(cfg, fidelity="full", functional=True)
    crash = CrashController()
    system = SecureMemorySystem(cfg, crash=crash)
    domain = DirectDomain(system)
    manager = TransactionManager(domain, LogRegion(0, 64 * 64), crash=crash)
    return manager, domain, system


def _crash_one(system_kind: str, stage: str) -> Table1Row:
    manager, domain, system = _build(system_kind)
    # Seed the old value (committed state) and checkpoint its counters:
    # the transaction starts from a quiescent durable state, as in the
    # paper's Table 1 (pre-transaction data and counters are correct).
    domain.store(DATA_BASE, OBJECT_SIZE, OLD)
    domain.clwb(DATA_BASE, OBJECT_SIZE)
    domain.sfence()
    system.checkpoint_counters()

    manager.crash_ctl.arm(f"txn-after-{stage}")
    try:
        manager.run([(DATA_BASE, OBJECT_SIZE, NEW)])
        crashed = False
    except CrashInjected:
        crashed = True
    image = system.crash()

    recovered = RecoveredSystem(image)
    data_lines = list(range(DATA_BASE // 64, (DATA_BASE + OBJECT_SIZE) // 64))
    report = recover_data_view(recovered, manager.log, data_lines)
    value = b"".join(report.view[line] for line in data_lines)
    if value == OLD:
        verdict = "old"
    elif value == NEW:
        verdict = "new"
    else:
        verdict = "garbage"
    recoverable = verdict in ("old", "new") and crashed
    return Table1Row(
        system=system_kind, stage=stage, recoverable=recoverable, recovered_value=verdict
    )


def _crash_raw_overwrite(system_kind: str) -> Table1Row:
    """Figure 6's scenario: a *raw* (non-transactional) overwrite crashed
    in the counter/data append gap. No undo log protects the line, so the
    atomicity register is the only defence.
    """
    manager, domain, system = _build(system_kind)
    domain.store(DATA_BASE, OBJECT_SIZE, OLD)
    domain.clwb(DATA_BASE, OBJECT_SIZE)
    domain.sfence()
    system.checkpoint_counters()
    point = (
        "wt-no-register-gap"
        if system_kind == "supermem-no-register"
        else "after-pair-append"
    )
    system.crash_ctl.arm(point, occurrence=1)
    crashed = False
    try:
        domain.store(DATA_BASE, OBJECT_SIZE, NEW)
        domain.clwb(DATA_BASE, OBJECT_SIZE)
    except CrashInjected:
        crashed = True
    image = system.crash()
    recovered = RecoveredSystem(image)
    lines = list(range(DATA_BASE // 64, (DATA_BASE + OBJECT_SIZE) // 64))
    # Per-line consistency: every line must hold old or new content.
    old_lines = {OLD[:64]}
    new_lines = {NEW[:64]}
    per_line_ok = all(
        recovered.plaintext_of(line) in (old_lines | new_lines) for line in lines
    )
    value = b"".join(recovered.plaintext_of(line) for line in lines)
    verdict = "old" if value == OLD else "new" if value == NEW else (
        "torn-but-decryptable" if per_line_ok else "garbage"
    )
    return Table1Row(
        system=system_kind,
        stage="raw overwrite",
        recoverable=per_line_ok and crashed,
        recovered_value=verdict,
    )


def run() -> List[Table1Row]:
    """All (system, stage) crash combinations."""
    rows: List[Table1Row] = []
    for system_kind in ("unprotected", "supermem"):
        for stage in STAGES:
            rows.append(_crash_one(system_kind, stage))
    # The register's value shows on unlogged writes (Figure 6).
    rows.append(_crash_raw_overwrite("supermem"))
    rows.append(_crash_raw_overwrite("supermem-no-register"))
    return rows


def render(rows: List[Table1Row]) -> str:
    labels = {
        "unprotected": "Encrypted NVM, volatile WB counter cache (paper Table 1)",
        "supermem": "SuperMem (write-through + atomicity register)",
        "supermem-no-register": "Write-through WITHOUT the register (Fig. 6)",
    }
    table_rows = [
        [
            labels[r.system],
            r.stage,
            "Yes" if r.recoverable else "No",
            r.recovered_value,
        ]
        for r in rows
    ]
    return render_table(
        "Table 1: crash recoverability by transaction stage",
        ["system", "crash stage", "recoverable", "recovered value"],
        table_rows,
        note=(
            "Paper: unprotected = Yes/No/No across prepare/mutate/commit; "
            "SuperMem = Yes at every stage."
        ),
    )
