"""Design-space auto-tuner: an ArchGym-style search loop over SimConfig.

The simulator is fast (hot path + batched replay), parallel and resumable
(supervised runner pool + content-digest journal), and carries a validated
closed-form surrogate. This module turns that substrate into a *search*
subsystem: a gym-like explore loop that optimizes a fitness over a typed
space of :class:`~repro.common.config.SimConfig` knobs, per workload mix.

Shape of one run (``repro tune``):

* **Search space** — :data:`SEARCH_SPACE` names six hardware knobs
  (counter-cache size, write-queue depth, drain hysteresis, bank count,
  channel count, bank layout), each a :class:`Knob` that knows its
  discrete choices, how to *apply* a value onto a ``SimConfig``, and how
  to *read* the baseline value back out of one. The full grid is ~3.8 k
  points; the tuner samples it under a step budget.
* **Baseline first** — step 0 always evaluates the default experiment
  configuration (:func:`~repro.experiments.common.experiment_base_config`,
  i.e. the exact config every point of the default fig13 grid runs), so
  the best-found fitness can never be worse than the stock geometry and
  the improvement ratio is always well-defined.
* **Strategies** — :class:`RandomStrategy`, :class:`HillClimbStrategy`
  and :class:`EvolutionaryStrategy` implement the tiny :class:`Strategy`
  protocol (``propose(rng, history)``). All randomness flows through one
  seeded ``random.Random``, so a (seed, strategy, budget, mix) tuple
  fully determines the trajectory.
* **Evaluation** — each candidate becomes one
  :class:`~repro.experiments.runner.PointSpec` per workload in the mix
  and runs through :func:`~repro.experiments.runner.run_points_report`
  with the shared journal, inheriting the pool's timeouts, retries,
  ``--jobs`` fan-out and crash-exact resume: a tuner killed mid-search
  and re-run with the same journal replays finished evaluations from
  disk (``executed_points == 0`` for the replayed prefix) and lands on a
  bit-identical trajectory digest.
* **Surrogate screening** — with ``--surrogate-first`` an online linear
  model over *knob* features (:class:`SurrogateScreen`), optionally
  anchored on the PR-7 trace surrogate's run-time prediction, prunes
  candidates predicted worse than ``best * margin`` before paying for
  simulation. Measured-vs-anchor residuals are logged per accepted point
  (``repro_tune_surrogate_residual_ratio``). The PR-7 model's features
  are trace-static — config-independent by construction — so it supplies
  the *level*; the online model supplies the knob *deltas* (see
  ``docs/TUNING.md`` for the caveats).
* **Trajectory** — every step appends one JSONL record to the trajectory
  file (kind ``tune_step``; header ``tune_header``; final summary
  ``tune_result``), and :func:`trajectory_digest` hashes the
  (step, candidate, fitness, pruned) projection — wall-clock and resume
  counts are excluded, so interrupted-then-resumed runs digest
  identically to uninterrupted ones. ``repro tune-report`` renders best
  point, fitness-vs-budget curve and times-to-completion from this file
  alone.

Observability: :class:`TunerMetrics` publishes the ``repro_tune_*``
families (docs-drift guarded against ``docs/OBSERVABILITY.md``), and
steps emit ``CAT_TUNER`` events (``tune_step`` / ``tune_prune`` /
``tune_improve`` / ``tune_result``) through the registry's event stream
and :meth:`TuneResult.trace_events`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.config import SimConfig
from repro.common.errors import ConfigError, SweepError
from repro.core.schemes import Scheme
from repro.experiments.common import Scale, experiment_base_config, get_scale
from repro.experiments.journal import SweepJournal
from repro.experiments.runner import PointSpec, run_points_report
from repro.obs.events import (
    CAT_TUNER,
    TRACK_TUNER,
    TUNER_EV_IMPROVE,
    TUNER_EV_PRUNE,
    TUNER_EV_RESULT,
    TUNER_EV_STEP,
    TraceEvent,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.sim.metrics import SimResult
from repro.sim.surrogate import _fit_ols

CACHE_LINE = 64

#: Step-budget presets (candidate evaluations, baseline included).
TUNE_BUDGETS = {"small": 8, "medium": 24, "large": 64}

#: Fitness vocabulary (all minimized). ``run_time_ns`` sums simulated
#: run time over the mix; ``bytes_per_persist`` is NVM write traffic per
#: application byte persisted (surviving writes x 64 B / data writes);
#: ``weighted`` blends both, each normalized to the step-0 baseline.
FITNESS_NAMES = ("run_time_ns", "bytes_per_persist", "weighted")

#: Strategy vocabulary accepted by :func:`make_strategy` / ``--strategy``.
STRATEGY_NAMES = ("random", "hillclimb", "evolutionary")


# ----------------------------------------------------------------------
# Search space
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One tunable dimension of the config search space.

    ``apply`` grafts a choice onto a ``SimConfig`` (returning a new
    frozen config); ``read`` recovers the knob's value from a config so
    the baseline candidate can be expressed in knob coordinates.
    ``field`` names the underlying ``SimConfig`` path(s) for the docs
    table (drift-guarded by ``tests/test_docs_drift.py``).
    """

    name: str
    field: str
    choices: Tuple[object, ...]
    apply: Callable[[SimConfig, object], SimConfig]
    read: Callable[[SimConfig], object]


def _replace_memory(config: SimConfig, **kwargs) -> SimConfig:
    return dataclasses.replace(
        config, memory=dataclasses.replace(config.memory, **kwargs)
    )


def _apply_counter_cache(config: SimConfig, kb: object) -> SimConfig:
    size = int(kb) << 10
    # Same associativity rule the fig17 sweep uses (experiment_base_config).
    assoc = min(8, max(1, size // CACHE_LINE))
    return dataclasses.replace(
        config,
        counter_cache=dataclasses.replace(
            config.counter_cache, size=size, assoc=assoc
        ),
    )


def _apply_wq(config: SimConfig, entries: object) -> SimConfig:
    # Reset watermarks to the depth-derived defaults; the hysteresis knob
    # (applied after this one — SEARCH_SPACE order matters) re-derives
    # them against the new depth.
    return _replace_memory(
        config,
        write_queue_entries=int(entries),
        wq_high_watermark=None,
        wq_low_watermark=None,
    )


#: Named drain-hysteresis presets as (high, low) fractions of WQ depth.
#: ``default`` keeps the controller's own derivation (3d/4, d/4).
HYSTERESIS_PRESETS = {
    "default": None,
    "eager": (0.5, 0.125),
    "deep": (0.875, 0.125),
    "narrow": (0.75, 0.625),
}


def _apply_hysteresis(config: SimConfig, name: object) -> SimConfig:
    fracs = HYSTERESIS_PRESETS[str(name)]
    if fracs is None:
        return _replace_memory(
            config, wq_high_watermark=None, wq_low_watermark=None
        )
    depth = config.memory.write_queue_entries
    high = max(1, int(depth * fracs[0]))
    low = max(0, int(depth * fracs[1]))
    if low >= high:  # tiny queues: keep the controller's invariant
        low = high - 1
    return _replace_memory(config, wq_high_watermark=high, wq_low_watermark=low)


def _read_hysteresis(config: SimConfig) -> str:
    if config.memory.wq_high_watermark is None:
        return "default"
    depth = config.memory.write_queue_entries
    for name, fracs in HYSTERESIS_PRESETS.items():
        if fracs is None:
            continue
        if (
            config.memory.wq_high_watermark == max(1, int(depth * fracs[0]))
            and config.memory.wq_low_watermark
            in (max(0, int(depth * fracs[1])), max(1, int(depth * fracs[0])) - 1)
        ):
            return name
    return "default"


#: The typed search space, in application order (WQ depth before
#: hysteresis: the watermark presets are fractions of the final depth).
#: Full grid: 7 x 5 x 4 x 3 x 3 x 3 = 3780 candidate configurations.
SEARCH_SPACE: Tuple[Knob, ...] = (
    Knob(
        name="counter_cache_kb",
        field="counter_cache.size (+ assoc)",
        choices=(1, 2, 4, 8, 16, 64, 256),
        apply=_apply_counter_cache,
        read=lambda config: config.counter_cache.size >> 10,
    ),
    Knob(
        name="wq_entries",
        field="memory.write_queue_entries",
        choices=(8, 16, 32, 64, 128),
        apply=_apply_wq,
        read=lambda config: config.memory.write_queue_entries,
    ),
    Knob(
        name="drain_hysteresis",
        field="memory.wq_high_watermark / wq_low_watermark",
        choices=tuple(HYSTERESIS_PRESETS),
        apply=_apply_hysteresis,
        read=_read_hysteresis,
    ),
    Knob(
        name="n_banks",
        field="memory.n_banks",
        choices=(4, 8, 16),
        apply=lambda config, v: _replace_memory(config, n_banks=int(v)),
        read=lambda config: config.memory.n_banks,
    ),
    Knob(
        name="n_channels",
        field="memory.n_channels",
        choices=(1, 2, 4),
        apply=lambda config, v: _replace_memory(config, n_channels=int(v)),
        read=lambda config: config.memory.n_channels,
    ),
    Knob(
        name="layout",
        field="memory.bank_mapping",
        choices=("page", "line", "contiguous"),
        apply=lambda config, v: _replace_memory(config, bank_mapping=str(v)),
        read=lambda config: config.memory.bank_mapping,
    ),
)

KNOBS = {knob.name: knob for knob in SEARCH_SPACE}

Candidate = Dict[str, object]


def candidate_key(candidate: Candidate) -> Tuple[Tuple[str, object], ...]:
    """Hashable canonical form (for dedup sets and digests)."""
    return tuple(sorted(candidate.items()))


def baseline_candidate(base: SimConfig) -> Candidate:
    """The base config expressed in knob coordinates."""
    return {knob.name: knob.read(base) for knob in SEARCH_SPACE}


def candidate_config(base: SimConfig, candidate: Candidate) -> SimConfig:
    """Apply a candidate onto ``base``; raises ``ConfigError`` if the
    combination violates a config invariant (e.g. banks % channels)."""
    config = base
    for knob in SEARCH_SPACE:  # application order matters (wq -> hysteresis)
        config = knob.apply(config, candidate[knob.name])
    return config


def candidate_valid(base: SimConfig, candidate: Candidate) -> bool:
    try:
        candidate_config(base, candidate)
    except ConfigError:
        return False
    return True


def describe_candidate(candidate: Candidate, baseline: Candidate) -> str:
    """Compact human label: only the knobs that differ from baseline."""
    diff = [
        f"{name}={candidate[name]}"
        for name in (k.name for k in SEARCH_SPACE)
        if candidate[name] != baseline[name]
    ]
    return "{" + " ".join(diff) + "}" if diff else "{baseline}"


# ----------------------------------------------------------------------
# Fitness
# ----------------------------------------------------------------------


def measure_results(results: Sequence[SimResult]) -> Tuple[float, float]:
    """(summed run time ns, bytes written to NVM per persisted byte)."""
    run_time = float(sum(r.total_time_ns for r in results))
    surviving = sum(r.surviving_writes for r in results)
    data = sum(r.data_writes for r in results)
    bytes_per_persist = (
        surviving * CACHE_LINE / data if data else float(surviving * CACHE_LINE)
    )
    return run_time, bytes_per_persist


def fitness_value(
    fitness: str,
    run_time_ns: float,
    bytes_per_persist: float,
    baseline: Optional[Tuple[float, float]],
    weight: float,
) -> float:
    """One scalar to minimize. ``weighted`` normalizes each component to
    the step-0 baseline measurement so the two scales are commensurate."""
    if fitness == "run_time_ns":
        return run_time_ns
    if fitness == "bytes_per_persist":
        return bytes_per_persist
    if fitness == "weighted":
        if baseline is None:  # step 0: defined to be exactly 1.0
            return 1.0
        base_rt, base_bpp = baseline
        rt_norm = run_time_ns / base_rt if base_rt else 1.0
        bpp_norm = bytes_per_persist / base_bpp if base_bpp else 1.0
        return weight * rt_norm + (1.0 - weight) * bpp_norm
    raise ConfigError(
        f"unknown fitness {fitness!r}; expected one of {FITNESS_NAMES}"
    )


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


class Strategy:
    """The pluggable search-strategy protocol.

    ``propose`` sees the ordered list of *measured* steps so far (pruned
    steps excluded — they carry no fitness signal) and returns the next
    candidate. It must draw all randomness from ``rng`` so trajectories
    are a pure function of the seed.
    """

    name = "strategy"

    def propose(self, rng, history: Sequence["TuneStep"]) -> Candidate:
        raise NotImplementedError


def _best_step(history: Sequence["TuneStep"]) -> Optional["TuneStep"]:
    measured = [s for s in history if s.fitness is not None]
    if not measured:
        return None
    return min(measured, key=lambda s: (s.fitness, s.step))


class RandomStrategy(Strategy):
    """Uniform independent sampling of every knob."""

    name = "random"

    def propose(self, rng, history: Sequence["TuneStep"]) -> Candidate:
        return {knob.name: rng.choice(knob.choices) for knob in SEARCH_SPACE}


class HillClimbStrategy(Strategy):
    """Mutate one knob of the best point found so far."""

    name = "hillclimb"

    def propose(self, rng, history: Sequence["TuneStep"]) -> Candidate:
        best = _best_step(history)
        if best is None:
            return RandomStrategy().propose(rng, history)
        candidate = dict(best.candidate)
        knob = rng.choice(SEARCH_SPACE)
        alternatives = [c for c in knob.choices if c != candidate[knob.name]]
        candidate[knob.name] = rng.choice(alternatives or list(knob.choices))
        return candidate


class EvolutionaryStrategy(Strategy):
    """(mu + crossover + mutation) over an elite pool.

    Two parents drawn from the ``elite`` best measured points, uniform
    per-knob crossover, then independent per-knob mutation with
    probability ``mutate_p``. Degenerates to random sampling until two
    points have been measured.
    """

    name = "evolutionary"

    def __init__(self, elite: int = 4, mutate_p: float = 0.25):
        self.elite = elite
        self.mutate_p = mutate_p

    def propose(self, rng, history: Sequence["TuneStep"]) -> Candidate:
        measured = [s for s in history if s.fitness is not None]
        if len(measured) < 2:
            return RandomStrategy().propose(rng, history)
        pool = sorted(measured, key=lambda s: (s.fitness, s.step))[: self.elite]
        a = rng.choice(pool).candidate
        b = rng.choice(pool).candidate
        child: Candidate = {}
        for knob in SEARCH_SPACE:
            child[knob.name] = (a if rng.random() < 0.5 else b)[knob.name]
            if rng.random() < self.mutate_p:
                child[knob.name] = rng.choice(knob.choices)
        return child


def make_strategy(name: Union[str, Strategy]) -> Strategy:
    if isinstance(name, Strategy):
        return name
    try:
        return {
            "random": RandomStrategy,
            "hillclimb": HillClimbStrategy,
            "evolutionary": EvolutionaryStrategy,
        }[name]()
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
        ) from None


def _propose_candidate(
    strategy: Strategy,
    rng,
    history: Sequence["TuneStep"],
    base: SimConfig,
    seen: set,
    attempts: int = 32,
) -> Candidate:
    """Draw a valid, preferably-unseen candidate (bounded rejection).

    Re-proposing an already-evaluated point is not an error — the journal
    makes repeats nearly free — but fresh points explore more per step,
    so duplicates are rejected for ``attempts`` draws before giving up.
    """
    fallback: Optional[Candidate] = None
    for _ in range(attempts):
        candidate = strategy.propose(rng, history)
        if not candidate_valid(base, candidate):
            continue
        if candidate_key(candidate) in seen:
            fallback = candidate
            continue
        return candidate
    if fallback is None:
        raise ConfigError(
            f"strategy {strategy.name!r} proposed no valid candidate "
            f"in {attempts} draws"
        )
    return fallback


# ----------------------------------------------------------------------
# Surrogate screening
# ----------------------------------------------------------------------


class SurrogateScreen:
    """Online knob-feature fitness model used to prune candidates.

    The PR-7 surrogate predicts run time from *trace-static* features —
    deliberately config-independent — so it cannot rank two configs of
    the same workload by itself. The screen therefore splits the job:
    an optional ``anchor`` (the PR-7 model summed over the mix) carries
    the workload/scheme level, and a small ridge-stabilised linear model
    over knob features (fit with the same :func:`_fit_ols` the surrogate
    uses) learns the config deltas from the points measured so far.
    Predictions start after ``min_train`` measurements; a candidate is
    pruned when its predicted fitness exceeds ``best * margin``.
    """

    FEATURE_NAMES = (
        "intercept",
        "log2_counter_cache_kb",
        "log2_wq_entries",
        "log2_n_banks",
        "log2_n_channels",
        "wq_high_frac",
        "wq_low_frac",
        "layout_line",
        "layout_contiguous",
    )

    def __init__(
        self,
        anchor: Optional[Callable[[Candidate], float]] = None,
        margin: float = 1.25,
        min_train: int = 6,
    ):
        self.anchor = anchor
        self.margin = margin
        self.min_train = min_train
        self._rows: List[List[float]] = []
        self._targets: List[float] = []
        self._coef: Optional[List[float]] = None

    def features(self, candidate: Candidate) -> List[float]:
        import math

        fracs = HYSTERESIS_PRESETS[str(candidate["drain_hysteresis"])]
        high, low = fracs if fracs is not None else (0.75, 0.25)
        layout = candidate["layout"]
        return [
            1.0,
            math.log2(float(candidate["counter_cache_kb"])),
            math.log2(float(candidate["wq_entries"])),
            math.log2(float(candidate["n_banks"])),
            math.log2(float(candidate["n_channels"])),
            high,
            low,
            1.0 if layout == "line" else 0.0,
            1.0 if layout == "contiguous" else 0.0,
        ]

    def observe(self, candidate: Candidate, fitness: float) -> None:
        anchor = self.anchor(candidate) if self.anchor is not None else 0.0
        self._rows.append(self.features(candidate))
        self._targets.append(fitness - anchor)
        self._coef = None  # refit lazily on next predict

    def predict(self, candidate: Candidate) -> Optional[float]:
        if len(self._rows) < self.min_train:
            return None
        if self._coef is None:
            self._coef = _fit_ols(self._rows, self._targets)
        anchor = self.anchor(candidate) if self.anchor is not None else 0.0
        row = self.features(candidate)
        return anchor + sum(c * x for c, x in zip(self._coef, row))

    def should_prune(
        self, candidate: Candidate, best_fitness: Optional[float]
    ) -> Tuple[bool, Optional[float]]:
        predicted = self.predict(candidate)
        if predicted is None or best_fitness is None:
            return False, predicted
        return predicted > best_fitness * self.margin, predicted


def build_anchor(
    model, specs_for: Callable[[Candidate], List[PointSpec]], fitness: str
) -> Optional[Callable[[Candidate], float]]:
    """Anchor function from a loaded PR-7 :class:`SurrogateModel`.

    Only meaningful for the run-time fitness (that is what the model
    predicts). The model's features are trace-static, so the anchor is a
    constant per mix — it sets the level the online model corrects, and
    its measured-vs-predicted residuals quantify how far the search has
    wandered from the surrogate's training geometry.
    """
    if model is None or fitness != "run_time_ns":
        return None
    from repro.sim.surrogate import predict_spec

    def anchor(candidate: Candidate) -> float:
        return float(sum(predict_spec(model, s) for s in specs_for(candidate)))

    return anchor


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

#: The tuner's metric vocabulary. Docs-drift guarded: every name must
#: appear (in backticks) in ``docs/OBSERVABILITY.md``, and the tuple must
#: equal the families :class:`TunerMetrics` declares.
TUNER_METRIC_NAMES = (
    "repro_tune_steps_total",
    "repro_tune_best_fitness",
    "repro_tune_improvements_total",
    "repro_tune_step_wall_seconds",
    "repro_tune_surrogate_residual_ratio",
)

_STEP_WALL_BOUNDS = tuple(
    mag * mult for mag in (0.01, 0.1, 1.0, 10.0, 100.0) for mult in (1, 2, 5)
)


class TunerMetrics:
    """Typed handles on the ``repro_tune_*`` families."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.enabled = registry.enabled
        self.steps = registry.counter(
            "repro_tune_steps_total",
            "Search steps finished, by outcome.",
            labels=("outcome",),  # measured / pruned
        )
        self.best = registry.gauge(
            "repro_tune_best_fitness",
            "Best (lowest) fitness found so far.",
            merge="min",
        )
        self.improvements = registry.counter(
            "repro_tune_improvements_total",
            "Steps that improved on the best fitness so far.",
        )
        self.step_wall = registry.histogram(
            "repro_tune_step_wall_seconds",
            "Per-step wall time (candidate evaluation) in seconds.",
            bounds=_STEP_WALL_BOUNDS,
        )
        self.residual = registry.histogram(
            "repro_tune_surrogate_residual_ratio",
            "Per accepted point: |measured - surrogate prediction| / measured.",
            bounds=(0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0),
        )

    def event(self, kind: str, **fields: object) -> None:
        self.registry.event(kind, **fields)


# ----------------------------------------------------------------------
# Trajectory records
# ----------------------------------------------------------------------


@dataclass
class TuneStep:
    """One search step (either measured or surrogate-pruned)."""

    step: int
    candidate: Candidate
    #: Fitness (lower = better); ``None`` for pruned steps.
    fitness: Optional[float]
    run_time_ns: Optional[float]
    bytes_per_persist: Optional[float]
    #: Screen prediction for this candidate, when one was available.
    predicted: Optional[float]
    #: PR-7 surrogate anchor prediction (run-time ns), when configured.
    anchor_ns: Optional[float]
    pruned: bool
    best_fitness: Optional[float]
    wall_s: float
    #: Points satisfied from / executed past the journal this step.
    resumed_points: int
    executed_points: int

    def content(self) -> List[object]:
        """Digest projection: what the search *decided*, not how long it
        took — excludes wall-clock and resume counts so an interrupted
        and resumed run digests identically to an uninterrupted one."""
        return [
            self.step,
            sorted((k, v) for k, v in self.candidate.items()),
            self.fitness,
            self.pruned,
        ]

    def to_record(self) -> Dict[str, object]:
        return {
            "kind": "tune_step",
            "step": self.step,
            "candidate": dict(sorted(self.candidate.items())),
            "fitness": self.fitness,
            "run_time_ns": self.run_time_ns,
            "bytes_per_persist": self.bytes_per_persist,
            "predicted": self.predicted,
            "anchor_ns": self.anchor_ns,
            "pruned": self.pruned,
            "best_fitness": self.best_fitness,
            "wall_s": self.wall_s,
            "resumed_points": self.resumed_points,
            "executed_points": self.executed_points,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "TuneStep":
        return cls(
            step=record["step"],  # type: ignore[arg-type]
            candidate=dict(record["candidate"]),  # type: ignore[arg-type]
            fitness=record.get("fitness"),  # type: ignore[arg-type]
            run_time_ns=record.get("run_time_ns"),  # type: ignore[arg-type]
            bytes_per_persist=record.get("bytes_per_persist"),  # type: ignore[arg-type]
            predicted=record.get("predicted"),  # type: ignore[arg-type]
            anchor_ns=record.get("anchor_ns"),  # type: ignore[arg-type]
            pruned=bool(record.get("pruned")),
            best_fitness=record.get("best_fitness"),  # type: ignore[arg-type]
            wall_s=float(record.get("wall_s", 0.0)),  # type: ignore[arg-type]
            resumed_points=int(record.get("resumed_points", 0)),  # type: ignore[arg-type]
            executed_points=int(record.get("executed_points", 0)),  # type: ignore[arg-type]
        )


def trajectory_digest(steps: Sequence[TuneStep]) -> str:
    """sha256 over the canonical decision content of a trajectory."""
    payload = json.dumps([s.content() for s in steps], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class TuneResult:
    """Everything one ``tune()`` run decided, plus its accounting."""

    workloads: Tuple[str, ...]
    scheme: Scheme
    scale: str
    strategy: str
    fitness: str
    seed: int
    budget: int
    steps: List[TuneStep] = field(default_factory=list)
    best_step: int = 0
    best_candidate: Candidate = field(default_factory=dict)
    best_fitness: float = 0.0
    baseline_fitness: float = 0.0
    best_config: Optional[SimConfig] = None
    wall_s: float = 0.0
    executed_points: int = 0
    resumed_points: int = 0
    pruned_steps: int = 0
    journal_path: Optional[str] = None
    trajectory_path: Optional[str] = None

    @property
    def digest(self) -> str:
        return trajectory_digest(self.steps)

    @property
    def improvement(self) -> float:
        """baseline / best (>= 1.0 by construction: step 0 is baseline)."""
        if not self.best_fitness:
            return 1.0
        return self.baseline_fitness / self.best_fitness

    def recommended(self) -> Dict[str, object]:
        """The RECOMMENDED_CONFIG.json payload."""
        config = self.best_config
        return {
            "kind": "supermem-recommended-config",
            "fitness": self.fitness,
            "best_fitness": self.best_fitness,
            "baseline_fitness": self.baseline_fitness,
            "improvement": self.improvement,
            "best_step": self.best_step,
            "candidate": dict(sorted(self.best_candidate.items())),
            "config": {
                "counter_cache_size": config.counter_cache.size,
                "counter_cache_assoc": config.counter_cache.assoc,
                "write_queue_entries": config.memory.write_queue_entries,
                "wq_high_watermark": config.memory.wq_high_watermark,
                "wq_low_watermark": config.memory.wq_low_watermark,
                "n_banks": config.memory.n_banks,
                "n_channels": config.memory.n_channels,
                "bank_mapping": config.memory.bank_mapping,
            }
            if config is not None
            else {},
            "search": {
                "strategy": self.strategy,
                "seed": self.seed,
                "budget": self.budget,
                "scale": self.scale,
                "workloads": list(self.workloads),
                "scheme": self.scheme.value,
            },
            "steps": len(self.steps),
            "pruned_steps": self.pruned_steps,
            "executed_points": self.executed_points,
            "resumed_points": self.resumed_points,
            "trajectory_digest": self.digest,
        }

    def result_record(self) -> Dict[str, object]:
        """The trailing ``tune_result`` trajectory record."""
        return {
            "kind": "tune_result",
            "best_step": self.best_step,
            "best_candidate": dict(sorted(self.best_candidate.items())),
            "best_fitness": self.best_fitness,
            "baseline_fitness": self.baseline_fitness,
            "improvement": self.improvement,
            "digest": self.digest,
            "wall_s": self.wall_s,
            "executed_points": self.executed_points,
            "resumed_points": self.resumed_points,
            "pruned_steps": self.pruned_steps,
        }

    def trace_events(self) -> List[TraceEvent]:
        """``CAT_TUNER`` instants for Chrome-trace export."""
        events: List[TraceEvent] = []
        clock = 0.0
        best: Optional[float] = None
        for step in self.steps:
            clock += step.wall_s * 1e9
            name = TUNER_EV_PRUNE if step.pruned else TUNER_EV_STEP
            if step.fitness is not None and (best is None or step.fitness < best):
                best = step.fitness
                name = TUNER_EV_IMPROVE if step.step > 0 else name
            events.append(
                TraceEvent(
                    cat=CAT_TUNER,
                    name=name,
                    track=TRACK_TUNER,
                    ts=clock,
                    args={
                        "step": step.step,
                        "fitness": step.fitness,
                        "best": step.best_fitness,
                    },
                )
            )
        events.append(
            TraceEvent(
                cat=CAT_TUNER,
                name=TUNER_EV_RESULT,
                track=TRACK_TUNER,
                ts=clock,
                args={
                    "best_step": self.best_step,
                    "best_fitness": self.best_fitness,
                    "improvement": self.improvement,
                },
            )
        )
        return events


class _TrajectoryWriter:
    """Append-per-step JSONL writer (flushed so a SIGKILL loses at most
    the in-flight step; ``tune-report`` tolerates the torn tail)."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def write(self, record: Dict[str, object]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# The search loop
# ----------------------------------------------------------------------


def resolve_budget(budget: Union[int, str]) -> int:
    if isinstance(budget, str):
        if budget in TUNE_BUDGETS:
            return TUNE_BUDGETS[budget]
        try:
            budget = int(budget)
        except ValueError:
            raise ConfigError(
                f"unknown budget {budget!r}; expected an integer or one of "
                f"{sorted(TUNE_BUDGETS)}"
            ) from None
    if budget < 1:
        raise ConfigError(f"budget must be >= 1, got {budget}")
    return budget


def tune(
    workloads: Sequence[str],
    scheme: Scheme = Scheme.SUPERMEM,
    budget: Union[int, str] = "small",
    strategy: Union[str, Strategy] = "hillclimb",
    fitness: str = "run_time_ns",
    weight: float = 0.5,
    seed: int = 1,
    scale: Union[str, Scale] = "smoke",
    request_size: int = 1024,
    jobs: int = 1,
    journal: Optional[Union[str, SweepJournal]] = None,
    surrogate_model=None,
    surrogate_first: bool = False,
    prune_margin: float = 1.25,
    screen_min_train: int = 6,
    trajectory: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: bool = True,
) -> TuneResult:
    """Run one budgeted search; returns the full :class:`TuneResult`.

    Deterministic: (workloads, scheme, scale, budget, strategy, fitness,
    weight, seed, request_size, surrogate settings) fully determine the
    trajectory digest — ``jobs`` and ``journal`` affect only wall clock
    and resume accounting, never decisions.
    """
    if fitness not in FITNESS_NAMES:
        raise ConfigError(
            f"unknown fitness {fitness!r}; expected one of {FITNESS_NAMES}"
        )
    workloads = tuple(workloads)
    if not workloads:
        raise ConfigError("tune needs at least one workload")
    budget = resolve_budget(budget)
    strat = make_strategy(strategy)
    scale_obj = scale if isinstance(scale, Scale) else get_scale(scale)
    base = experiment_base_config(scale_obj)
    if isinstance(journal, str):
        journal = SweepJournal(journal)
    registry = metrics if metrics is not None else NULL_METRICS
    tm = TunerMetrics(registry)

    import random as _random

    rng = _random.Random(seed)

    def specs_for(candidate: Candidate) -> List[PointSpec]:
        config = candidate_config(base, candidate)
        return [
            PointSpec(
                workload=workload,
                scheme=scheme,
                n_ops=scale_obj.n_ops,
                request_size=request_size,
                footprint=scale_obj.footprint,
                base_config=config,
                seed=seed,
            )
            for workload in workloads
        ]

    screen: Optional[SurrogateScreen] = None
    anchor = None
    if surrogate_first:
        anchor = build_anchor(surrogate_model, specs_for, fitness)
        screen = SurrogateScreen(
            anchor=anchor, margin=prune_margin, min_train=screen_min_train
        )

    result = TuneResult(
        workloads=workloads,
        scheme=scheme,
        scale=scale_obj.name,
        strategy=strat.name,
        fitness=fitness,
        seed=seed,
        budget=budget,
        journal_path=journal.path if journal is not None else None,
        trajectory_path=trajectory,
    )
    writer = _TrajectoryWriter(trajectory) if trajectory else None
    if writer is not None:
        writer.write(
            {
                "kind": "tune_header",
                "workloads": list(workloads),
                "scheme": scheme.value,
                "scale": scale_obj.name,
                "strategy": strat.name,
                "fitness": fitness,
                "weight": weight,
                "seed": seed,
                "budget": budget,
                "request_size": request_size,
                "surrogate_first": surrogate_first,
                "prune_margin": prune_margin,
                "search_space": {k.name: list(k.choices) for k in SEARCH_SPACE},
            }
        )

    base_candidate = baseline_candidate(base)
    seen: set = set()
    measured: List[TuneStep] = []
    baseline_measure: Optional[Tuple[float, float]] = None
    best_fitness: Optional[float] = None
    started = time.perf_counter()

    try:
        for step_index in range(budget):
            step_started = time.perf_counter()
            if step_index == 0:
                # Baseline first: the stock geometry every default fig13
                # point runs, so best-found can never regress it.
                candidate = dict(base_candidate)
            else:
                candidate = _propose_candidate(
                    strat, rng, measured, base, seen
                )
            seen.add(candidate_key(candidate))

            predicted: Optional[float] = None
            pruned = False
            if screen is not None and step_index > 0:
                pruned, predicted = screen.should_prune(candidate, best_fitness)

            anchor_ns = anchor(candidate) if anchor is not None else None

            if pruned:
                step = TuneStep(
                    step=step_index,
                    candidate=candidate,
                    fitness=None,
                    run_time_ns=None,
                    bytes_per_persist=None,
                    predicted=predicted,
                    anchor_ns=anchor_ns,
                    pruned=True,
                    best_fitness=best_fitness,
                    wall_s=time.perf_counter() - step_started,
                    resumed_points=0,
                    executed_points=0,
                )
                result.steps.append(step)
                result.pruned_steps += 1
                tm.steps.labels("pruned").inc()
                if tm.enabled:
                    tm.event(
                        TUNER_EV_PRUNE,
                        step=step_index,
                        predicted=predicted,
                        best=best_fitness,
                    )
                if writer is not None:
                    writer.write(step.to_record())
                if progress:
                    print(
                        f"[tune] step {step_index + 1}/{budget} "
                        f"{describe_candidate(candidate, base_candidate)} "
                        f"pruned (predicted={predicted:.3g} "
                        f"best={best_fitness:.3g})",
                        file=sys.stderr,
                    )
                continue

            specs = specs_for(candidate)
            results, report = run_points_report(
                specs,
                jobs=jobs,
                label=f"tune[{step_index}]",
                progress=lambda done, total: None,
                journal=journal,
                metrics=registry,
            )
            if report.failures:
                raise SweepError(report.failures)
            run_time_ns, bytes_per_persist = measure_results(
                [r for r in results if r is not None]
            )
            fit = fitness_value(
                fitness, run_time_ns, bytes_per_persist, baseline_measure, weight
            )
            if step_index == 0:
                baseline_measure = (run_time_ns, bytes_per_persist)
                result.baseline_fitness = fit

            if screen is not None:
                screen.observe(candidate, fit)
            if anchor_ns is not None and run_time_ns:
                residual = abs(run_time_ns - anchor_ns) / run_time_ns
                tm.residual.observe(residual)

            improved = best_fitness is None or fit < best_fitness
            if improved:
                best_fitness = fit
                result.best_step = step_index
                result.best_candidate = dict(candidate)
                result.best_fitness = fit
                result.best_config = candidate_config(base, candidate)
                if step_index > 0:
                    tm.improvements.inc()
                    if tm.enabled:
                        tm.event(
                            TUNER_EV_IMPROVE,
                            step=step_index,
                            fitness=fit,
                        )

            executed = report.n_points - report.resumed - len(report.failures)
            step = TuneStep(
                step=step_index,
                candidate=candidate,
                fitness=fit,
                run_time_ns=run_time_ns,
                bytes_per_persist=bytes_per_persist,
                predicted=predicted,
                anchor_ns=anchor_ns,
                pruned=False,
                best_fitness=best_fitness,
                wall_s=time.perf_counter() - step_started,
                resumed_points=report.resumed,
                executed_points=executed,
            )
            result.steps.append(step)
            measured.append(step)
            result.resumed_points += report.resumed
            result.executed_points += executed
            tm.steps.labels("measured").inc()
            tm.best.set(best_fitness)
            tm.step_wall.observe(step.wall_s)
            if tm.enabled:
                tm.event(
                    TUNER_EV_STEP,
                    step=step_index,
                    fitness=fit,
                    best=best_fitness,
                    resumed=report.resumed,
                )
            if writer is not None:
                writer.write(step.to_record())
            if progress:
                marker = " *" if improved and step_index > 0 else ""
                resumed_note = (
                    f" resumed={report.resumed}" if report.resumed else ""
                )
                print(
                    f"[tune] step {step_index + 1}/{budget} "
                    f"{describe_candidate(candidate, base_candidate)} "
                    f"fitness={fit:.6g} best={best_fitness:.6g}"
                    f"{resumed_note}{marker}",
                    file=sys.stderr,
                )

        result.wall_s = time.perf_counter() - started
        if writer is not None:
            writer.write(result.result_record())
            if tm.enabled:
                tm.event(TUNER_EV_RESULT, **{
                    k: v
                    for k, v in result.result_record().items()
                    if k not in ("kind", "best_candidate")
                })
    finally:
        if writer is not None:
            writer.close()
    return result


# ----------------------------------------------------------------------
# Reporting (from the trajectory file alone)
# ----------------------------------------------------------------------


def load_trajectory(
    path: str,
) -> Tuple[Dict[str, object], List[TuneStep], Optional[Dict[str, object]]]:
    """(header, steps, result-record-or-None) from a trajectory JSONL.

    Tolerates a torn tail (a SIGKILL mid-append) the same way the sweep
    journal does: undecodable lines are dropped, so the trajectory of a
    killed run still renders.
    """
    header: Dict[str, object] = {}
    steps: List[TuneStep] = []
    final: Optional[Dict[str, object]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            kind = record.get("kind")
            if kind == "tune_header":
                header = record
            elif kind == "tune_step":
                steps.append(TuneStep.from_record(record))
            elif kind == "tune_result":
                final = record
    return header, steps, final


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def render_tune_report(
    header: Dict[str, object],
    steps: Sequence[TuneStep],
    final: Optional[Dict[str, object]],
    top: int = 5,
) -> str:
    """Markdown report: best point, trajectory, times-to-completion."""
    lines: List[str] = []
    strategy = header.get("strategy", "?")
    fitness = header.get("fitness", "?")
    workloads = "+".join(header.get("workloads", []) or ["?"])
    lines.append("# Tune report")
    lines.append("")
    lines.append(
        f"strategy `{strategy}` · fitness `{fitness}` · mix `{workloads}` · "
        f"scheme `{header.get('scheme', '?')}` · scale "
        f"`{header.get('scale', '?')}` · seed {header.get('seed', '?')} · "
        f"budget {header.get('budget', len(steps))}"
    )
    lines.append("")

    measured = [s for s in steps if s.fitness is not None]
    pruned = [s for s in steps if s.pruned]
    if not measured:
        lines.append("No measured steps in the trajectory.")
        return "\n".join(lines)

    best = min(measured, key=lambda s: (s.fitness, s.step))
    baseline = measured[0]
    improvement = (
        baseline.fitness / best.fitness if best.fitness else 1.0
    )

    lines.append("## Best point")
    lines.append("")
    lines.append(
        f"step {best.step} · fitness {_fmt(best.fitness)} "
        f"(baseline {_fmt(baseline.fitness)}, {improvement:.3f}x)"
    )
    lines.append("")
    lines.append("| knob | best | baseline |")
    lines.append("|---|---|---|")
    for knob in SEARCH_SPACE:
        lines.append(
            f"| `{knob.name}` | {best.candidate.get(knob.name)} "
            f"| {baseline.candidate.get(knob.name)} |"
        )
    lines.append("")

    lines.append("## Fitness vs budget")
    lines.append("")
    lines.append("| step | candidate | fitness | best so far | |")
    lines.append("|---|---|---|---|---|")
    base_candidate = baseline.candidate
    worst = max(s.fitness for s in measured)
    span = worst - best.fitness
    for step in steps:
        desc = describe_candidate(step.candidate, base_candidate)
        if step.pruned:
            lines.append(
                f"| {step.step} | `{desc}` | pruned "
                f"(pred {_fmt(step.predicted)}) | {_fmt(step.best_fitness)} | |"
            )
            continue
        frac = 1.0 - ((step.fitness - best.fitness) / span if span else 0.0)
        bar = "#" * max(1, round(frac * 20))
        lines.append(
            f"| {step.step} | `{desc}` | {_fmt(step.fitness)} "
            f"| {_fmt(step.best_fitness)} | `{bar}` |"
        )
    lines.append("")

    lines.append("## Times to completion")
    lines.append("")
    lines.append("| improvement | step | fitness | cumulative wall (s) |")
    lines.append("|---|---|---|---|")
    cumulative = 0.0
    best_seen: Optional[float] = None
    nth = 0
    for step in steps:
        cumulative += step.wall_s
        if step.fitness is None:
            continue
        if best_seen is None or step.fitness < best_seen:
            best_seen = step.fitness
            lines.append(
                f"| {nth} | {step.step} | {_fmt(step.fitness)} "
                f"| {cumulative:.2f} |"
            )
            nth += 1
    lines.append("")

    ranked = sorted(measured, key=lambda s: (s.fitness, s.step))[:top]
    lines.append(f"## Top {len(ranked)} points")
    lines.append("")
    lines.append("| rank | step | fitness | candidate |")
    lines.append("|---|---|---|---|")
    for rank, step in enumerate(ranked, start=1):
        lines.append(
            f"| {rank} | {step.step} | {_fmt(step.fitness)} "
            f"| `{describe_candidate(step.candidate, base_candidate)}` |"
        )
    lines.append("")

    total_wall = sum(s.wall_s for s in steps)
    resumed = sum(s.resumed_points for s in steps)
    executed = sum(s.executed_points for s in steps)
    lines.append("## Totals")
    lines.append("")
    lines.append(
        f"{len(measured)} measured steps, {len(pruned)} pruned; "
        f"{executed} points executed, {resumed} replayed from the journal; "
        f"wall {total_wall:.2f} s; trajectory digest "
        f"`{trajectory_digest(list(steps))}`"
    )
    if final is not None and final.get("digest") not in (
        None,
        trajectory_digest(list(steps)),
    ):
        lines.append("")
        lines.append(
            "WARNING: trajectory digest does not match the recorded "
            "tune_result digest — the file was truncated or edited."
        )
    return "\n".join(lines)


def report_payload(
    header: Dict[str, object],
    steps: Sequence[TuneStep],
    final: Optional[Dict[str, object]],
) -> Dict[str, object]:
    """JSON-export form of the report (``tune-report --json``)."""
    measured = [s for s in steps if s.fitness is not None]
    best = (
        min(measured, key=lambda s: (s.fitness, s.step)) if measured else None
    )
    return {
        "kind": "supermem-tune-report",
        "header": header,
        "steps": [s.to_record() for s in steps],
        "best": best.to_record() if best is not None else None,
        "baseline_fitness": measured[0].fitness if measured else None,
        "improvement": (
            measured[0].fitness / best.fitness
            if best is not None and best.fitness
            else 1.0
        ),
        "pruned_steps": sum(1 for s in steps if s.pruned),
        "executed_points": sum(s.executed_points for s in steps),
        "resumed_points": sum(s.resumed_points for s in steps),
        "wall_s": sum(s.wall_s for s in steps),
        "digest": trajectory_digest(list(steps)),
        "result": final,
    }
