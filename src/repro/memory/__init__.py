"""The NVM main-memory subsystem: banks, write queue, controller, storage.

This package models the memory side of the paper's evaluation platform:

* :mod:`repro.memory.nvm` — the functional byte store (what survives a
  crash) plus per-line wear statistics;
* :mod:`repro.memory.bank` — PCM bank timing: slow cell writes, a row
  buffer for reads, write-to-read turnaround, and the rank-level
  four-activate window;
* :mod:`repro.memory.layout` — the three counter-placement policies of
  paper Figure 8 (SingleBank / SameBank / XBank);
* :mod:`repro.memory.write_queue` — the ADR-protected write queue with the
  counter/data flag bit and counter write coalescing (Section 3.4.3);
* :mod:`repro.memory.controller` — the memory controller: FR-FCFS-style
  drain scheduling, read priority with write-queue forwarding, full-queue
  stalls, and atomic data+counter pair appends.
"""

from repro.memory.bank import Bank, RankState
from repro.memory.controller import MemoryController, ReadResult
from repro.memory.layout import (
    CounterPlacement,
    SameBankLayout,
    SingleBankLayout,
    XBankLayout,
    make_layout,
)
from repro.memory.nvm import NVMStore
from repro.memory.write_queue import WQEntry, WriteQueue

__all__ = [
    "Bank",
    "RankState",
    "MemoryController",
    "ReadResult",
    "CounterPlacement",
    "SameBankLayout",
    "SingleBankLayout",
    "XBankLayout",
    "make_layout",
    "NVMStore",
    "WQEntry",
    "WriteQueue",
]
