"""PCM bank and rank timing.

Each bank serves one request at a time. The timing asymmetry that drives the
whole paper lives here: a PCM cell write occupies its bank for
``tRCD + tCWD + tWR`` (361 ns with the paper's constants) while a read costs
``tRCD + tCL`` (63 ns) on a row-buffer miss and just ``tCL`` (15 ns) on a
hit. Doubling write traffic therefore roughly doubles the drain time of a
write-dominated workload — unless the extra writes land on *other* banks,
which is exactly the XBank insight.

Secondary constraints modelled for fidelity:

* **row buffer** — reads leave their row open; a following read to the same
  row is cheap. Writes go to the cell array and close the row (PCM
  write-through row-buffer policy).
* **tWTR** — a read issued to a bank that just finished a write waits out
  the write-to-read turnaround.
* **tFAW** — at most four row activations per rolling ``tFAW`` window
  across the rank (rarely binding next to 300 ns writes, but enforced).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.config import MemoryConfig, TimingConfig
from repro.common.stats import Stats
from repro.obs.tracer import NULL_TRACER


class RankState:
    """Rank-level constraint state shared by all banks (tFAW window)."""

    def __init__(self, timing: TimingConfig, enforce: bool = True):
        self._timing = timing
        self._enforce = enforce
        self._activates: Deque[float] = deque(maxlen=4)

    def activate(self, start: float) -> float:
        """Register a row activation; returns the (possibly delayed) start."""
        if self._enforce and len(self._activates) == 4:
            earliest = self._activates[0] + self._timing.tfaw_ns
            if start < earliest:
                start = earliest
        self._activates.append(start)
        return start


class Bank:
    """One independently schedulable NVM bank."""

    def __init__(
        self,
        index: int,
        timing: TimingConfig,
        config: MemoryConfig,
        rank: RankState,
        stats: Stats,
        tracer=NULL_TRACER,
        hot_path: bool = True,
    ):
        self.index = index
        self._timing = timing
        self._config = config
        self._rank = rank
        self._stats = stats
        self._tracer = tracer
        #: Time at which the current operation (if any) completes.
        self.free_at: float = 0.0
        #: Open row for the read row-buffer model; None = closed.
        self.open_row: Optional[int] = None
        #: Completion time of the most recent write (for tWTR).
        self.last_write_end: float = 0.0
        # Service routines run once per drained write / demand read, so
        # the derived-per-call values are hoisted once here: the namespace
        # string (an f-string property in the reference path), the
        # TimingConfig-derived service latencies (properties computing
        # sums/divisions), and prebuilt Stats.raw() keys.
        self._vals = stats.raw()
        ns = f"bank.{index}"
        self._k_writes = (ns, "writes")
        self._k_reads = (ns, "reads")
        self._k_busy_ns = (ns, "busy_ns")
        self._k_row_hits = (ns, "row_hits")
        self._k_row_misses = (ns, "row_misses")
        self._write_service_ns = timing.write_service_ns
        self._read_service_ns = timing.read_service_ns
        self._read_hit_service_ns = timing.read_hit_service_ns
        self._twtr_ns = timing.twtr_ns
        self._enforce_twtr = config.enforce_twtr
        self._row_buffer = config.row_buffer
        if not hot_path:
            # Reference-mode contrast leg: per-call property walks.
            self.service_write = self._service_write_ref  # type: ignore[method-assign]
            self.service_read = self._service_read_ref  # type: ignore[method-assign]

    @property
    def _ns(self) -> str:
        return f"bank.{self.index}"

    def earliest_start(self, now: float) -> float:
        """Earliest time a new request could begin on this bank."""
        return max(now, self.free_at)

    # ------------------------------------------------------------------
    # Service routines
    # ------------------------------------------------------------------

    def service_write(self, start: float) -> float:
        """Occupy the bank with one line write; returns completion time."""
        free_at = self.free_at
        if free_at > start:
            start = free_at
        start = self._rank.activate(start)
        end = start + self._write_service_ns
        self.free_at = end
        self.last_write_end = end
        # PCM writes bypass/close the row buffer.
        self.open_row = None
        vals = self._vals
        vals[self._k_writes] += 1
        vals[self._k_busy_ns] += end - start
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "write")
        return end

    def service_read(self, start: float, row: int) -> Tuple[float, bool]:
        """Occupy the bank with one line read.

        Returns ``(completion_time, row_buffer_hit)``.
        """
        free_at = self.free_at
        if free_at > start:
            start = free_at
        last_write_end = self.last_write_end
        if self._enforce_twtr and start < last_write_end + self._twtr_ns:
            # Only delays reads that immediately chase a write on this bank.
            if last_write_end > 0:
                turnaround = last_write_end + self._twtr_ns
                if turnaround > start:
                    start = turnaround
        vals = self._vals
        hit = self._row_buffer and self.open_row == row
        if hit:
            duration = self._read_hit_service_ns
            vals[self._k_row_hits] += 1
        else:
            start = self._rank.activate(start)
            duration = self._read_service_ns
            vals[self._k_row_misses] += 1
        end = start + duration
        self.free_at = end
        if self._row_buffer:
            self.open_row = row
        vals[self._k_reads] += 1
        vals[self._k_busy_ns] += end - start
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "read", row_hit=hit)
        return end, hit

    def _service_write_ref(self, start: float) -> float:
        """Reference write service: identical timing, per-call lookups."""
        start = max(start, self.free_at)
        start = self._rank.activate(start)
        end = start + self._timing.write_service_ns
        self.free_at = end
        self.last_write_end = end
        self.open_row = None
        self._stats.inc(self._ns, "writes")
        self._stats.inc(self._ns, "busy_ns", end - start)
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "write")
        return end

    def _service_read_ref(self, start: float, row: int) -> Tuple[float, bool]:
        """Reference read service: identical timing, per-call lookups."""
        start = max(start, self.free_at)
        if self._config.enforce_twtr and start < self.last_write_end + self._timing.twtr_ns:
            if self.last_write_end > 0:
                start = max(start, self.last_write_end + self._timing.twtr_ns)
        hit = self._config.row_buffer and self.open_row == row
        if hit:
            duration = self._timing.read_hit_service_ns
            self._stats.inc(self._ns, "row_hits")
        else:
            start = self._rank.activate(start)
            duration = self._timing.read_service_ns
            self._stats.inc(self._ns, "row_misses")
        end = start + duration
        self.free_at = end
        if self._config.row_buffer:
            self.open_row = row
        self._stats.inc(self._ns, "reads")
        self._stats.inc(self._ns, "busy_ns", end - start)
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "read", row_hit=hit)
        return end, hit

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the power-on timing state."""
        self.free_at = 0.0
        self.open_row = None
        self.last_write_end = 0.0
