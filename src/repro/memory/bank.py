"""PCM bank and rank timing.

Each bank serves one request at a time. The timing asymmetry that drives the
whole paper lives here: a PCM cell write occupies its bank for
``tRCD + tCWD + tWR`` (361 ns with the paper's constants) while a read costs
``tRCD + tCL`` (63 ns) on a row-buffer miss and just ``tCL`` (15 ns) on a
hit. Doubling write traffic therefore roughly doubles the drain time of a
write-dominated workload — unless the extra writes land on *other* banks,
which is exactly the XBank insight.

Secondary constraints modelled for fidelity:

* **row buffer** — reads leave their row open; a following read to the same
  row is cheap. Writes go to the cell array and close the row (PCM
  write-through row-buffer policy).
* **tWTR** — a read issued to a bank that just finished a write waits out
  the write-to-read turnaround.
* **tFAW** — at most four row activations per rolling ``tFAW`` window
  across the rank (rarely binding next to 300 ns writes, but enforced).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.config import MemoryConfig, TimingConfig
from repro.common.stats import Stats
from repro.obs.tracer import NULL_TRACER


class RankState:
    """Rank-level constraint state shared by all banks (tFAW window)."""

    def __init__(self, timing: TimingConfig, enforce: bool = True):
        self._timing = timing
        self._enforce = enforce
        self._activates: Deque[float] = deque(maxlen=4)

    def activate(self, start: float) -> float:
        """Register a row activation; returns the (possibly delayed) start."""
        if self._enforce and len(self._activates) == 4:
            earliest = self._activates[0] + self._timing.tfaw_ns
            if start < earliest:
                start = earliest
        self._activates.append(start)
        return start


class Bank:
    """One independently schedulable NVM bank."""

    def __init__(
        self,
        index: int,
        timing: TimingConfig,
        config: MemoryConfig,
        rank: RankState,
        stats: Stats,
        tracer=NULL_TRACER,
    ):
        self.index = index
        self._timing = timing
        self._config = config
        self._rank = rank
        self._stats = stats
        self._tracer = tracer
        #: Time at which the current operation (if any) completes.
        self.free_at: float = 0.0
        #: Open row for the read row-buffer model; None = closed.
        self.open_row: Optional[int] = None
        #: Completion time of the most recent write (for tWTR).
        self.last_write_end: float = 0.0

    @property
    def _ns(self) -> str:
        return f"bank.{self.index}"

    def earliest_start(self, now: float) -> float:
        """Earliest time a new request could begin on this bank."""
        return max(now, self.free_at)

    # ------------------------------------------------------------------
    # Service routines
    # ------------------------------------------------------------------

    def service_write(self, start: float) -> float:
        """Occupy the bank with one line write; returns completion time."""
        start = max(start, self.free_at)
        start = self._rank.activate(start)
        end = start + self._timing.write_service_ns
        self.free_at = end
        self.last_write_end = end
        # PCM writes bypass/close the row buffer.
        self.open_row = None
        self._stats.inc(self._ns, "writes")
        self._stats.inc(self._ns, "busy_ns", end - start)
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "write")
        return end

    def service_read(self, start: float, row: int) -> Tuple[float, bool]:
        """Occupy the bank with one line read.

        Returns ``(completion_time, row_buffer_hit)``.
        """
        start = max(start, self.free_at)
        if self._config.enforce_twtr and start < self.last_write_end + self._timing.twtr_ns:
            # Only delays reads that immediately chase a write on this bank.
            if self.last_write_end > 0:
                start = max(start, self.last_write_end + self._timing.twtr_ns)
        hit = self._config.row_buffer and self.open_row == row
        if hit:
            duration = self._timing.read_hit_service_ns
            self._stats.inc(self._ns, "row_hits")
        else:
            start = self._rank.activate(start)
            duration = self._timing.read_service_ns
            self._stats.inc(self._ns, "row_misses")
        end = start + duration
        self.free_at = end
        if self._config.row_buffer:
            self.open_row = row
        self._stats.inc(self._ns, "reads")
        self._stats.inc(self._ns, "busy_ns", end - start)
        if self._tracer.enabled:
            self._tracer.bank_busy(start, end, self.index, "read", row_hit=hit)
        return end, hit

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the power-on timing state."""
        self.free_at = 0.0
        self.open_row = None
        self.last_write_end = 0.0
