"""The memory controller: drain scheduling, reads, stalls, ADR.

The controller owns the write queue, the banks, and the command bus, and
exposes exactly the operations the secure-memory layer needs:

* :meth:`append_write` / :meth:`append_pair` — place one line write (or an
  atomic data+counter pair staged by the atomicity register) into the
  ADR-protected write queue, stalling the caller when the queue is full.
  A line is **durable once appended** (ADR semantics, Section 2.1), so the
  returned append time is the persistence time a transaction waits on.
* :meth:`read` — service a demand read with read priority: reads bypass
  queued writes (but not a write already occupying the bank) and are
  forwarded straight from the write queue on an address match.
* :meth:`advance_to` — lazily simulate the background drain up to a given
  time: the scheduler repeatedly issues the queued write with the earliest
  feasible start (bank free, bus free), FIFO-tie-broken, which is
  FR-FCFS restricted to writes.

The whole paper plays out in this object's queueing behaviour: doubling
appends (write-through counters) doubles queue pressure; CWC removes
counter appends; XBank changes which bank each counter write occupies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.address import AddressMap
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.memory.bank import Bank, RankState
from repro.memory.nvm import NVMStore
from repro.memory.write_queue import WQEntry, WriteQueue
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a demand read at the controller."""

    finish_time: float
    #: "wq" when forwarded from the write queue, else "bank".
    source: str
    row_hit: bool = False


class MemoryController:
    """Scheduler over one rank of NVM banks plus the write queue."""

    def __init__(
        self,
        config: SimConfig,
        stats: Stats,
        nvm: Optional[NVMStore] = None,
        tracer=NULL_TRACER,
    ):
        self.config = config
        self.amap: AddressMap = config.address_map()
        self.timing = config.timing
        self._stats = stats
        self._tracer = tracer
        self.nvm = nvm if nvm is not None else NVMStore(stats)
        self.rank = RankState(config.timing, enforce=config.memory.enforce_tfaw)
        self.banks: List[Bank] = [
            Bank(
                i,
                config.timing,
                config.memory,
                self.rank,
                stats,
                tracer=tracer,
                hot_path=config.hot_path,
            )
            for i in range(config.memory.n_banks)
        ]
        self.wq = WriteQueue(
            capacity=config.memory.write_queue_entries,
            stats=stats,
            cwc_enabled=config.cwc_enabled,
            cwc_policy=config.cwc_policy,
            tracer=tracer,
        )
        # Record the geometry so post-run analyses (profiling) can recover
        # the bank count without re-threading the config. The "config"
        # namespace is exempt from warmup counter resets.
        stats.set("config", "n_banks", config.memory.n_banks)
        if tracer.enabled:
            tracer.register_gauge("wq.occupancy", lambda ts: len(self.wq))
            for bank in self.banks:
                tracer.register_gauge(
                    f"bank.{bank.index}.busy_frac",
                    (
                        lambda ts, ns=f"bank.{bank.index}": (
                            stats.get(ns, "busy_ns") / ts if ts > 0 else 0.0
                        )
                    ),
                    track=f"bank.{bank.index}",
                )
        #: Per-channel command-bus availability (request issue serialises
        #: within a channel; channels are independent). The paper's
        #: platform is single-channel, the default.
        self.n_channels = config.memory.n_channels
        self._banks_per_channel = config.memory.n_banks // self.n_channels
        self.bus_free_at = [0.0] * self.n_channels
        #: Controller logical clock: latest time the drain has simulated.
        self.clock: float = 0.0
        # Write-drain watermarks: the background drain engages when the
        # queue reaches `high` and disengages at `low`. Writes are not
        # latency-critical (ADR makes the append the durability point), so
        # letting them sit maximises CWC's coalescing window — and is how
        # real controllers batch writes anyway.
        depth = config.memory.write_queue_entries
        high = config.memory.wq_high_watermark
        low = config.memory.wq_low_watermark
        self.high_watermark = max(1, (3 * depth) // 4) if high is None else high
        self.low_watermark = max(0, depth // 4) if low is None else low
        if not 0 <= self.low_watermark < self.high_watermark <= depth:
            raise SimulationError(
                f"bad watermarks low={self.low_watermark} "
                f"high={self.high_watermark} depth={depth}"
            )
        self._draining = False
        policy = config.memory.drain_policy
        if policy not in ("defer-counters", "frfcfs", "fifo"):
            raise SimulationError(f"unknown drain policy {policy!r}")
        self._policy = policy
        defer = config.memory.counter_defer_ns
        if defer is None:
            # Default: scale the coalescing window with queue depth — a
            # counter entry's natural residency in a depth-D queue is
            # D/(2*banks) write services, so CWC's reach grows with the
            # queue exactly as the paper's Figure 16a reports.
            defer = (
                depth
                * config.timing.write_service_ns
                / (2.0 * config.memory.n_banks)
            )
        self._counter_defer_ns = defer
        # Hot-path hoists: the drain scheduler's candidate scan runs once
        # per issued write over the whole queue, so per-call property and
        # attribute walks dominate the profile. Prebuilt stat keys and a
        # cached bus latency remove them; hot_path=False restores the
        # reference scan as the differential oracle / slow benchmark leg.
        self._vals = stats.raw()
        self._k_issued = ("wq", "issued")
        self._k_counter_issued = ("wq", "counter_issued")
        self._k_data_issued = ("wq", "data_issued")
        self._k_mc_reads = ("mc", "reads")
        self._k_read_forwards = ("wq", "read_forwards")
        self._k_pair_appends = ("wq", "pair_appends")
        self._k_full_stalls = ("wq", "full_stalls")
        self._k_stall_ns = ("wq", "stall_ns")
        self._bus_ns = config.timing.bus_ns
        # Memoized result of the last candidate scan, as a
        # ``(wq.version, start, entry)`` triple; see _best_candidate.
        self._cand_cache: Optional[Tuple[int, float, WQEntry]] = None
        if not config.hot_path:
            self._best_candidate = self._best_candidate_ref  # type: ignore[method-assign]
            self._issue = self._issue_ref  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Drain engine
    # ------------------------------------------------------------------

    def _entry_start(self, entry: WQEntry) -> float:
        bank = self.banks[entry.bank]
        bus = self.bus_free_at[self._channel_of(entry.bank)]
        return max(self.clock, bank.free_at, bus, entry.enq_time)

    def _channel_of(self, bank: int) -> int:
        return bank // self._banks_per_channel

    def _best_candidate(self) -> Optional[Tuple[float, WQEntry]]:
        """Next write to issue under the configured drain policy.

        ``defer-counters`` (default): FR-FCFS, but a ready counter write
        yields to a data write that can start within ``counter_defer_ns``
        — counters linger (feeding CWC) and drain in the gaps.
        ``frfcfs``: earliest feasible start, FIFO tie-break.
        ``fifo``: strict append order (head-of-line blocking).

        Per-bank scan (exact, not heuristic): the reference scan picks
        the lexicographic minimum of ``(start, seq)`` over the queue.
        Two structural facts shrink the candidate set to the FIFO-first
        entry of each per-bank data/counter bucket:

        * ``clock >= enq_time`` for every queued entry — an entry's
          ``enq_time`` is the append time, which never exceeds the
          controller clock at append, and the clock is monotone. The
          ``max(..., enq_time)`` term of the reference start is therefore
          inert, so a *data* entry's start depends only on its bank:
          every entry of a bucket shares one start and the smallest
          ``seq`` (FIFO-first) wins the tie-break.
        * A *counter* entry adds ``enq_time + defer``; within a bucket
          the FIFO-first entry also has the smallest ``enq_time``
          whenever appends were time-monotone, so it dominates there
          too. :attr:`WriteQueue.enq_monotone` certifies that
          precondition (single-core replay always satisfies it); if a
          multicore interleaving ever violates it, the queue latches the
          flag and this method falls back to the full-queue scan.
        """
        if self._policy == "fifo":
            entry = self.wq.oldest()
            if entry is None:
                return None
            return self._entry_start(entry), entry
        wq = self.wq
        if not wq.enq_monotone:
            return self._best_candidate_scan()

        clock = self.clock
        # Reuse the previous scan while it provably still holds: the
        # queue is unchanged (version match — appends, issues, and CWC
        # removals all bump it; bank/bus state only moves on an issue or
        # a demand read, which bump/invalidate too) and the clock has not
        # passed the cached start. Every entry's start is a max over
        # terms that include the clock, and every cached start is >= the
        # cached minimum, so advancing the clock up to that minimum
        # changes no start and therefore no argmin. advance_to() probes
        # once per persist but issues far less often, so this converts
        # the common "scan, then break on start > t" probe into O(1).
        cached = self._cand_cache
        if (
            cached is not None
            and cached[0] == wq.version
            and clock <= cached[1]
        ):
            return cached[1], cached[2]

        defer = self._counter_defer_ns if self._policy == "defer-counters" else 0.0
        banks = self.banks
        bus_free_at = self.bus_free_at
        banks_per_channel = self._banks_per_channel
        best_start = None
        best_seq = 0
        best_entry = None
        for bank, bucket in wq.data_by_bank.items():
            start = banks[bank].free_at
            if start < clock:
                start = clock
            bus = bus_free_at[bank // banks_per_channel]
            if bus > start:
                start = bus
            if best_entry is None or start < best_start:
                best_entry = next(iter(bucket.values()))
                best_start, best_seq = start, best_entry.seq
            elif start == best_start:
                entry = next(iter(bucket.values()))
                if entry.seq < best_seq:
                    best_entry, best_seq = entry, entry.seq
        for bank, bucket in wq.counters_by_bank.items():
            start = banks[bank].free_at
            if start < clock:
                start = clock
            bus = bus_free_at[bank // banks_per_channel]
            if bus > start:
                start = bus
            entry = next(iter(bucket.values()))
            if defer:
                # A counter write is held back for a fixed coalescing
                # window after its append; afterwards it competes like any
                # other write (so XBank's parallelism is intact while CWC
                # gets its merge window).
                deferred = entry.enq_time + defer
                if deferred > start:
                    start = deferred
            if (
                best_entry is None
                or start < best_start
                or (start == best_start and entry.seq < best_seq)
            ):
                best_start, best_seq, best_entry = start, entry.seq, entry
        if best_entry is None:
            return None
        self._cand_cache = (wq.version, best_start, best_entry)
        return best_start, best_entry

    def _best_candidate_scan(self) -> Optional[Tuple[float, WQEntry]]:
        """Full-queue scan with hoisted locals (non-monotone fallback).

        The feasible start of every entry is ``>= self.clock`` (a max
        over terms that include the clock), and ties break toward the
        earliest-appended entry (strict ``<`` never replaces an equal
        best), so the first FIFO entry whose start equals the clock is
        the exact argmin and the scan stops there.
        """
        defer = self._counter_defer_ns if self._policy == "defer-counters" else 0.0
        clock = self.clock
        banks = self.banks
        bus_free_at = self.bus_free_at
        banks_per_channel = self._banks_per_channel
        best_start = None
        best_entry = None
        for entry in self.wq:
            bank = entry.bank
            start = banks[bank].free_at
            if start < clock:
                start = clock
            bus = bus_free_at[bank // banks_per_channel]
            if bus > start:
                start = bus
            enq_time = entry.enq_time
            if enq_time > start:
                start = enq_time
            if defer and entry.is_counter:
                deferred = enq_time + defer
                if deferred > start:
                    start = deferred
            if best_start is None or start < best_start:
                best_start, best_entry = start, entry
                if start <= clock:
                    break
        if best_entry is None:
            return None
        return best_start, best_entry

    def _best_candidate_ref(self) -> Optional[Tuple[float, WQEntry]]:
        """Reference candidate scan: full-queue walk, per-entry max()."""
        if self._policy == "fifo":
            entry = self.wq.oldest()
            if entry is None:
                return None
            return self._entry_start(entry), entry

        defer = self._counter_defer_ns if self._policy == "defer-counters" else 0.0
        best_start = None
        best_entry = None
        for entry in self.wq:
            start = self._entry_start(entry)
            if entry.is_counter and defer:
                start = max(start, entry.enq_time + defer)
            if best_start is None or start < best_start:
                best_start, best_entry = start, entry
        if best_entry is None:
            return None
        return best_start, best_entry

    def _issue(self, entry: WQEntry, start: float) -> float:
        """Send one queued write to its bank; returns completion time."""
        self.wq.remove(entry)
        bank = entry.bank
        self.bus_free_at[bank // self._banks_per_channel] = start + self._bus_ns
        end = self.banks[bank].service_write(start)
        self.nvm.write_line(entry.line, entry.payload)
        if self._tracer.enabled:
            self._tracer.wq_issue(
                start, entry.line, bank, entry.is_counter, len(self.wq)
            )
        vals = self._vals
        vals[self._k_issued] += 1
        if entry.is_counter:
            vals[self._k_counter_issued] += 1
        else:
            vals[self._k_data_issued] += 1
        return end

    def _issue_ref(self, entry: WQEntry, start: float) -> float:
        """Reference issue path: per-call property and stats walks."""
        self.wq.remove(entry)
        self.bus_free_at[self._channel_of(entry.bank)] = start + self.timing.bus_ns
        end = self.banks[entry.bank].service_write(start)
        self.nvm.write_line(entry.line, entry.payload)
        if self._tracer.enabled:
            self._tracer.wq_issue(
                start, entry.line, entry.bank, entry.is_counter, len(self.wq)
            )
        self._stats.inc("wq", "issued")
        if entry.is_counter:
            self._stats.inc("wq", "counter_issued")
        else:
            self._stats.inc("wq", "data_issued")
        return end

    def _drain_engaged(self) -> bool:
        """Hysteresis: engage at the high watermark, release at the low."""
        occupancy = len(self.wq)
        if self._draining:
            if occupancy <= self.low_watermark:
                self._draining = False
        elif occupancy >= self.high_watermark:
            self._draining = True
        return self._draining

    def advance_to(self, t: float) -> None:
        """Simulate the background drain up to time ``t``.

        The loop is :meth:`_drain_engaged` unrolled inline (identical
        hysteresis semantics, state written back on exit) — this runs
        once per persisted line, before the scheduler has even decided
        whether anything can issue.
        """
        wq = self.wq
        low = self.low_watermark
        high = self.high_watermark
        draining = self._draining
        best_candidate = self._best_candidate
        issue = self._issue
        while True:
            occupancy = len(wq)
            if occupancy == 0:
                break
            if draining:
                if occupancy <= low:
                    draining = False
                    break
            elif occupancy >= high:
                draining = True
            else:
                break
            candidate = best_candidate()
            if candidate is None:
                break
            start, entry = candidate
            if start > t:
                break
            issue(entry, start)
            if start > self.clock:
                self.clock = start
        self._draining = draining
        if t > self.clock:
            self.clock = t

    def drain_all(self) -> float:
        """Issue everything; returns the completion time of the last write."""
        finish = self.clock
        while len(self.wq) > 0:
            candidate = self._best_candidate()
            if candidate is None:  # pragma: no cover - queue always feasible
                raise SimulationError("non-empty write queue with no candidate")
            start, entry = candidate
            finish = max(finish, self._issue(entry, start))
            if start > self.clock:
                self.clock = start
        return finish

    # ------------------------------------------------------------------
    # Append path (persistence domain entry)
    # ------------------------------------------------------------------

    def _make_space(self, t: float, slots: int, core: int = 0) -> float:
        """Drain until ``slots`` queue slots are free; returns stall end."""
        append_time = t
        while not self.wq.has_space(slots):
            candidate = self._best_candidate()
            if candidate is None:  # pragma: no cover - full queue has entries
                raise SimulationError("full write queue with no candidate")
            start, entry = candidate
            self._issue(entry, start)
            if start > self.clock:
                self.clock = start
            append_time = max(append_time, start)
        if append_time > t:
            self._vals[self._k_full_stalls] += 1
            self._vals[self._k_stall_ns] += append_time - t
            if self._tracer.enabled:
                self._tracer.wq_stall(t, append_time - t, core)
        return append_time

    def append_write(
        self,
        t: float,
        line: int,
        bank: Optional[int] = None,
        row: Optional[int] = None,
        is_counter: bool = False,
        payload: Optional[bytes] = None,
        core: int = 0,
    ) -> float:
        """Append one write; returns the time the append completed.

        ``bank``/``row`` default to the data mapping of ``line``; counter
        writes pass their explicit placement from the layout.
        """
        self.advance_to(t)
        self._tracer.sample_tick(t)
        slots = 0 if (is_counter and self.wq.would_coalesce(line)) else 1
        append_time = self._make_space(t, slots, core=core) if slots else t
        entry = WQEntry(
            line=line,
            bank=self.amap.bank_of_line(line) if bank is None else bank,
            row=self.amap.row_of_line(line) if row is None else row,
            is_counter=is_counter,
            enq_time=append_time,
            payload=payload,
            core=core,
        )
        self.wq.append(entry)
        if self._tracer.enabled:
            self._tracer.wq_append(append_time, line, is_counter, len(self.wq))
        return append_time

    def append_pair(
        self,
        t: float,
        data: WQEntry,
        counter: WQEntry,
    ) -> float:
        """Append a data+counter pair atomically (the staging register).

        Both entries enter the queue at the same instant, so the ADR
        domain always holds either both or neither — the crash-consistency
        invariant of Section 3.2. Returns the append time.
        """
        self.advance_to(t)
        self._tracer.sample_tick(t)
        # Re-evaluate coalescibility every time we drain: issuing entries
        # to make space can consume the very counter entry the new counter
        # write would have coalesced with.
        append_time = t
        while True:
            coalesces = self.wq.would_coalesce(counter.line)
            if self.wq.has_space(1 if coalesces else 2):
                break
            candidate = self._best_candidate()
            if candidate is None:  # pragma: no cover - full queue has entries
                raise SimulationError("full write queue with no candidate")
            start, entry = candidate
            self._issue(entry, start)
            if start > self.clock:
                self.clock = start
            append_time = max(append_time, start)
        if append_time > t:
            self._vals[self._k_full_stalls] += 1
            self._vals[self._k_stall_ns] += append_time - t
            if self._tracer.enabled:
                self._tracer.wq_stall(t, append_time - t, data.core)
        data.enq_time = append_time
        counter.enq_time = append_time
        if coalesces:
            # Counter first: its append frees the slot the data needs.
            self.wq.append(counter)
            self.wq.append(data)
        else:
            self.wq.append(data)
            self.wq.append(counter)
        if self._tracer.enabled:
            occupancy = len(self.wq)
            self._tracer.wq_append(append_time, data.line, False, occupancy)
            self._tracer.wq_append(append_time, counter.line, True, occupancy)
        self._vals[self._k_pair_appends] += 1
        return append_time

    # ------------------------------------------------------------------
    # Fast chain (batched replay, tracer disabled, nothing armed)
    # ------------------------------------------------------------------
    #
    # Allocation-free twins of append_write/append_pair/read used by
    # :meth:`repro.sim.engine.CoreEngine.run_batched_replay` through
    # :class:`~repro.core.system.SecureMemorySystem`'s fast persist/read.
    # They skip exactly the operations that are unobservable when the
    # tracer is disabled (``sample_tick``, ``wq_append``/``wq_stall``
    # emissions) and return bare floats instead of result objects.
    # Every queue/bank/stat mutation is identical to the regular methods
    # — differential-tested bit-for-bit by tests/sim/test_batch.py.

    def _advance_fast(self, t: float) -> None:
        """:meth:`advance_to` with the common no-drain case inlined.

        When the drain is disengaged and the queue is below the high
        watermark, :meth:`advance_to`'s loop breaks on its first
        iteration having changed nothing but the clock — so do just
        that without the call and loop setup. Likewise when the drain
        *is* engaged but the memoized candidate (still valid: version
        match, clock not past it) cannot start by ``t`` and the queue is
        above the low watermark: advance_to would probe once and break
        with no state change beyond the clock.
        """
        if not self._draining and len(self.wq) < self.high_watermark:
            if t > self.clock:
                self.clock = t
            return
        cached = self._cand_cache
        if (
            self._draining
            and cached is not None
            and cached[1] > t
            and cached[0] == self.wq.version
            and self.clock <= cached[1]
            and len(self.wq) > self.low_watermark
        ):
            if t > self.clock:
                self.clock = t
            return
        self.advance_to(t)

    def append_write_fast(
        self,
        t: float,
        line: int,
        bank: int,
        row: int,
        is_counter: bool,
        payload: Optional[bytes],
        core: int,
    ) -> float:
        """:meth:`append_write` minus tracer probes; returns append time.

        ``bank``/``row`` are required (the callers always have them),
        saving the per-call None checks.
        """
        self._advance_fast(t)
        slots = 0 if (is_counter and self.wq.would_coalesce(line)) else 1
        append_time = self._make_space_fast(t, slots, core) if slots else t
        self.wq.append(
            WQEntry(
                line=line,
                bank=bank,
                row=row,
                is_counter=is_counter,
                enq_time=append_time,
                payload=payload,
                core=core,
            )
        )
        return append_time

    def _make_space_fast(self, t: float, slots: int, core: int) -> float:
        """:meth:`_make_space` minus the tracer stall emission."""
        wq = self.wq
        if wq.has_space(slots):
            return t
        append_time = t
        while not wq.has_space(slots):
            candidate = self._best_candidate()
            if candidate is None:  # pragma: no cover - full queue has entries
                raise SimulationError("full write queue with no candidate")
            start, entry = candidate
            self._issue(entry, start)
            if start > self.clock:
                self.clock = start
            if start > append_time:
                append_time = start
        if append_time > t:
            self._vals[self._k_full_stalls] += 1
            self._vals[self._k_stall_ns] += append_time - t
        return append_time

    def append_pair_fast(
        self, t: float, data: WQEntry, counter: WQEntry
    ) -> float:
        """:meth:`append_pair` minus tracer probes; returns append time."""
        self._advance_fast(t)
        wq = self.wq
        append_time = t
        while True:
            coalesces = wq.would_coalesce(counter.line)
            if wq.has_space(1 if coalesces else 2):
                break
            candidate = self._best_candidate()
            if candidate is None:  # pragma: no cover - full queue has entries
                raise SimulationError("full write queue with no candidate")
            start, entry = candidate
            self._issue(entry, start)
            if start > self.clock:
                self.clock = start
            if start > append_time:
                append_time = start
        if append_time > t:
            self._vals[self._k_full_stalls] += 1
            self._vals[self._k_stall_ns] += append_time - t
        data.enq_time = append_time
        counter.enq_time = append_time
        if coalesces:
            wq.append(counter)
            wq.append(data)
        else:
            wq.append(data)
            wq.append(counter)
        self._vals[self._k_pair_appends] += 1
        return append_time

    def read_fast(
        self,
        t: float,
        line: int,
        bank: Optional[int] = None,
        row: Optional[int] = None,
    ) -> float:
        """:meth:`read` minus tracer probes; returns the finish time."""
        self._advance_fast(t)
        if self.wq.find_line(line) is not None:
            self._vals[self._k_read_forwards] += 1
            return t + self._bus_ns
        bank_index = self.amap.bank_of_line(line) if bank is None else bank
        row_id = self.amap.row_of_line(line) if row is None else row
        channel = bank_index // self._banks_per_channel
        start = self.bus_free_at[channel]
        if t > start:
            start = t
        self.bus_free_at[channel] = start + self._bus_ns
        end, _ = self.banks[bank_index].service_read(start, row_id)
        self._cand_cache = None
        self._vals[self._k_mc_reads] += 1
        return end

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read(
        self,
        t: float,
        line: int,
        bank: Optional[int] = None,
        row: Optional[int] = None,
    ) -> ReadResult:
        """Service a demand read at time ``t``."""
        self.advance_to(t)
        self._tracer.sample_tick(t)
        if self.wq.find_line(line) is not None:
            self._vals[self._k_read_forwards] += 1
            return ReadResult(finish_time=t + self._bus_ns, source="wq")
        bank_index = self.amap.bank_of_line(line) if bank is None else bank
        row_id = self.amap.row_of_line(line) if row is None else row
        channel = bank_index // self._banks_per_channel
        start = max(t, self.bus_free_at[channel])
        self.bus_free_at[channel] = start + self._bus_ns
        end, hit = self.banks[bank_index].service_read(start, row_id)
        # The read moved bank/bus availability without touching the
        # queue, so the memoized candidate scan no longer holds.
        self._cand_cache = None
        self._vals[self._k_mc_reads] += 1
        return ReadResult(finish_time=end, source="bank", row_hit=hit)

    def read_payload(self, line: int) -> bytes:
        """Functional read: current durable-or-queued image of ``line``.

        Uses the stats-free :meth:`NVMStore.peek` — this path only exists
        in full-fidelity runs, and it must not perturb the "nvm" counters
        that timing-fidelity runs are digest-compared against.
        """
        entry = self.wq.find_line(line)
        if entry is not None and entry.payload is not None:
            return entry.payload
        return self.nvm.peek(line)

    # ------------------------------------------------------------------
    # Crash behaviour
    # ------------------------------------------------------------------

    def adr_flush(self) -> int:
        """Power failure: the ADR battery drains the write queue to NVM.

        Returns the number of entries flushed. Timing is irrelevant — the
        machine is dying; only the functional contents matter.
        """
        entries = self.wq.adr_flush_order()
        for entry in entries:
            self.nvm.write_line(entry.line, entry.payload)
        self.wq.clear()
        self._stats.inc("wq", "adr_flushed", len(entries))
        return len(entries)
