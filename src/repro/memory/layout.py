"""Counter-line placement policies (paper Figure 8).

A counter line holds the split counters of one data page. *Where* that
line lives decides which bank absorbs the write-through counter traffic:

* :class:`SingleBankLayout` (Fig. 8a) — every counter line in one dedicated
  bank, the convention of prior secure-NVM work. Fine for a write-back
  counter cache; a serial bottleneck for a write-through one.
* :class:`SameBankLayout` (Fig. 8b) — counter line co-located with its data
  page's bank. No dedicated-bank bottleneck, but each data write now costs
  its own bank two serial writes.
* :class:`XBankLayout` (Fig. 8c) — SuperMem: counter line in bank
  ``(data_bank + n_banks // 2) mod n_banks``, so data and counter writes
  proceed in parallel on different banks, and the half-ring offset keeps an
  application's contiguous (adjacent-bank) pages from colliding with their
  own counters. The offset is configurable for the ablation benchmark that
  sweeps it.

Counter lines are addressed in an *index extension region* above the data
lines: the counter line of data page ``p`` has line index
``n_data_lines + p``. Physically this corresponds to a reserved counter
region whose internal address bits are arranged to produce the desired bank;
modelling it as (line index, explicit bank) keeps the data-side mapping
untouched, which is the application-transparency requirement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.address import AddressMap, CACHE_LINE_SIZE
from repro.common.config import CounterPlacementPolicy
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CounterPlacement:
    """Physical location of one counter line."""

    line: int
    bank: int
    row: int


class CounterLayout(abc.ABC):
    """Maps a counter block key (page index) to a physical placement."""

    def __init__(self, amap: AddressMap):
        self._amap = amap
        self._base_line = amap.n_lines  # start of the counter extension
        # placement() is pure in (block_key, data_bank) for a constructed
        # layout, and it runs once per persisted line — memoize the frozen
        # results (working sets touch few distinct pages, so this stays
        # small and hits nearly always).
        self._placement_memo: dict = {}

    def counter_line(self, block_key: int) -> int:
        """Line index of the counter line for block ``block_key``."""
        return self._base_line + block_key

    def _row(self, line: int) -> int:
        return (line * CACHE_LINE_SIZE) // self._amap.row_size

    @abc.abstractmethod
    def bank_of(self, block_key: int, data_bank: int) -> int:
        """Bank that stores the counter line for ``block_key``."""

    def placement(self, block_key: int, data_bank: int) -> CounterPlacement:
        """Full placement of the counter line for ``block_key``."""
        key = (block_key, data_bank)
        cached = self._placement_memo.get(key)
        if cached is not None:
            return cached
        line = self.counter_line(block_key)
        result = CounterPlacement(
            line=line,
            bank=self.bank_of(block_key, data_bank),
            row=self._row(line),
        )
        self._placement_memo[key] = result
        return result


class SingleBankLayout(CounterLayout):
    """All counters in one dedicated bank (default: the last bank)."""

    def __init__(self, amap: AddressMap, dedicated_bank: int | None = None):
        super().__init__(amap)
        self.dedicated_bank = (
            amap.n_banks - 1 if dedicated_bank is None else dedicated_bank
        )
        if not 0 <= self.dedicated_bank < amap.n_banks:
            raise ConfigError(
                f"dedicated bank {self.dedicated_bank} outside 0..{amap.n_banks - 1}"
            )

    def bank_of(self, block_key: int, data_bank: int) -> int:
        return self.dedicated_bank


class SameBankLayout(CounterLayout):
    """Counter line in the same bank as its data page."""

    def bank_of(self, block_key: int, data_bank: int) -> int:
        return data_bank


class XBankLayout(CounterLayout):
    """Counter line offset half a ring away from its data bank."""

    def __init__(self, amap: AddressMap, offset: int | None = None):
        super().__init__(amap)
        self.offset = amap.n_banks // 2 if offset is None else offset
        if not 1 <= self.offset < amap.n_banks:
            raise ConfigError(
                f"XBank offset {self.offset} outside 1..{amap.n_banks - 1}"
            )

    def bank_of(self, block_key: int, data_bank: int) -> int:
        return (data_bank + self.offset) % self._amap.n_banks


def make_layout(
    policy: CounterPlacementPolicy,
    amap: AddressMap,
    xbank_offset: int | None = None,
) -> CounterLayout:
    """Build the layout implementing ``policy``."""
    if policy is CounterPlacementPolicy.SINGLE_BANK:
        return SingleBankLayout(amap)
    if policy is CounterPlacementPolicy.SAME_BANK:
        return SameBankLayout(amap)
    if policy is CounterPlacementPolicy.XBANK:
        return XBankLayout(amap, offset=xbank_offset)
    raise ConfigError(f"unknown placement policy {policy!r}")
