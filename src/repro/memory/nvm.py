"""Functional NVM byte store with wear accounting.

The store is the ground truth of what a crash leaves behind: ciphertext
data lines and counter lines that have been *issued* from the write queue
(plus, at crash time, whatever the ADR battery flushes out of the queue —
the controller handles that).

Payloads are optional: timing-only simulations pass ``None`` payloads and
the store then only counts writes (wear), which keeps the hot path free of
byte-string traffic. Functional runs (crash experiments, examples) pass
real 64 B images.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.common.address import CACHE_LINE_SIZE
from repro.common.stats import Stats

#: Image returned for never-written lines.
ZERO_LINE = bytes(CACHE_LINE_SIZE)


class NVMStore:
    """Persistent line-indexed storage.

    Line indices may exceed the data address space: the counter region is
    modelled as an index extension (see :mod:`repro.memory.layout`).
    """

    def __init__(self, stats: Optional[Stats] = None):
        self._lines: Dict[int, bytes] = {}
        self._wear: Counter[int] = Counter()
        self._stats = stats or Stats()
        self._vals = self._stats.raw()
        self._k_writes = ("nvm", "writes")
        self._k_reads = ("nvm", "reads")
        # Per-line ECC/MAC side storage: physically these bits live in the
        # NVM array next to the line, so they persist with it. Used by the
        # Osiris-style recovery (trial decryption against the check bits).
        self._macs: Dict[int, bytes] = {}

    def write_line(self, line: int, payload: Optional[bytes]) -> None:
        """Persist one line. ``None`` payload counts wear only."""
        self._wear[line] += 1
        self._vals[self._k_writes] += 1
        if payload is not None:
            if len(payload) != CACHE_LINE_SIZE:
                raise ValueError(
                    f"NVM lines are {CACHE_LINE_SIZE} bytes, got {len(payload)}"
                )
            self._lines[line] = bytes(payload)

    def read_line(self, line: int) -> bytes:
        """Return the persistent image of a line (zeros if never written)."""
        self._vals[self._k_reads] += 1
        return self._lines.get(line, ZERO_LINE)

    def peek(self, line: int) -> bytes:
        """Stats-free image read (zeros if never written).

        Functional-only paths (plaintext shadow reads, payload forwarding)
        use this so full-fidelity runs count exactly the same "nvm" stats
        as timing-fidelity runs — the bit-identity invariant of
        tests/sim/test_fidelity.py.
        """
        return self._lines.get(line, ZERO_LINE)

    def contains(self, line: int) -> bool:
        """Whether the line has ever been written with a payload."""
        return line in self._lines

    # ------------------------------------------------------------------
    # ECC/MAC side bits (persist with their line)
    # ------------------------------------------------------------------

    def set_mac(self, line: int, mac: bytes) -> None:
        """Store the ECC/MAC check bits of ``line``."""
        self._macs[line] = bytes(mac)

    def get_mac(self, line: int) -> Optional[bytes]:
        """Check bits of ``line`` (None if never written with a MAC)."""
        return self._macs.get(line)

    def snapshot_macs(self) -> Dict[int, bytes]:
        """Copy of all per-line check bits."""
        return dict(self._macs)

    # ------------------------------------------------------------------
    # Wear / endurance accounting
    # ------------------------------------------------------------------

    def wear_of(self, line: int) -> int:
        """Number of writes the line has absorbed."""
        return self._wear[line]

    @property
    def total_writes(self) -> int:
        return sum(self._wear.values())

    @property
    def max_wear(self) -> int:
        """Hottest line's write count (endurance headline number)."""
        return max(self._wear.values(), default=0)

    def wear_histogram(self) -> Counter:
        """Copy of the per-line write counts."""
        return Counter(self._wear)

    # ------------------------------------------------------------------
    # Test / crash-experiment helpers
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of all stored payloads (functional lines only)."""
        return dict(self._lines)

    def __len__(self) -> int:
        return len(self._lines)
