"""Start-Gap wear leveling (Qureshi et al., MICRO 2009) — substrate extension.

Counter-mode encryption concentrates writes on counter lines (one line
absorbs a whole page's counter updates — see
``examples/endurance_analysis.py``), so a deployed secure PCM pairs the
encryption layer with wear leveling. Start-Gap is the canonical low-cost
scheme: one spare line plus two registers remap the whole region with an
algebraic rule, rotating the mapping by one line every ``gap_write_interval``
writes.

Mechanics over a region of ``n`` lines with one spare (``n + 1`` slots):

* ``gap`` points at the unused slot; ``start`` counts completed
  rotations;
* every ``gap_write_interval`` writes, the line just above the gap moves
  into the gap (one extra NVM write) and the gap walks down one slot;
  when the gap wraps, ``start`` advances — after ``n + 1`` gap movements
  every logical line has shifted by one physical slot;
* the logical→physical map is pure arithmetic on (start, gap): no
  remapping table.

This module is self-contained (the simulator's timing path does not remap
by default); tests drive it directly and verify the canonical properties:
bijectivity at every instant, bounded extra writes, and wear spreading
under a hot-line workload.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigError


class StartGapLeveler:
    """Start-Gap remapping over a region of ``n_lines`` logical lines."""

    def __init__(self, n_lines: int, gap_write_interval: int = 100):
        if n_lines < 2:
            raise ConfigError("start-gap needs at least two lines")
        if gap_write_interval < 1:
            raise ConfigError("gap_write_interval must be >= 1")
        self.n_lines = n_lines
        self.n_slots = n_lines + 1  # one spare
        self.gap_write_interval = gap_write_interval
        #: Physical slot currently unused.
        self.gap = self.n_slots - 1
        #: Completed full rotations (mod n_slots).
        self.start = 0
        self._writes_since_move = 0
        #: Extra line copies performed by gap movement (endurance cost).
        self.gap_moves = 0

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def physical_of(self, logical: int) -> int:
        """Physical slot of ``logical`` under the current (start, gap).

        The Start-Gap rule: rotate by ``start`` over the N *lines*, then
        shift past the gap — ``(LA + start) mod N`` lands in 0..N-1 and
        the +1 shift opens the hole at the gap slot, so the map is a
        bijection into the N+1 slots minus the gap at every instant.
        """
        if not 0 <= logical < self.n_lines:
            raise ConfigError(f"logical line {logical} outside region")
        slot = (logical + self.start) % self.n_lines
        if slot >= self.gap:
            slot += 1
        return slot

    def mapping_snapshot(self) -> Dict[int, int]:
        """Full logical -> physical map (test/diagnostic helper)."""
        return {line: self.physical_of(line) for line in range(self.n_lines)}

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def on_write(self, logical: int) -> tuple[int, bool]:
        """Account one write to ``logical``.

        Returns ``(physical_slot, gap_moved)``; when ``gap_moved`` the
        caller must also copy the line just above the old gap into the old
        gap slot (one extra NVM write — already counted in
        :attr:`gap_moves`).
        """
        physical = self.physical_of(logical)
        self._writes_since_move += 1
        moved = False
        if self._writes_since_move >= self.gap_write_interval:
            self._writes_since_move = 0
            self._move_gap()
            moved = True
        return physical, moved

    def _move_gap(self) -> None:
        self.gap_moves += 1
        if self.gap == 0:
            # Gap wraps to the top; one full rotation completes.
            self.gap = self.n_slots - 1
            self.start = (self.start + 1) % self.n_lines
        else:
            self.gap -= 1

    # ------------------------------------------------------------------
    # Endurance accounting
    # ------------------------------------------------------------------

    @property
    def write_overhead(self) -> float:
        """Extra writes per payload write (the Start-Gap paper's ~1 %)."""
        return 1.0 / self.gap_write_interval
