"""The memory controller's ADR-protected write queue with CWC.

Every entry carries the one-bit **counter/data flag** the paper adds
(Section 3.4.3) so counter-write-coalescing scans touch only counter
entries. The queue is FIFO-ordered; the drain scheduler in
:mod:`repro.memory.controller` may issue out of order across banks but
preserves order per line (same line => same bank => FIFO tie-break).

Counter write coalescing (CWC): when a counter line evicted from the
write-through counter cache arrives and an *unissued* counter entry with
the same line index is already queued, the older entry is **removed** and
the new one appended at the tail. Removing (rather than merging the new
content into the older entry's slot) deliberately delays the counter write,
maximising the chance that yet more counter updates coalesce before it
drains — the paper's Figure 10-12 argument. The newer entry always carries
a superset of the older one's updates because both are images of the same
write-through-cached counter line.

The alternative *merge-in-place* policy (update the older entry where it
sits) is implemented for the ablation benchmark.

Durability: the queue sits inside the ADR domain — on a power failure the
battery drains every entry to NVM. ``adr_flush_order()`` exposes the
entries for crash modelling.

Implementation: the FIFO is an insertion-ordered dict keyed by each
entry's monotonic ``seq`` (Python dicts preserve insertion order, and
deleting a key does not disturb it), plus two per-line indices kept in
lockstep — ``line -> [entries in FIFO order]`` for read forwarding and
``line -> [counter entries in FIFO order]`` for CWC. Appends, removals,
:meth:`find_line`, and :meth:`_find_counter` are all O(1) amortised
(per-line buckets hold at most a handful of entries), replacing the
whole-queue linear scans the append/read/drain hot paths used to pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.obs.tracer import NULL_TRACER

#: CWC policies.
CWC_REMOVE_OLDER = "remove-older"
CWC_MERGE_IN_PLACE = "merge-in-place"


@dataclass(slots=True)
class WQEntry:
    """One queued line write.

    ``slots=True``: hundreds of thousands of entries are constructed and
    field-scanned per run, so slot storage (no per-entry ``__dict__``)
    measurably trims both allocation and attribute access.
    """

    line: int
    bank: int
    row: int
    is_counter: bool
    enq_time: float
    payload: Optional[bytes] = None
    core: int = 0
    #: Monotonic sequence number preserving global append order.
    seq: int = field(default=0)


class WriteQueue:
    """Bounded FIFO of pending NVM writes with optional CWC."""

    def __init__(
        self,
        capacity: int,
        stats: Stats,
        cwc_enabled: bool = False,
        cwc_policy: str = CWC_REMOVE_OLDER,
        tracer=NULL_TRACER,
    ):
        if cwc_policy not in (CWC_REMOVE_OLDER, CWC_MERGE_IN_PLACE):
            raise SimulationError(f"unknown CWC policy {cwc_policy!r}")
        self.capacity = capacity
        self.cwc_enabled = cwc_enabled
        self.cwc_policy = cwc_policy
        self._stats = stats
        self._tracer = tracer
        #: FIFO store: seq -> entry, in append (insertion) order.
        self._entries: Dict[int, WQEntry] = {}
        #: line -> queued entries for that line, FIFO order (read forwarding).
        self._by_line: Dict[int, List[WQEntry]] = {}
        #: line -> queued *counter* entries for that line, FIFO order (CWC).
        self._counters_by_line: Dict[int, List[WQEntry]] = {}
        #: bank -> seq-ordered {seq: entry} of queued *data* writes, and the
        #: same for *counter* writes. The drain scheduler's candidate scan
        #: only needs the FIFO-first entry of each bucket (see
        #: ``MemoryController._best_candidate``), so these shrink the scan
        #: from O(queue) to O(banks).
        self.data_by_bank: Dict[int, Dict[int, WQEntry]] = {}
        self.counters_by_bank: Dict[int, Dict[int, WQEntry]] = {}
        #: True while every append's ``enq_time`` has been >= the previous
        #: append's — the precondition for the per-bank candidate scan
        #: (FIFO-first of a bucket then dominates the rest of the bucket).
        #: A single violation (possible under multicore interleaving)
        #: permanently clears it and the controller falls back to the
        #: full-queue scan.
        self.enq_monotone = True
        self._last_enq = float("-inf")
        self._seq = 0
        #: Bumped on every append/removal; the drain scheduler uses it to
        #: reuse its last candidate scan while the queue is unchanged.
        self.version = 0
        # Prebuilt (namespace, counter) keys bumped directly in the shared
        # Stats.raw() dict — exact inc()/maximize() semantics without a
        # method call per append (the append path is per-CLWB hot).
        self._vals = stats.raw()
        self._k_appends = ("wq", "appends")
        self._k_counter_appends = ("wq", "counter_appends")
        self._k_data_appends = ("wq", "data_appends")
        self._k_peak = ("wq", "peak_occupancy")
        self._k_cwc = ("wq", "cwc_coalesced")

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def has_space(self, n: int = 1) -> bool:
        return len(self._entries) + n <= self.capacity

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def _index(self, entry: WQEntry) -> None:
        # get-then-branch instead of setdefault: setdefault allocates a
        # fresh empty container on *every* call just in case, and this
        # runs once per append (the hottest queue path).
        line = entry.line
        bucket = self._by_line.get(line)
        if bucket is None:
            self._by_line[line] = [entry]
        else:
            bucket.append(entry)
        if entry.is_counter:
            bucket = self._counters_by_line.get(line)
            if bucket is None:
                self._counters_by_line[line] = [entry]
            else:
                bucket.append(entry)
            bank_bucket = self.counters_by_bank.get(entry.bank)
            if bank_bucket is None:
                self.counters_by_bank[entry.bank] = {entry.seq: entry}
            else:
                bank_bucket[entry.seq] = entry
        else:
            bank_bucket = self.data_by_bank.get(entry.bank)
            if bank_bucket is None:
                self.data_by_bank[entry.bank] = {entry.seq: entry}
            else:
                bank_bucket[entry.seq] = entry

    def _unindex(self, entry: WQEntry) -> None:
        bucket = self._by_line[entry.line]
        bucket.remove(entry)
        if not bucket:
            del self._by_line[entry.line]
        if entry.is_counter:
            bucket = self._counters_by_line[entry.line]
            bucket.remove(entry)
            if not bucket:
                del self._counters_by_line[entry.line]
            bank_bucket = self.counters_by_bank[entry.bank]
            del bank_bucket[entry.seq]
            if not bank_bucket:
                del self.counters_by_bank[entry.bank]
        else:
            bank_bucket = self.data_by_bank[entry.bank]
            del bank_bucket[entry.seq]
            if not bank_bucket:
                del self.data_by_bank[entry.bank]

    def _delete(self, entry: WQEntry) -> None:
        del self._entries[entry.seq]
        self._unindex(entry)
        self.version += 1

    # ------------------------------------------------------------------
    # Append path (with CWC)
    # ------------------------------------------------------------------

    def append(self, entry: WQEntry) -> bool:
        """Append one entry; returns True if CWC coalesced an older one.

        The caller must have ensured space (after accounting for the
        possible removal — use :meth:`would_coalesce` first when the queue
        is full).
        """
        vals = self._vals
        coalesced = False
        if self.cwc_enabled and entry.is_counter:
            older = self._find_counter(entry.line)
            if older is not None:
                coalesced = True
                vals[self._k_cwc] += 1
                if self._tracer.enabled:
                    self._tracer.wq_coalesce(
                        entry.enq_time, entry.line, self.cwc_policy
                    )
                if self.cwc_policy == CWC_REMOVE_OLDER:
                    self._delete(older)
                else:
                    # merge-in-place: refresh the older slot and stop.
                    older.payload = entry.payload
                    self._count_append(entry)
                    self.version += 1
                    return True
        if self.full:
            raise SimulationError("append to full write queue")
        if entry.enq_time < self._last_enq:
            self.enq_monotone = False
        self._last_enq = entry.enq_time
        entry.seq = self._seq
        self._seq += 1
        self.version += 1
        self._entries[entry.seq] = entry
        self._index(entry)
        self._count_append(entry)
        occupancy = len(self._entries)
        if occupancy > vals[self._k_peak]:
            vals[self._k_peak] = occupancy
        return coalesced

    def _count_append(self, entry: WQEntry) -> None:
        vals = self._vals
        vals[self._k_appends] += 1
        if entry.is_counter:
            vals[self._k_counter_appends] += 1
        else:
            vals[self._k_data_appends] += 1

    def would_coalesce(self, line: int) -> bool:
        """Whether appending a counter write to ``line`` frees a slot."""
        return self.cwc_enabled and self._find_counter(line) is not None

    def _find_counter(self, line: int) -> Optional[WQEntry]:
        # The flag bit makes this an O(1) index lookup; the oldest queued
        # counter entry for the line (FIFO order) is the coalesce target.
        bucket = self._counters_by_line.get(line)
        return bucket[0] if bucket else None

    # ------------------------------------------------------------------
    # Drain side
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[WQEntry]:
        return iter(self._entries.values())

    def remove(self, entry: WQEntry) -> None:
        """Pop a specific entry chosen by the drain scheduler."""
        if self._entries.get(entry.seq) is not entry:
            raise ValueError("entry not in write queue")
        self._delete(entry)

    def find_line(self, line: int) -> Optional[WQEntry]:
        """Youngest queued write to ``line`` (for read forwarding)."""
        bucket = self._by_line.get(line)
        return bucket[-1] if bucket else None

    def oldest(self) -> Optional[WQEntry]:
        return next(iter(self._entries.values())) if self._entries else None

    # ------------------------------------------------------------------
    # Crash behaviour (ADR)
    # ------------------------------------------------------------------

    def adr_flush_order(self) -> List[WQEntry]:
        """Entries in the order the ADR battery drains them on a failure."""
        return list(self._entries.values())

    def clear(self) -> None:
        self._entries.clear()
        self._by_line.clear()
        self._counters_by_line.clear()
        self.data_by_bank.clear()
        self.counters_by_bank.clear()
        self.version += 1
