"""Observability: event tracing, time-series sampling, and exporters.

The simulator's aggregate counters (:mod:`repro.common.stats`) answer *how
much* — how many stalls, how many coalesced counter writes — but the
paper's mechanisms are *dynamic*: the write queue fills in bursts, CWC's
reach depends on how long counter entries linger, XBank's win is a
trajectory of bank occupancy over time. This package records those
dynamics without perturbing them:

* :class:`~repro.obs.tracer.Tracer` — a typed event recorder (write-queue
  append/issue/stall, CWC coalesce, counter-cache hit/miss/evict, per-bank
  busy intervals, OTP/AES latency, transaction spans) injected alongside
  the shared :class:`~repro.common.stats.Stats` object.
* :data:`~repro.obs.tracer.NULL_TRACER` — the disabled default. Every
  component takes a tracer and defaults to this no-op singleton, so an
  un-traced run performs no recording at all (the no-op guarantee tested
  in ``tests/obs/test_noop.py``).
* :class:`~repro.obs.sampler.TimeSeriesSampler` — gauge sampling (WQ
  occupancy, per-bank busy fraction, counter-cache hit rate) on a
  configurable simulated-ns interval.
* :mod:`~repro.obs.export` — Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``) and compact JSONL.
* :mod:`~repro.obs.report` — the ``repro trace-report`` analysis: time-
  bucketed stall/occupancy/coalesce/bank-imbalance breakdown of a trace.
* :mod:`~repro.obs.metrics` — the *fleet* layer: a typed
  Counter/Gauge/Histogram registry with label sets, snapshot + merge,
  Prometheus text exposition, and a zero-overhead
  :data:`~repro.obs.metrics.NULL_METRICS` default mirroring
  ``NULL_TRACER``. The sweep runner is its first client.
* :mod:`~repro.obs.live` / :mod:`~repro.obs.promserve` — the ``--live``
  periodic status reporter (JSONL snapshot stream + ``.prom`` file) and
  the ``repro serve-metrics`` HTTP endpoint over that file.

Nothing in the timing model reads tracer state; tracing can never change
a result.
"""

from repro.obs.events import (
    CAT_BANK,
    CAT_CC,
    CAT_CRYPTO,
    CAT_RUNNER,
    CAT_SAMPLE,
    CAT_TXN,
    CAT_WQ,
    TraceEvent,
)
from repro.obs.histogram import Histogram, nearest_rank
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    MetricsStream,
    NullMetrics,
    prometheus_text,
)
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "CAT_BANK",
    "CAT_CC",
    "CAT_CRYPTO",
    "CAT_RUNNER",
    "CAT_SAMPLE",
    "CAT_TXN",
    "CAT_WQ",
    "Histogram",
    "MetricsRegistry",
    "MetricsStream",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "TimeSeriesSampler",
    "TraceEvent",
    "Tracer",
    "nearest_rank",
    "prometheus_text",
]
