"""Typed trace events and the track/category vocabulary.

Events are recorded in simulated nanoseconds on named *tracks* — one per
bank (``bank.N``), one per core (``core.N``), one each for the write queue,
counter cache, and crypto engine — which the Chrome exporter maps to
threads so Perfetto renders one swimlane per hardware resource.

Phases follow the Chrome trace-event format: ``B``/``E`` begin/end pairs
(used for bank occupancy, which is serialised per bank and therefore
always well nested), ``X`` complete events with a duration (crypto
latency, transactions, stalls — these may overlap across cores), ``I``
instants (appends, coalesces, cache hits), and ``C`` counter events
(sampled gauges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# Event categories (the ``cat`` field of the Chrome format).
CAT_WQ = "wq"
CAT_BANK = "bank"
CAT_CC = "cc"
CAT_CRYPTO = "crypto"
CAT_TXN = "txn"
CAT_SAMPLE = "sample"
#: Harness-level events from the sweep runner (point retries, timeouts,
#: worker deaths, journal resumes) — wall-clock, not simulated time.
CAT_RUNNER = "runner"
#: Timed post-crash recovery (the :mod:`repro.core.recovery_cost` model):
#: per-phase spans and the cost summary, in recovery nanoseconds.
CAT_RECOVERY = "recovery"
#: Design-space auto-tuner events (the :mod:`repro.experiments.tuner`
#: search loop): one instant per step plus prune/improve/result markers —
#: wall-clock, not simulated time.
CAT_TUNER = "tuner"

# Chrome trace-event phases.
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "I"
PH_COUNTER = "C"

# Well-known track names.
TRACK_WQ = "wq"
TRACK_CC = "cc"
TRACK_CRYPTO = "crypto"
TRACK_METRICS = "metrics"
TRACK_RUNNER = "runner"
TRACK_RECOVERY = "recovery"
TRACK_TUNER = "tuner"

# Runner event names (CAT_RUNNER instants on TRACK_RUNNER).
RUNNER_EV_RETRY = "point_retry"
RUNNER_EV_TIMEOUT = "point_timeout"
RUNNER_EV_FAILURE = "point_failure"
RUNNER_EV_RESUME = "point_resume"
RUNNER_EV_FALLBACK = "serial_fallback"

# Recovery event names (CAT_RECOVERY on TRACK_RECOVERY): one ``X`` span
# per recovery phase (rsr-resume, counter-scan, trial-decrypt, log-scan,
# log-replay) and a closing instant carrying every cost counter.
RECOVERY_EV_PHASE = "recovery_phase"
RECOVERY_EV_SUMMARY = "recovery_summary"

# Tuner event names (CAT_TUNER instants on TRACK_TUNER): one per search
# step (``tune_step`` measured / ``tune_prune`` surrogate-screened), an
# improvement marker whenever best-so-far drops, and a closing summary.
TUNER_EV_STEP = "tune_step"
TUNER_EV_PRUNE = "tune_prune"
TUNER_EV_IMPROVE = "tune_improve"
TUNER_EV_RESULT = "tune_result"


def bank_track(index: int) -> str:
    """Track name of bank ``index``."""
    return f"bank.{index}"


def core_track(core: int) -> str:
    """Track name of core ``core``."""
    return f"core.{core}"


@dataclass
class TraceEvent:
    """One recorded event, timestamped in simulated nanoseconds."""

    cat: str
    name: str
    track: str
    ts: float
    ph: str = PH_INSTANT
    #: Duration in ns; meaningful for ``X`` (complete) events only.
    dur: float = 0.0
    args: Optional[Dict[str, Any]] = field(default=None)
