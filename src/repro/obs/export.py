"""Trace exporters: Chrome trace-event JSON and compact JSONL.

The Chrome format (the JSON object form) is what Perfetto and
``chrome://tracing`` load directly: one process for the simulated machine,
one thread per track (core, write queue, counter cache, crypto engine,
bank), timestamps in microseconds. Extra top-level keys are permitted by
the format, so the sampled gauge rows and latency histograms ride along in
the same file — ``repro trace-report`` reads them back from there.

The JSONL stream is the scripting-friendly alternative: one event object
per line, timestamps kept in simulated nanoseconds, no envelope.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.events import PH_COMPLETE, PH_COUNTER, PH_END
from repro.obs.tracer import Tracer

#: The single simulated-machine process in the Chrome trace.
PID = 1

_TRACK_ORDER = ("core.", "wq", "cc", "crypto", "bank.", "metrics")


def _track_sort_key(track: str):
    for rank, prefix in enumerate(_TRACK_ORDER):
        if track == prefix or track.startswith(prefix):
            suffix = track[len(prefix):]
            return (rank, int(suffix) if suffix.isdigit() else 0, track)
    return (len(_TRACK_ORDER), 0, track)


def assign_track_ids(tracks) -> Dict[str, int]:
    """Deterministic track -> tid mapping (cores, queue, cc, crypto, banks)."""
    ordered = sorted(set(tracks), key=_track_sort_key)
    return {track: tid for tid, track in enumerate(ordered, start=1)}


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The tracer's events in Chrome trace-event dict form.

    Events are ordered by timestamp with ``E`` phases winning ties so
    zero-gap begin/end sequences on one track stay properly nested.
    """
    tids = assign_track_ids(event.track for event in tracer.events)
    out: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": PID,
            "tid": 0,
            "args": {"name": "supermem-sim"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    ordered = sorted(
        tracer.events, key=lambda e: (e.ts, 0 if e.ph == PH_END else 1)
    )
    for event in ordered:
        record = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            # Chrome timestamps are microseconds; the simulator runs in ns.
            "ts": event.ts / 1000.0,
            "pid": PID,
            "tid": tids[event.track],
        }
        if event.ph == PH_COMPLETE:
            record["dur"] = event.dur / 1000.0
        if event.ph == PH_COUNTER:
            # Counter events render as a graph of their args values.
            record["args"] = {event.name: event.args["value"]}
        elif event.args is not None:
            record["args"] = event.args
        out.append(record)
    return out


def chrome_trace_dict(tracer: Tracer) -> dict:
    """The full Chrome-format JSON object, gauges and histograms included."""
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": chrome_trace_events(tracer),
        "histograms": {
            name: hist.to_dict() for name, hist in tracer.histograms.items()
        },
    }
    if tracer.sampler is not None:
        payload["samples"] = tracer.sampler.to_dicts()
        payload["sampleIntervalNs"] = tracer.sampler.interval_ns
    return payload


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    payload = chrome_trace_dict(tracer)
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write one JSON object per event (ns timestamps); returns the count."""
    with open(path, "w") as fh:
        for event in sorted(
            tracer.events, key=lambda e: (e.ts, 0 if e.ph == PH_END else 1)
        ):
            record = {
                "ts": event.ts,
                "cat": event.cat,
                "name": event.name,
                "ph": event.ph,
                "track": event.track,
            }
            if event.ph == PH_COMPLETE:
                record["dur"] = event.dur
            if event.args:
                record["args"] = event.args
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
    return len(tracer.events)
