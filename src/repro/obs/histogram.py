"""Fixed-bucket latency histograms with nearest-rank percentiles.

A histogram with a fixed 1-2-5 bucket ladder is all the simulator needs
for latency distributions: recording is O(number of buckets) in the worst
case (a short linear scan — the ladder has ~25 rungs), memory is constant,
and p50/p95/p99 read out directly. Exact values are deliberately not
retained; the buckets *are* the export format.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def nearest_rank(p: float, n: int) -> int:
    """The 1-based nearest-rank index of the p-th percentile of ``n``.

    ``max(1, ceil(p/100 * n))`` — the *single* definition shared by
    :meth:`Histogram.percentile` and
    :meth:`repro.sim.metrics.SimResult.txn_latency_percentile`, so a
    percentile read from a bucketed histogram and one computed from the
    raw sample can never disagree about which observation they mean.
    """
    if not 0 < p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    return max(1, math.ceil(p / 100.0 * n))


def _default_bounds() -> List[float]:
    """1-2-5 ladder from 1 ns to 10 ms (covers every simulated latency)."""
    bounds: List[float] = []
    mag = 1.0
    while mag <= 1e7:
        for mult in (1.0, 2.0, 5.0):
            bounds.append(mag * mult)
        mag *= 10.0
    return bounds


class Histogram:
    """Counts of values falling into fixed, ascending upper-bound buckets.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; values above
    the last bound land in an overflow bucket.
    """

    def __init__(self, bounds: Sequence[float] = ()):
        self.bounds: List[float] = list(bounds) if bounds else _default_bounds()
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        #: counts[i] pairs with bounds[i]; counts[-1] is the overflow.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.n: int = 0
        self.total: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        if self.n == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, resolved to a bucket upper edge.

        Returns the upper bound of the bucket containing the p-th
        percentile observation (the recorded maximum for the overflow
        bucket), 0.0 when empty.
        """
        if self.n == 0:
            return 0.0
        rank = nearest_rank(p, self.n)
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index == len(self.bounds):
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max  # pragma: no cover - counts always sum to n

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one.

        Both histograms must share the same bucket ladder — merging is
        bucket-wise count addition, the operation that combines
        per-worker latency histograms into one fleet distribution
        (:mod:`repro.obs.metrics`). Returns ``self`` for chaining.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bounds: "
                f"{len(self.bounds)} vs {len(other.bounds)} buckets"
            )
        if other.n:
            if self.n == 0 or other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
            self.n += other.n
            self.total += other.total
            for index, count in enumerate(other.counts):
                self.counts[index] += count
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (used by the trace exporters)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "bounds": self.bounds,
            "counts": self.counts,
        }
