"""Live fleet reporting: a periodic status line, JSONL snapshots, and a
Prometheus file snapshot, driven from a background thread.

``repro run ... --live`` starts one :class:`LiveReporter` around the
experiment sweep. Every ``interval_s`` wall-clock seconds it

* prints one human status line to stderr (done/total, completion %,
  points/s throughput, ETA, in-flight workers, retries, failures) built
  from the sweep-runner gauges (:mod:`repro.experiments.runner` installs
  them; see ``docs/OBSERVABILITY.md`` "Fleet metrics");
* appends a full registry snapshot to the metrics JSONL stream riding
  alongside the sweep journal (``kind="snapshot"`` records that
  ``repro sweep-report`` reads back); and
* atomically rewrites the Prometheus text snapshot file that
  ``repro serve-metrics`` serves, so an external scraper watching a
  long sweep sees it move.

The thread only *reads* the registry (plain attribute loads under the
GIL), so it can never perturb the sweep — worst case a status line is
one sample stale.
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, TextIO

from repro.obs.metrics import (
    MetricsRegistry,
    snapshot_value,
    write_prometheus_file,
)


def format_status_line(snapshot: dict, label: str = "sweep") -> str:
    """One human-readable health line from a registry snapshot."""
    done = snapshot_value(snapshot, "repro_sweep_done")
    total = snapshot_value(snapshot, "repro_sweep_points")
    rate = snapshot_value(snapshot, "repro_sweep_points_per_second")
    eta = snapshot_value(snapshot, "repro_sweep_eta_seconds")
    in_flight = snapshot_value(snapshot, "repro_sweep_in_flight")
    retries = snapshot_value(snapshot, "repro_sweep_retries_total")
    failures = snapshot_value(snapshot, "repro_sweep_points_total", ("failed",))
    pct = 100.0 * done / total if total else 0.0
    parts = [
        f"[live] {label}: {int(done)}/{int(total)} ({pct:.1f}%)",
        f"{rate:.2f} pts/s",
        f"eta {eta:.1f}s",
        f"in-flight {int(in_flight)}",
    ]
    if retries:
        parts.append(f"retries {int(retries)}")
    if failures:
        parts.append(f"failures {int(failures)}")
    return " ".join(parts)


class LiveReporter:
    """Background thread publishing registry state on a fixed interval."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 2.0,
        label: str = "sweep",
        prom_path: Optional[str] = None,
        out: Optional[TextIO] = None,
        status: bool = True,
    ):
        if interval_s <= 0:
            raise ValueError(f"live interval must be positive: {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.label = label
        self.prom_path = prom_path
        self.out = out if out is not None else sys.stderr
        self.status = status
        self.emissions = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="live-metrics", daemon=True
        )

    # ------------------------------------------------------------------

    def emit(self, kind: str = "snapshot") -> dict:
        """Publish one snapshot now (also called on every timer tick)."""
        snapshot = self.registry.snapshot()
        if self.status:
            print(format_status_line(snapshot, self.label), file=self.out)
        self.registry.event(kind, metrics=snapshot)
        if self.prom_path is not None:
            write_prometheus_file(snapshot, self.prom_path)
        self.emissions += 1
        return snapshot

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.emit()

    def start(self) -> "LiveReporter":
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop the timer and publish one final snapshot."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=self.interval_s + 5)
        return self.emit(kind="final")
