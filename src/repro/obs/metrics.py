"""Typed fleet metrics: Counter / Gauge / Histogram families with labels.

Where :mod:`repro.obs.tracer` records the dynamics of one *simulated*
machine, this module records the dynamics of the *harness fleet* — the
supervised worker pool, the resume journal, and anything else that runs
for long enough to need live health reporting. The design mirrors the
tracer's rules:

* **Zero overhead when disabled.** The default everywhere is
  :data:`NULL_METRICS`, a singleton whose families are all no-ops and
  whose ``enabled`` flag is ``False``, so instrumented code can guard
  expensive label formatting with ``if metrics.enabled:`` and pay at most
  an attribute load and a branch (the ``NULL_TRACER`` idiom).
* **Typed families, not a generic log call.** A metric is declared once
  with a kind (counter / gauge / histogram), a help string, and its label
  names; every later use goes through the declared family, so the
  exposition schema is stable and the docs-drift test can hold the
  vocabulary to :doc:`docs/OBSERVABILITY.md`.
* **Snapshot + merge.** ``registry.snapshot()`` is a plain JSON-able
  dict; ``registry.merge_snapshot(...)`` folds another snapshot in
  (counters add, gauges combine per their declared merge mode, histograms
  merge bucket-wise) so per-worker registries can be combined into one
  fleet view.
* **Prometheus text exposition.** ``registry.to_prometheus()`` (and the
  module-level :func:`prometheus_text` over a snapshot) emit the standard
  ``text/plain; version=0.0.4`` format — ``# HELP`` / ``# TYPE`` comments,
  escaped labels, cumulative ``_bucket``/``_sum``/``_count`` histogram
  series — validated by ``tools/check_prom_format.py`` in CI and served
  by ``repro serve-metrics``.

An optional :class:`MetricsStream` attached to the registry gives the
sweep runner a JSONL event channel alongside the journal (per-point
completions, failures, periodic snapshots) that ``repro sweep-report``
reads back post-hoc.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.histogram import Histogram

#: Content type a Prometheus scraper expects from a text-format endpoint.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_VALID_KINDS = ("counter", "gauge", "histogram")
_GAUGE_MERGE_MODES = ("last", "sum", "max", "min")


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """A sample value in exposition form (ints without a trailing .0)."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    return ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    )


class _Series:
    """One labelled time series of a family: a scalar or a histogram."""

    __slots__ = ("value", "hist")

    def __init__(self, hist: Optional[Histogram] = None):
        self.value: float = 0.0
        self.hist = hist

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set(self, value: float) -> None:
        self.value = value

    def observe(self, value: float) -> None:
        self.hist.record(value)  # type: ignore[union-attr]


class MetricFamily:
    """A named metric with fixed label names and one series per label set.

    Obtained from :meth:`MetricsRegistry.counter` / ``gauge`` /
    ``histogram``; use :meth:`labels` to get (or create) the series for
    one label-value combination, or call ``inc``/``set``/``observe``
    directly on the family when it has no labels.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str] = (),
        bounds: Sequence[float] = (),
        gauge_merge: str = "last",
    ):
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if gauge_merge not in _GAUGE_MERGE_MODES:
            raise ValueError(f"unknown gauge merge mode {gauge_merge!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds)
        self.gauge_merge = gauge_merge
        self.series: Dict[Tuple[str, ...], _Series] = {}

    # -- series access ---------------------------------------------------

    def labels(self, *values: object) -> _Series:
        """The series for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects {len(self.label_names)} label values "
                f"{self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _Series(
                Histogram(self.bounds) if self.kind == "histogram" else None
            )
        return series

    # Unlabelled convenience: the family itself acts as its only series.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def value(self, *values: object) -> float:
        """Current scalar value of one series (0.0 if never touched)."""
        key = tuple(str(v) for v in values)
        series = self.series.get(key)
        return series.value if series is not None else 0.0

    def total(self) -> float:
        """Sum of every series' scalar value (counters/gauges)."""
        return sum(series.value for series in self.series.values())


class _NullSeries:
    """The no-op series every :data:`NULL_METRICS` family hands out."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullFamily(_NullSeries):
    """A disabled metric family: ``labels(...)`` returns a no-op series."""

    __slots__ = ()
    series: Dict[Tuple[str, ...], _Series] = {}

    def labels(self, *values: object) -> "_NullFamily":
        return self

    def value(self, *values: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0


_NULL_FAMILY = _NullFamily()


class MetricsStream:
    """Append-only JSONL event stream riding alongside the sweep journal.

    The runner appends one record per completed point / failure /
    resume-replay and the live reporter appends periodic registry
    snapshots; ``repro sweep-report`` reads the file back. Records carry
    wall-clock ``ts`` (seconds since the epoch) and a ``kind``
    discriminator. Appends are flushed per record so a killed sweep
    leaves at most a torn final line (tolerated on read, like the
    journal's).
    """

    def __init__(self, path: str):
        self.path = path
        self.records_written = 0

    def event(self, kind: str, **fields: object) -> None:
        record = {"kind": kind, "ts": time.time(), **fields}
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            fh.flush()
        self.records_written += 1


def load_stream(path: str) -> List[Dict[str, object]]:
    """Read a :class:`MetricsStream` file back (torn tail tolerated)."""
    records: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a kill mid-append
            if isinstance(record, dict):
                records.append(record)
    return records


class MetricsRegistry:
    """Holds every declared metric family; snapshot/merge/exposition root.

    Declaring the same name twice returns the existing family (and
    raises if the second declaration disagrees on kind or labels), so
    instrumentation sites can re-declare idempotently.
    """

    enabled = True

    def __init__(self, stream: Optional[MetricsStream] = None):
        self.families: Dict[str, MetricFamily] = {}
        self.stream = stream

    # -- declaration -----------------------------------------------------

    def _declare(self, name: str, kind: str, help: str, **kwargs) -> MetricFamily:
        existing = self.families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(
                kwargs.get("label_names", ())
            ):
                raise ValueError(
                    f"metric {name!r} re-declared with a different "
                    f"kind/label set (was {existing.kind}{existing.label_names})"
                )
            return existing
        family = MetricFamily(name, kind, help, **kwargs)
        self.families[name] = family
        return family

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """A monotonically increasing count (merge: sum)."""
        return self._declare(name, "counter", help, label_names=labels)

    def gauge(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        merge: str = "last",
    ) -> MetricFamily:
        """A point-in-time value; ``merge`` (last/sum/max/min) governs
        how :meth:`merge_snapshot` combines two registries' values."""
        return self._declare(
            name, "gauge", help, label_names=labels, gauge_merge=merge
        )

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        bounds: Sequence[float] = (),
    ) -> MetricFamily:
        """A fixed-bucket distribution (merge: bucket-wise addition)."""
        return self._declare(
            name, "histogram", help, label_names=labels, bounds=bounds
        )

    # -- event stream ----------------------------------------------------

    def event(self, kind: str, **fields: object) -> None:
        """Append one record to the attached JSONL stream (no-op without)."""
        if self.stream is not None:
            self.stream.event(kind, **fields)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain JSON-able dict of every family and series."""
        families: Dict[str, object] = {}
        for name, family in sorted(self.families.items()):
            series = []
            for key in sorted(family.series):
                entry: Dict[str, object] = {"labels": list(key)}
                if family.kind == "histogram":
                    entry["hist"] = family.series[key].hist.to_dict()
                else:
                    entry["value"] = family.series[key].value
                series.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "gauge_merge": family.gauge_merge,
                "series": series,
            }
        return {"families": families}

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges combine according to the
        family's declared merge mode (``last`` takes the incoming value).
        Families unknown to this registry are declared from the snapshot.
        """
        for name, payload in snapshot.get("families", {}).items():  # type: ignore[union-attr]
            kind = payload["kind"]
            family = self._declare(
                name,
                kind,
                payload.get("help", ""),
                label_names=tuple(payload.get("label_names", ())),
                **(
                    {"gauge_merge": payload.get("gauge_merge", "last")}
                    if kind == "gauge"
                    else {}
                ),
            )
            for entry in payload["series"]:
                key = tuple(entry["labels"])
                if kind == "histogram":
                    incoming = _hist_from_dict(entry["hist"])
                    series = family.labels(*key)
                    if series.hist.n == 0 and series.hist.bounds != incoming.bounds:
                        series.hist = incoming
                    else:
                        series.hist.merge(incoming)
                elif kind == "counter":
                    family.labels(*key).inc(entry["value"])
                else:
                    series = family.labels(*key)
                    mode = family.gauge_merge
                    if mode == "sum":
                        series.value += entry["value"]
                    elif mode == "max":
                        series.value = max(series.value, entry["value"])
                    elif mode == "min":
                        series.value = min(series.value, entry["value"])
                    else:  # "last": the incoming snapshot wins
                        series.value = entry["value"]

    # -- exposition ------------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return prometheus_text(self.snapshot())


def _hist_from_dict(payload: Dict[str, object]) -> Histogram:
    """Rebuild a :class:`Histogram` from :meth:`Histogram.to_dict`."""
    hist = Histogram(payload["bounds"])  # type: ignore[arg-type]
    hist.counts = list(payload["counts"])  # type: ignore[arg-type]
    hist.n = int(payload["n"])  # type: ignore[arg-type]
    total = payload.get("total")
    hist.total = (
        float(total)  # type: ignore[arg-type]
        if total is not None
        else float(payload.get("mean", 0.0)) * hist.n  # type: ignore[arg-type]
    )
    hist.min = float(payload.get("min", 0.0))  # type: ignore[arg-type]
    hist.max = float(payload.get("max", 0.0))  # type: ignore[arg-type]
    return hist


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    One ``# HELP`` / ``# TYPE`` pair per family, then one sample line per
    series — histograms expand to cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``, per the format spec.
    """
    lines: List[str] = []
    for name, payload in sorted(snapshot.get("families", {}).items()):  # type: ignore[union-attr]
        kind = payload["kind"]
        help_text = str(payload.get("help", "")).replace("\\", "\\\\").replace(
            "\n", "\\n"
        )
        label_names = tuple(payload.get("label_names", ()))
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in payload["series"]:
            pairs = _label_pairs(label_names, entry["labels"])
            if kind == "histogram":
                hist = entry["hist"]
                cumulative = 0
                for bound, count in zip(hist["bounds"], hist["counts"]):
                    cumulative += count
                    le_pairs = (pairs + "," if pairs else "") + f'le="{_format_value(bound)}"'
                    lines.append(f"{name}_bucket{{{le_pairs}}} {cumulative}")
                inf_pairs = (pairs + "," if pairs else "") + 'le="+Inf"'
                lines.append(f"{name}_bucket{{{inf_pairs}}} {hist['n']}")
                total = float(
                    hist.get("total", float(hist.get("mean", 0.0)) * int(hist["n"]))
                )
                suffix = f"{{{pairs}}}" if pairs else ""
                lines.append(f"{name}_sum{suffix} {_format_value(total)}")
                lines.append(f"{name}_count{suffix} {hist['n']}")
            else:
                suffix = f"{{{pairs}}}" if pairs else ""
                lines.append(f"{name}{suffix} {_format_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_value(
    snapshot: Dict[str, object], name: str, labels: Sequence[str] = ()
) -> float:
    """Read one scalar series out of a snapshot (0.0 when absent)."""
    family = snapshot.get("families", {}).get(name)  # type: ignore[union-attr]
    if not family:
        return 0.0
    want = [str(v) for v in labels]
    for entry in family["series"]:
        if entry["labels"] == want:
            return float(entry.get("value", 0.0))
    return 0.0


def write_prometheus_file(snapshot: Dict[str, object], path: str) -> None:
    """Atomically write a snapshot's exposition text to ``path``.

    Written via a temp file + rename so ``repro serve-metrics`` (or any
    scraper tailing the file) never reads a half-written snapshot.
    """
    text = prometheus_text(snapshot)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class NullMetrics:
    """The disabled registry: every family is a shared no-op.

    Instrumented code holds this by default, so building a harness
    without metrics records nothing and allocates nothing; ``enabled``
    is ``False`` so hot paths can skip label/value construction.
    """

    enabled = False
    families: Dict[str, MetricFamily] = {}
    stream = None

    def counter(self, name, help, labels=()) -> _NullFamily:
        return _NULL_FAMILY

    def gauge(self, name, help, labels=(), merge="last") -> _NullFamily:
        return _NULL_FAMILY

    def histogram(self, name, help, labels=(), bounds=()) -> _NullFamily:
        return _NULL_FAMILY

    def event(self, kind, **fields) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"families": {}}

    def merge_snapshot(self, snapshot) -> None:
        pass

    def to_prometheus(self) -> str:
        return ""


#: The process-wide disabled registry every component defaults to.
NULL_METRICS = NullMetrics()
