"""``repro serve-metrics``: a stdlib Prometheus text-format endpoint.

The first brick of the long-lived sweep-service roadmap item: a sweep
running with ``--live`` atomically rewrites a ``.prom`` snapshot file
(:func:`repro.obs.metrics.write_prometheus_file`), and this module serves
that file over HTTP so a Prometheus scraper — or a plain ``curl`` — can
watch the fleet from outside the process:

    python -m repro run fig13 --jobs 8 --resume sweep.jsonl --live &
    python -m repro serve-metrics sweep.jsonl.prom --port 9464
    curl -s localhost:9464/metrics

Serving from the snapshot file (re-read per request) rather than from an
in-process registry keeps the server fully decoupled from the sweep: the
two are separate processes, either can restart, and one server can
outlive many sweeps. Pure ``http.server`` — no dependencies.

Endpoints: ``/metrics`` (exposition text, 503 until the snapshot file
first appears), ``/healthz`` (liveness), anything else 404.
"""

from __future__ import annotations

import os
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import PROM_CONTENT_TYPE


def build_server(
    prom_path: str, host: str = "127.0.0.1", port: int = 9464, quiet: bool = True
) -> ThreadingHTTPServer:
    """An HTTP server serving ``prom_path`` at ``/metrics`` (not started).

    ``port=0`` binds an ephemeral port (the chosen one is on
    ``server.server_address``) — what the tests use.
    """

    class Handler(BaseHTTPRequestHandler):
        def _respond(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path in ("/", "/metrics"):
                if not os.path.exists(prom_path):
                    self._respond(
                        503,
                        b"# metrics snapshot not written yet\n",
                        PROM_CONTENT_TYPE,
                    )
                    return
                with open(prom_path, "rb") as fh:
                    body = fh.read()
                self._respond(200, body, PROM_CONTENT_TYPE)
            elif self.path == "/healthz":
                self._respond(200, b"ok\n", "text/plain; charset=utf-8")
            else:
                self._respond(404, b"not found\n", "text/plain; charset=utf-8")

        def log_message(self, format: str, *args) -> None:
            if not quiet:
                sys.stderr.write(
                    "[serve-metrics] %s - %s\n" % (self.address_string(), format % args)
                )

    return ThreadingHTTPServer((host, port), Handler)


def serve_metrics(
    prom_path: str, host: str = "127.0.0.1", port: int = 9464
) -> int:
    """Blocking entry point behind ``python -m repro serve-metrics``."""
    httpd = build_server(prom_path, host=host, port=port, quiet=False)
    bound_host, bound_port = httpd.server_address[:2]
    print(
        f"[serve-metrics] serving {prom_path} on http://{bound_host}:{bound_port}/metrics "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("[serve-metrics] stopped", file=sys.stderr)
    finally:
        httpd.server_close()
    return 0
