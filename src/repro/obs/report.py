"""``repro trace-report``: time-bucketed analysis of an exported trace.

Aggregate counters hide the dynamics the paper argues from: *when* the
write queue saturated, how the CWC coalesce rate ramps as counter entries
accumulate residency, whether XBank actually evened bank busy time out
over the whole run or only on average. This module reads a Chrome trace
JSON written by ``repro simulate --trace`` and folds its events into N
equal time buckets ("phases"), reporting per phase:

* write-queue occupancy (mean and peak of the sampled gauge),
* full-queue stall time,
* counter-append and coalesce counts, and the coalesce rate,
* per-bank busy time, folded into the hottest/mean imbalance factor.

Everything derives from the event stream alone, so a trace file is a
self-contained artefact: the report does not need the run's config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PhaseBucket:
    """Aggregated activity of one time slice of the run."""

    start_ns: float
    end_ns: float
    wq_occ_sum: float = 0.0
    wq_occ_n: int = 0
    wq_occ_max: float = 0.0
    stall_ns: float = 0.0
    counter_appends: int = 0
    data_appends: int = 0
    coalesced: int = 0
    bank_busy_ns: Dict[int, float] = field(default_factory=dict)

    @property
    def wq_occ_mean(self) -> float:
        return self.wq_occ_sum / self.wq_occ_n if self.wq_occ_n else 0.0

    @property
    def coalesce_rate(self) -> float:
        """Coalesced fraction of this phase's counter appends."""
        if not self.counter_appends:
            return 0.0
        return self.coalesced / self.counter_appends

    @property
    def bank_imbalance(self) -> float:
        """Hottest bank's busy time over the mean (1.0 = perfectly even)."""
        if not self.bank_busy_ns:
            return 0.0
        mean = sum(self.bank_busy_ns.values()) / len(self.bank_busy_ns)
        return max(self.bank_busy_ns.values()) / mean if mean else 0.0


@dataclass
class TraceReport:
    """The folded trace: phase buckets plus run-level totals."""

    span_ns: float
    buckets: List[PhaseBucket]
    total_stall_ns: float
    total_counter_appends: int
    total_data_appends: int
    total_coalesced: int
    histograms: Dict[str, dict]


def load_chrome_trace(path: str) -> dict:
    """Read a ``--trace`` output file back into its JSON object."""
    with open(path) as fh:
        return json.load(fh)


def _thread_names(events: List[dict]) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event["tid"]] = event["args"]["name"]
    return names


def build_report(payload: dict, n_buckets: int = 12) -> TraceReport:
    """Fold a loaded trace into ``n_buckets`` equal phases."""
    if n_buckets < 1:
        raise ValueError("need at least one bucket")
    events = payload.get("traceEvents", [])
    tracks = _thread_names(events)
    # Timestamps in the file are microseconds (Chrome convention).
    timed = [e for e in events if e.get("ph") != "M"]
    if not timed:
        raise ValueError("trace contains no events")
    t0 = min(e["ts"] for e in timed) * 1000.0
    t1 = max(e["ts"] + e.get("dur", 0.0) for e in timed) * 1000.0
    span = max(t1 - t0, 1.0)
    width = span / n_buckets
    buckets = [
        PhaseBucket(start_ns=t0 + i * width, end_ns=t0 + (i + 1) * width)
        for i in range(n_buckets)
    ]

    def bucket_of(ts_ns: float) -> PhaseBucket:
        index = int((ts_ns - t0) / width)
        return buckets[min(max(index, 0), n_buckets - 1)]

    open_begins: Dict[int, List[float]] = {}
    totals = {"stall": 0.0, "ctr": 0, "data": 0, "coal": 0}
    for event in timed:
        ph = event.get("ph")
        ts_ns = event["ts"] * 1000.0
        name = event.get("name", "")
        cat = event.get("cat", "")
        if cat == "wq":
            bucket = bucket_of(ts_ns)
            if name == "counter_append":
                bucket.counter_appends += 1
                totals["ctr"] += 1
            elif name == "data_append":
                bucket.data_appends += 1
                totals["data"] += 1
            elif name == "cwc_coalesce":
                bucket.coalesced += 1
                totals["coal"] += 1
            elif name == "full_stall":
                bucket.stall_ns += event.get("dur", 0.0) * 1000.0
                totals["stall"] += event.get("dur", 0.0) * 1000.0
        elif ph == "C" and name == "wq.occupancy":
            value = float(event["args"]["wq.occupancy"])
            bucket = bucket_of(ts_ns)
            bucket.wq_occ_sum += value
            bucket.wq_occ_n += 1
            bucket.wq_occ_max = max(bucket.wq_occ_max, value)
        elif cat == "bank" and ph in ("B", "E"):
            track = tracks.get(event["tid"], "")
            if not track.startswith("bank."):
                continue
            bank = int(track.split(".", 1)[1])
            stack = open_begins.setdefault(event["tid"], [])
            if ph == "B":
                stack.append(ts_ns)
            elif stack:
                begin = stack.pop()
                _fold_interval(buckets, t0, width, begin, ts_ns, bank)
    return TraceReport(
        span_ns=span,
        buckets=buckets,
        total_stall_ns=totals["stall"],
        total_counter_appends=totals["ctr"],
        total_data_appends=totals["data"],
        total_coalesced=totals["coal"],
        histograms=payload.get("histograms", {}),
    )


def _fold_interval(
    buckets: List[PhaseBucket],
    t0: float,
    width: float,
    begin: float,
    end: float,
    bank: int,
) -> None:
    """Distribute one bank-busy interval across the buckets it overlaps."""
    first = int((begin - t0) / width)
    last = int((end - t0) / width)
    for index in range(max(first, 0), min(last, len(buckets) - 1) + 1):
        bucket = buckets[index]
        overlap = min(end, bucket.end_ns) - max(begin, bucket.start_ns)
        if overlap > 0:
            bucket.bank_busy_ns[bank] = bucket.bank_busy_ns.get(bank, 0.0) + overlap


def render_report(payload: dict, n_buckets: int = 12) -> str:
    """Human-readable per-phase breakdown of a loaded trace."""
    report = build_report(payload, n_buckets=n_buckets)
    ctr = report.total_counter_appends
    lines = [
        f"trace span: {report.span_ns:.0f} ns in {n_buckets} phases "
        f"({report.span_ns / n_buckets:.0f} ns each)",
        f"totals: stall={report.total_stall_ns:.0f} ns, "
        f"data appends={report.total_data_appends}, "
        f"counter appends={ctr}, "
        f"coalesced={report.total_coalesced} "
        f"({(report.total_coalesced / ctr) if ctr else 0.0:.1%} of counter appends)",
    ]
    txn = report.histograms.get("txn_latency_ns")
    if txn and txn.get("n"):
        lines.append(
            f"txn latency: n={txn['n']} mean={txn['mean']:.0f} ns "
            f"p50={txn['p50']:.0f} p95={txn['p95']:.0f} p99={txn['p99']:.0f}"
        )
    stall = report.histograms.get("wq_stall_ns")
    if stall and stall.get("n"):
        lines.append(
            f"wq stalls: n={stall['n']} mean={stall['mean']:.0f} ns "
            f"p99={stall['p99']:.0f} max={stall['max']:.0f}"
        )
    lines.append(
        f"{'phase':>5} | {'t_start ns':>12} | {'wq occ':>7} | {'wq max':>6} | "
        f"{'stall ns':>9} | {'ctr app':>7} | {'coal':>5} | {'coal %':>7} | "
        f"{'bank imbal':>10}"
    )
    for index, bucket in enumerate(report.buckets):
        lines.append(
            f"{index:>5} | {bucket.start_ns:>12.0f} | {bucket.wq_occ_mean:>7.1f} | "
            f"{bucket.wq_occ_max:>6.0f} | {bucket.stall_ns:>9.0f} | "
            f"{bucket.counter_appends:>7} | {bucket.coalesced:>5} | "
            f"{bucket.coalesce_rate:>7.1%} | {bucket.bank_imbalance:>10.2f}"
        )
    return "\n".join(lines)


def render_report_file(path: str, n_buckets: int = 12) -> str:
    """Load ``path`` and render its per-phase breakdown."""
    return render_report(load_chrome_trace(path), n_buckets=n_buckets)
