"""Time-series gauge sampling on a simulated-time interval.

Components register *gauge providers* — callables mapping the current
simulated time to a value (write-queue occupancy, a bank's cumulative busy
fraction, the counter-cache hit rate). The owning tracer ticks the sampler
from the memory controller's request paths; whenever simulated time has
crossed the sampling interval, every gauge is read and recorded both as a
row (for programmatic access) and as a Chrome ``C`` counter event (so the
series renders as a graph track in Perfetto).

Sampling is event-driven, not clock-driven: during a quiet stretch with no
memory requests nothing advances, so one sample is taken per *crossed*
boundary with the tick's own timestamp rather than back-filling idle
intervals with fabricated points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.obs.events import TRACK_METRICS

GaugeFn = Callable[[float], float]


@dataclass(frozen=True)
class SampleRow:
    """One recorded gauge sample."""

    ts: float
    name: str
    value: float


class TimeSeriesSampler:
    """Samples registered gauges every ``interval_ns`` of simulated time."""

    def __init__(self, interval_ns: float):
        if interval_ns <= 0:
            raise ValueError(f"sample interval must be positive: {interval_ns}")
        self.interval_ns = interval_ns
        self._next_ts = 0.0
        self._gauges: List[Tuple[str, str, GaugeFn]] = []
        self.rows: List[SampleRow] = []

    def register(self, name: str, fn: GaugeFn, track: str = TRACK_METRICS) -> None:
        """Add a gauge; ``fn(ts)`` returns its value at simulated time ts."""
        self._gauges.append((name, track, fn))

    def tick(self, ts: float, emit=None) -> bool:
        """Sample all gauges if ``ts`` crossed the next boundary.

        ``emit(ts, name, value, track)`` (when given) additionally records
        each sample as a counter event — the tracer passes its own gauge
        emitter here. Returns whether a sample was taken.
        """
        if ts < self._next_ts:
            return False
        for name, track, fn in self._gauges:
            value = fn(ts)
            self.rows.append(SampleRow(ts=ts, name=name, value=value))
            if emit is not None:
                emit(ts, name, value, track)
        # One sample per crossed boundary; skip idle gaps entirely.
        periods = int(ts // self.interval_ns) + 1
        self._next_ts = periods * self.interval_ns
        return True

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The (ts, value) points of one gauge, in record order."""
        return [(row.ts, row.value) for row in self.rows if row.name == name]

    def to_dicts(self) -> List[Dict[str, float]]:
        """JSON-friendly rows for the exporters."""
        return [
            {"ts": row.ts, "name": row.name, "value": row.value}
            for row in self.rows
        ]
