"""The event tracer and its disabled no-op twin.

Design rules:

* **Injected alongside the Stats object.** Every component that receives
  the shared :class:`~repro.common.stats.Stats` registry also receives a
  tracer, so a single call site records both the aggregate counter and the
  timestamped event.
* **Zero overhead when disabled.** The default is :data:`NULL_TRACER`, a
  singleton whose methods are all no-ops and whose ``enabled`` flag is
  False. Hot paths guard event emission with ``if tracer.enabled:`` so a
  disabled run performs at most an attribute load and a branch — and no
  argument construction. Timing results are identical either way because
  nothing in the timing model ever reads tracer state.
* **Typed emitters, not a generic log call.** The tracer's surface is the
  event vocabulary of the simulated machine (``wq_append``, ``bank_busy``,
  ``cc_access``, ``crypto``, ``txn``, ...), which keeps instrumentation
  sites honest about what they record and gives the exporters a stable
  schema.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.events import (
    CAT_BANK,
    CAT_CC,
    CAT_CRYPTO,
    CAT_SAMPLE,
    CAT_TXN,
    CAT_WQ,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
    TRACK_CC,
    TRACK_CRYPTO,
    TRACK_WQ,
    TraceEvent,
    bank_track,
    core_track,
)
from repro.obs.histogram import Histogram
from repro.obs.sampler import TimeSeriesSampler


class Tracer:
    """Records typed events, latency histograms, and sampled gauges.

    Parameters
    ----------
    sample_interval_ns:
        When given, a :class:`TimeSeriesSampler` is attached and ticked
        from the memory controller's request paths every ``interval`` of
        simulated time. ``None`` disables gauge sampling (events and
        histograms still record).
    """

    enabled = True

    def __init__(self, sample_interval_ns: Optional[float] = None):
        self.events: List[TraceEvent] = []
        self.histograms: Dict[str, Histogram] = {}
        self.sampler: Optional[TimeSeriesSampler] = (
            TimeSeriesSampler(sample_interval_ns)
            if sample_interval_ns is not None
            else None
        )

    # ------------------------------------------------------------------
    # Low-level recording
    # ------------------------------------------------------------------

    def _emit(
        self,
        cat: str,
        name: str,
        track: str,
        ts: float,
        ph: str = PH_INSTANT,
        dur: float = 0.0,
        args: Optional[dict] = None,
    ) -> None:
        self.events.append(
            TraceEvent(cat=cat, name=name, track=track, ts=ts, ph=ph, dur=dur, args=args)
        )

    def histogram(self, name: str) -> Histogram:
        """The named latency histogram, created on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # ------------------------------------------------------------------
    # Write queue
    # ------------------------------------------------------------------

    def wq_append(self, ts: float, line: int, is_counter: bool, occupancy: int) -> None:
        """A write entered the ADR-protected queue (the durability point)."""
        self._emit(
            CAT_WQ,
            "counter_append" if is_counter else "data_append",
            TRACK_WQ,
            ts,
            args={"line": line, "occupancy": occupancy},
        )
        self.gauge(ts, "wq.occupancy", occupancy, TRACK_WQ)

    def wq_issue(
        self, ts: float, line: int, bank: int, is_counter: bool, occupancy: int
    ) -> None:
        """The drain scheduler sent a queued write to its bank."""
        self._emit(
            CAT_WQ,
            "issue",
            TRACK_WQ,
            ts,
            args={
                "line": line,
                "bank": bank,
                "is_counter": is_counter,
                "occupancy": occupancy,
            },
        )
        self.gauge(ts, "wq.occupancy", occupancy, TRACK_WQ)

    def wq_stall(self, ts: float, dur_ns: float, core: int = 0) -> None:
        """A full queue held up an append for ``dur_ns``."""
        self._emit(
            CAT_WQ,
            "full_stall",
            TRACK_WQ,
            ts,
            ph=PH_COMPLETE,
            dur=dur_ns,
            args={"core": core},
        )
        self.histogram("wq_stall_ns").record(dur_ns)

    def wq_coalesce(self, ts: float, line: int, policy: str) -> None:
        """CWC merged a counter write into an already-queued one."""
        self._emit(CAT_WQ, "cwc_coalesce", TRACK_WQ, ts, args={"line": line, "policy": policy})

    # ------------------------------------------------------------------
    # Banks
    # ------------------------------------------------------------------

    def bank_busy(
        self, start: float, end: float, bank: int, kind: str, row_hit: bool = False
    ) -> None:
        """One bank service interval (``kind``: "write" or "read").

        Emitted as a begin/end pair: bank service is serialised per bank,
        so the pairs are always well nested on their track.
        """
        track = bank_track(bank)
        args = {"kind": kind}
        if kind == "read":
            args["row_hit"] = row_hit
        self._emit(CAT_BANK, kind, track, start, ph=PH_BEGIN, args=args)
        self._emit(CAT_BANK, kind, track, end, ph=PH_END)

    # ------------------------------------------------------------------
    # Counter cache
    # ------------------------------------------------------------------

    def cc_access(self, ts: float, page: int, hit: bool, update: bool) -> None:
        """A counter-cache lookup (read path or counter bump)."""
        self._emit(
            CAT_CC,
            "hit" if hit else "miss",
            TRACK_CC,
            ts,
            args={"page": page, "update": update},
        )

    def cc_evict(self, ts: float, page: int, dirty: bool) -> None:
        """A counter line left the cache (dirty ⇒ a write-back follows)."""
        self._emit(CAT_CC, "evict", TRACK_CC, ts, args={"page": page, "dirty": dirty})

    def cc_fetch(self, ts: float, line: int) -> None:
        """A missing counter line was fetched from NVM."""
        self._emit(CAT_CC, "counter_fetch", TRACK_CC, ts, args={"line": line})

    # ------------------------------------------------------------------
    # Crypto engine
    # ------------------------------------------------------------------

    def crypto(self, ts: float, dur_ns: float, kind: str, line: int) -> None:
        """One AES/OTP pipeline occupancy (``kind``: "otp_write"/"otp_read")."""
        self._emit(
            CAT_CRYPTO,
            kind,
            TRACK_CRYPTO,
            ts,
            ph=PH_COMPLETE,
            dur=dur_ns,
            args={"line": line},
        )
        self.histogram("crypto_ns").record(dur_ns)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def txn(self, start: float, end: float, core: int) -> None:
        """One completed transaction span on a core's track."""
        self._emit(
            CAT_TXN,
            "txn",
            core_track(core),
            start,
            ph=PH_COMPLETE,
            dur=end - start,
            args={"core": core},
        )
        self.histogram("txn_latency_ns").record(end - start)

    # ------------------------------------------------------------------
    # Gauges / sampling
    # ------------------------------------------------------------------

    def gauge(self, ts: float, name: str, value: float, track: str) -> None:
        """Record one gauge value as a Chrome counter event."""
        self._emit(CAT_SAMPLE, name, track, ts, ph=PH_COUNTER, args={"value": value})

    def register_gauge(
        self, name: str, fn: Callable[[float], float], track: str = TRACK_WQ
    ) -> None:
        """Register a sampled gauge provider (no-op without a sampler)."""
        if self.sampler is not None:
            self.sampler.register(name, fn, track)

    def sample_tick(self, ts: float) -> None:
        """Give the sampler a chance to record (called from hot paths)."""
        if self.sampler is not None:
            self.sampler.tick(ts, emit=self.gauge)


class NullTracer:
    """The disabled tracer: every emitter is a no-op.

    Components hold this by default, so building a system without tracing
    records nothing and allocates nothing. ``enabled`` is False so hot
    paths can skip argument construction entirely.
    """

    enabled = False

    #: Shared empty collections so accidental reads behave sensibly.
    events: List[TraceEvent] = []
    histograms: Dict[str, Histogram] = {}
    sampler = None

    def wq_append(self, ts, line, is_counter, occupancy) -> None:
        pass

    def wq_issue(self, ts, line, bank, is_counter, occupancy) -> None:
        pass

    def wq_stall(self, ts, dur_ns, core=0) -> None:
        pass

    def wq_coalesce(self, ts, line, policy) -> None:
        pass

    def bank_busy(self, start, end, bank, kind, row_hit=False) -> None:
        pass

    def cc_access(self, ts, page, hit, update) -> None:
        pass

    def cc_evict(self, ts, page, dirty) -> None:
        pass

    def cc_fetch(self, ts, line) -> None:
        pass

    def crypto(self, ts, dur_ns, kind, line) -> None:
        pass

    def txn(self, start, end, core) -> None:
        pass

    def gauge(self, ts, name, value, track) -> None:
        pass

    def register_gauge(self, name, fn, track=TRACK_WQ) -> None:
        pass

    def sample_tick(self, ts) -> None:
        pass


#: The process-wide disabled tracer every component defaults to.
NULL_TRACER = NullTracer()
