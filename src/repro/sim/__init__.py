"""Trace-driven timing simulation.

* :mod:`repro.sim.engine` — the per-core replay engine: drives one op
  stream through a private cache hierarchy into the shared secure memory
  system, advancing a core-local clock;
* :mod:`repro.sim.simulator` — single-core simulation of one generated
  trace under one scheme;
* :mod:`repro.sim.multicore` — N-program simulation: private L1/L2 per
  core, shared L3, shared memory controller and counter cache, cores
  interleaved by local time (the paper's Figure 14 setup);
* :mod:`repro.sim.metrics` — the :class:`~repro.sim.metrics.SimResult`
  record every experiment consumes.
"""

from repro.sim.engine import CoreEngine
from repro.sim.metrics import SimResult
from repro.sim.multicore import MulticoreSimulator, simulate_multiprogrammed
from repro.sim.profiling import BankProfile, RunProfile, profile_run
from repro.sim.simulator import Simulator, simulate_workload
from repro.sim.tracefile import load_trace, save_trace, trace_summary

__all__ = [
    "CoreEngine",
    "SimResult",
    "MulticoreSimulator",
    "simulate_multiprogrammed",
    "BankProfile",
    "RunProfile",
    "profile_run",
    "Simulator",
    "simulate_workload",
    "load_trace",
    "save_trace",
    "trace_summary",
]
