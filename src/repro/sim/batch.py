"""Flat op arrays for batched trace replay.

A generated trace is a list of small tuples — friendly to build, hostile
to replay: every op pays tuple indexing, a bound-method call, and a
``len(op) > 2`` payload probe inside :meth:`~repro.sim.engine.CoreEngine
.step`. This module decodes a trace *once* into parallel flat arrays —
one ``bytes`` of op kinds plus one list of per-op arguments (line index,
compute nanoseconds, or transaction id) and an optional payload list —
that :meth:`~repro.sim.engine.CoreEngine.run_batched` consumes in chunks
with every per-op attribute lookup hoisted out of the inner loop.

The decode is cached alongside the trace by :mod:`repro.sim.trace_cache`
(one decode per process per trace, like trace generation itself), so a
six-scheme sweep over one (workload, size, seed) point decodes once and
replays the same arrays six times.

Decoding is purely structural — no timing state — so sharing
:class:`TraceArrays` across simulator instances is as sound as sharing
the trace tuples themselves. Replay through the arrays is **bit-identical**
to the scalar path (``tests/sim/test_batch.py`` differential-tests it
across schemes, fidelities, and chunk sizes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.txn.persist import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
    TraceOp,
)

# The batched loop compares raw byte values against these constants and
# relies on load/store being the two smallest opcodes (one `<=` covers
# both). Fail at import time if the encoding ever shifts.
if (OP_LOAD, OP_STORE, OP_CLWB, OP_FENCE, OP_TXN_BEGIN, OP_TXN_END, OP_COMPUTE) != (
    0,
    1,
    2,
    3,
    4,
    5,
    6,
):  # pragma: no cover - a trace-encoding change must update batch.py too
    raise ImportError("trace opcode encoding changed; update repro.sim.batch")


class TraceArrays:
    """One trace decoded into parallel flat arrays.

    ``kinds``
        ``bytes`` of length ``n`` — the opcode of each op (indexing a
        ``bytes`` yields a small int with no allocation).
    ``args``
        Per-op argument: line index for load/store/clwb, nanoseconds for
        compute, transaction id for txn markers, 0 for sfence.
    ``payloads``
        ``None`` for timing traces; for functional traces a list of
        length ``n`` holding each clwb's payload (or ``None``), exactly
        what the scalar ``op[2] if len(op) > 2 else None`` probe yields.
    """

    __slots__ = ("kinds", "args", "payloads", "n")

    def __init__(
        self,
        kinds: bytes,
        args: List[object],
        payloads: Optional[List[Optional[bytes]]],
        n: int,
    ):
        self.kinds = kinds
        self.args = args
        self.payloads = payloads
        self.n = n


# ----------------------------------------------------------------------
# Hierarchy outcome streams
# ----------------------------------------------------------------------
#
# The CPU cache walk (:meth:`repro.cache.hierarchy.CacheHierarchy.access`
# / ``clwb``) is a pure function of the op sequence and the cache
# geometry: SRAM hit/miss decisions, fills, evictions and dirty bits
# never depend on memory-system timing, and the six schemes of a sweep
# share one cache geometry. A sweep therefore replays the *same* walk
# once per scheme. Recording the walk's outcomes once — per-op resolved
# kind, SRAM latency, write-back victims, plus the total cache-stat
# delta — lets every subsequent replay of the same (trace, geometry)
# skip the walk entirely and charge the recorded outcomes, which is
# bit-identical by construction (asserted by tests/sim/test_batch.py).
#
# Resolved per-op kinds consumed by the replay loops (ordered so the
# common cases compare first):
BK_MEM_HIT = 0  #: load/store, SRAM hit, no memory write-back
BK_CLWB_DIRTY = 1  #: clwb of a dirty line (persist required)
BK_MEM_MISS = 2  #: load/store, missed all levels, no write-back
BK_FENCE = 3
BK_TXN_BEGIN = 4
BK_TXN_END = 5
BK_COMPUTE = 6
BK_CLWB_CLEAN = 7  #: clwb of a clean/absent line (no memory traffic)
BK_MEM_HIT_WB = 8  #: hit that pushed dirty victim(s) out of the LLC
BK_MEM_MISS_WB = 9  #: miss that pushed dirty victim(s) out of the LLC


class OutcomeSegment:
    """The recorded hierarchy outcomes of one op segment.

    ``kinds``
        ``bytes`` of resolved ``BK_*`` codes, index-aligned with the
        segment's :class:`TraceArrays`.
    ``lats``
        Per-op SRAM walk latency (meaningful for loads/stores; 0.0
        elsewhere).
    ``wbs``
        Sparse map ``op index -> tuple of victim lines`` for the rare
        ``*_WB`` ops.
    """

    __slots__ = ("kinds", "lats", "wbs")

    def __init__(self, kinds: bytes, lats: List[float], wbs: dict):
        self.kinds = kinds
        self.lats = lats
        self.wbs = wbs


class ReplayOutcomes:
    """One full recording: warmup segment, measured segment, stat delta.

    ``stat_delta`` is the exact delta the hierarchy applied to the cache
    stat namespaces (``l1``/``l2``/``l3``/``hierarchy``) over the whole
    run (warmup + measured); replays apply it in one shot instead of
    bumping per access. Keyed per cache geometry by
    :func:`repro.sim.trace_cache.trace_outcomes`.
    """

    __slots__ = ("main", "warmup", "stat_delta")

    def __init__(
        self,
        main: OutcomeSegment,
        warmup: Optional[OutcomeSegment],
        stat_delta: tuple,
    ):
        self.main = main
        self.warmup = warmup
        self.stat_delta = stat_delta


#: Stat namespaces owned exclusively by the (single-core) cache
#: hierarchy; the recorded ``stat_delta`` covers exactly these.
HIERARCHY_STAT_NAMESPACES = ("l1", "l2", "l3", "hierarchy")


def build_arrays(ops: Sequence[TraceOp]) -> TraceArrays:
    """Decode one op sequence into :class:`TraceArrays`.

    Unknown opcodes raise :class:`~repro.common.errors.SimulationError`
    here — at decode time — mirroring the scalar path's per-op check.
    """
    n = len(ops)
    kinds = bytearray(n)
    args: List[object] = [0] * n
    payloads: Optional[List[Optional[bytes]]] = None
    for i, op in enumerate(ops):
        kind = op[0]
        if not (isinstance(kind, int) and OP_LOAD <= kind <= OP_COMPUTE):
            raise SimulationError(f"unknown trace op {op!r}")
        kinds[i] = kind
        if len(op) > 1:
            args[i] = op[1]
        if kind == OP_CLWB and len(op) > 2 and op[2] is not None:
            if payloads is None:
                payloads = [None] * n
            payloads[i] = op[2]
    return TraceArrays(bytes(kinds), args, payloads, n)
