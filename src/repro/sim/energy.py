"""Energy accounting for a finished run (extension beyond the paper).

The paper argues write reduction primarily through performance, but in
PCM the same reduction is an energy story: array writes cost an order of
magnitude more than reads (RESET/SET current), and AES pads cost per
line. This module converts a run's operation counts into energy with a
transparent constant-per-operation model, so the schemes can be compared
on a joules axis too.

Default constants are representative PCM/CMOS values from the
architecture literature (Lee et al. ISCA'09 ballpark):

=====================  ======== =========================================
line read (array)       2.47 nJ  64 B x ~38.6 pJ/byte (row miss)
line read (row hit)     0.93 nJ  buffer read-out
line write (array)     16.82 nJ  64 B x ~263 pJ/byte RESET/SET mix
AES pad (one line)      0.56 nJ  four AES-128 blocks
SRAM access             0.05 nJ  cache lookup (any level)
=====================  ======== =========================================

Absolute joules are only as good as these constants; the *relative*
numbers between schemes depend only on the op counts the simulator
already validates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (nanojoules)."""

    read_miss_nj: float = 2.47
    read_hit_nj: float = 0.93
    write_nj: float = 16.82
    aes_pad_nj: float = 0.56
    sram_access_nj: float = 0.05


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run, by component (nanojoules)."""

    nvm_reads_nj: float
    nvm_writes_nj: float
    aes_nj: float
    sram_nj: float

    @property
    def total_nj(self) -> float:
        return self.nvm_reads_nj + self.nvm_writes_nj + self.aes_nj + self.sram_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1000.0

    def format(self) -> str:
        total = self.total_nj or 1.0
        parts = [
            ("NVM writes", self.nvm_writes_nj),
            ("NVM reads", self.nvm_reads_nj),
            ("AES", self.aes_nj),
            ("SRAM", self.sram_nj),
        ]
        lines = [f"total: {self.total_uj:.2f} uJ"]
        for name, value in parts:
            lines.append(f"  {name:>10}: {value / 1000:.2f} uJ ({value / total:.1%})")
        return "\n".join(lines)


def energy_of(result: SimResult, model: EnergyModel = EnergyModel(), n_banks: int = 8) -> EnergyBreakdown:
    """Convert a run's statistics into an energy breakdown."""
    stats = result.stats
    row_hits = sum(stats.get(f"bank.{b}", "row_hits") for b in range(n_banks))
    row_misses = sum(stats.get(f"bank.{b}", "row_misses") for b in range(n_banks))
    bank_writes = sum(stats.get(f"bank.{b}", "writes") for b in range(n_banks))

    # One AES pad per encrypted line moved: every counter-carrying data
    # write plus every decrypted read.
    encrypted_writes = stats.get("secmem", "data_writes") if stats.get(
        "cc", "accesses"
    ) else 0
    encrypted_reads = stats.get("cc", "read_accesses")
    aes_ops = encrypted_writes + encrypted_reads

    sram_accesses = sum(
        stats.get(ns, "accesses")
        for ns in ("l1", "l2", "l3", "cc")
    )

    return EnergyBreakdown(
        nvm_reads_nj=row_hits * model.read_hit_nj + row_misses * model.read_miss_nj,
        nvm_writes_nj=bank_writes * model.write_nj,
        aes_nj=aes_ops * model.aes_pad_nj,
        sram_nj=sram_accesses * model.sram_access_nj,
    )
