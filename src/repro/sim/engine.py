"""The per-core trace replay engine.

One :class:`CoreEngine` owns a core's clock and private cache hierarchy and
replays trace ops against the shared :class:`~repro.core.system.
SecureMemorySystem`:

* **loads/stores** walk the hierarchy; misses become memory reads (with
  the counter-cache/OTP overlap inside the system); dirty last-level
  evictions become memory writes through the full encryption path —
  fire-and-forget from the core's perspective, like a hardware write
  buffer;
* **clwb** flushes a dirty line into the persistence domain; the core
  waits for the *append* (durability under ADR), which is where full-
  write-queue stalls — the paper's central bottleneck — surface;
* **sfence** adds the fence cost (appends are already ordered here);
* **txn markers** delimit per-transaction latency measurement.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sram import SetAssociativeCache
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.system import SecureMemorySystem
from repro.obs.tracer import NULL_TRACER
from repro.txn.persist import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
    TraceOp,
)


class CoreEngine:
    """Replays one op stream on one core."""

    def __init__(
        self,
        core_id: int,
        config: SimConfig,
        system: SecureMemorySystem,
        stats: Stats,
        shared_l3: Optional[SetAssociativeCache] = None,
        tracer=NULL_TRACER,
    ):
        self.core_id = core_id
        self.config = config
        self.system = system
        self.stats = stats
        self.tracer = tracer
        prefix = f"core{core_id}." if shared_l3 is not None else ""
        self.hierarchy = CacheHierarchy(
            l1=config.l1,
            l2=config.l2,
            l3=config.l3,
            timing=config.timing,
            stats=stats,
            shared_l3=shared_l3,
            name_prefix=prefix,
        )
        self.clock: float = 0.0
        self.txn_latencies: List[float] = []
        self._txn_start: Optional[float] = None
        self._measuring = True
        # Hoisted timing constants: the reference step re-reads
        # config.timing.<attr> per op; the fast step uses these.
        timing = config.timing
        self._cpu_op_ns = timing.cpu_op_ns
        self._clwb_issue_ns = timing.clwb_issue_ns
        self._sfence_ns = timing.sfence_ns
        # hot_path=False swaps in the straightforward per-op implementation
        # (the differential oracle / slow benchmark leg). Instance-attribute
        # binding shadows the class method, so callers pay no dispatch.
        if not config.hot_path:
            self.step = self._step_ref  # type: ignore[method-assign]

    # ------------------------------------------------------------------

    def set_measuring(self, measuring: bool) -> None:
        """Toggle transaction-latency recording (off during warmup)."""
        self._measuring = measuring

    def step(self, op: TraceOp) -> None:
        """Execute one trace op, advancing this core's clock.

        Fast path: loads/stores drive :meth:`CacheHierarchy.access` (tuple
        result, no outcome allocation) with timing constants pre-hoisted.
        Arithmetic order matches :meth:`_step_ref` operation for operation,
        so clocks — and therefore all stats — are bit-identical.
        """
        kind = op[0]
        if kind == OP_LOAD or kind == OP_STORE:
            clock = self.clock + self._cpu_op_ns
            line = op[1]
            hit_level, latency, writebacks = self.hierarchy.access(
                line, kind == OP_STORE
            )
            clock += latency
            if hit_level is None:
                # Memory access on the critical path (write-allocate fetch
                # for stores, demand read for loads).
                clock = self.system.read_line(clock, line, core=self.core_id).finish_time
            self.clock = clock
            if writebacks:
                # Dirty last-level evictions: asynchronous from the core's
                # view (hardware write buffers), so the clock does not chase
                # them. persistent=False marks them as not-crash-critical
                # (only the SCA scheme differentiates).
                persist = self.system.persist_line
                core = self.core_id
                for victim in writebacks:
                    persist(clock, victim, core=core, persistent=False)
        elif kind == OP_CLWB:
            clock = self.clock + self._clwb_issue_ns
            self.clock = clock
            line = op[1]
            payload = op[2] if len(op) > 2 else None
            if self.hierarchy.clwb(line):
                result = self.system.persist_line(
                    clock, line, payload=payload, core=self.core_id
                )
                # Durability is append time (ADR); the core resumes once
                # the line is accepted into the write queue.
                if result.durable_time > clock:
                    self.clock = result.durable_time
        elif kind == OP_FENCE:
            self.clock += self._sfence_ns
        elif kind == OP_TXN_BEGIN:
            self._txn_start = self.clock
        elif kind == OP_TXN_END:
            if self._txn_start is not None and self._measuring:
                self.txn_latencies.append(self.clock - self._txn_start)
            if self._txn_start is not None and self.tracer.enabled:
                self.tracer.txn(self._txn_start, self.clock, self.core_id)
            self._txn_start = None
        elif kind == OP_COMPUTE:
            self.clock += op[1]
        else:
            raise SimulationError(f"unknown trace op {op!r}")

    def _step_ref(self, op: TraceOp) -> None:
        """Reference step: per-op attribute walks, outcome objects."""
        kind = op[0]
        timing = self.config.timing
        if kind == OP_LOAD:
            self.clock += timing.cpu_op_ns
            self._access(op[1], write=False)
        elif kind == OP_STORE:
            self.clock += timing.cpu_op_ns
            self._access(op[1], write=True)
        elif kind == OP_CLWB:
            self.clock += timing.clwb_issue_ns
            line = op[1]
            payload = op[2] if len(op) > 2 else None
            if self.hierarchy.clwb(line):
                result = self.system.persist_line(
                    self.clock, line, payload=payload, core=self.core_id
                )
                self.clock = max(self.clock, result.durable_time)
        elif kind == OP_FENCE:
            self.clock += timing.sfence_ns
        elif kind == OP_TXN_BEGIN:
            self._txn_start = self.clock
        elif kind == OP_TXN_END:
            if self._txn_start is not None and self._measuring:
                self.txn_latencies.append(self.clock - self._txn_start)
            if self._txn_start is not None and self.tracer.enabled:
                self.tracer.txn(self._txn_start, self.clock, self.core_id)
            self._txn_start = None
        elif kind == OP_COMPUTE:
            self.clock += op[1]
        else:
            raise SimulationError(f"unknown trace op {op!r}")

    def _access(self, line: int, write: bool) -> None:
        outcome = (
            self.hierarchy.write_ref(line) if write else self.hierarchy.read_ref(line)
        )
        self.clock += outcome.latency_ns
        if outcome.hit_level is None:
            result = self.system.read_line(self.clock, line, core=self.core_id)
            self.clock = result.finish_time
        for victim in outcome.memory_writebacks:
            self.system.persist_line(
                self.clock, victim, core=self.core_id, persistent=False
            )

    def run(self, ops) -> None:
        """Replay a whole op sequence."""
        step = self.step
        for op in ops:
            step(op)
