"""The per-core trace replay engine.

One :class:`CoreEngine` owns a core's clock and private cache hierarchy and
replays trace ops against the shared :class:`~repro.core.system.
SecureMemorySystem`:

* **loads/stores** walk the hierarchy; misses become memory reads (with
  the counter-cache/OTP overlap inside the system); dirty last-level
  evictions become memory writes through the full encryption path —
  fire-and-forget from the core's perspective, like a hardware write
  buffer;
* **clwb** flushes a dirty line into the persistence domain; the core
  waits for the *append* (durability under ADR), which is where full-
  write-queue stalls — the paper's central bottleneck — surface;
* **sfence** adds the fence cost (appends are already ordered here);
* **txn markers** delimit per-transaction latency measurement.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sram import SetAssociativeCache
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.system import SecureMemorySystem
from repro.obs.tracer import NULL_TRACER
from repro.sim.batch import (
    BK_CLWB_CLEAN,
    BK_CLWB_DIRTY,
    BK_COMPUTE,
    BK_FENCE,
    BK_MEM_HIT,
    BK_MEM_HIT_WB,
    BK_MEM_MISS,
    BK_MEM_MISS_WB,
    BK_TXN_BEGIN,
    BK_TXN_END,
)
from repro.txn.persist import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
    TraceOp,
)


class CoreEngine:
    """Replays one op stream on one core."""

    def __init__(
        self,
        core_id: int,
        config: SimConfig,
        system: SecureMemorySystem,
        stats: Stats,
        shared_l3: Optional[SetAssociativeCache] = None,
        tracer=NULL_TRACER,
    ):
        self.core_id = core_id
        self.config = config
        self.system = system
        self.stats = stats
        self.tracer = tracer
        prefix = f"core{core_id}." if shared_l3 is not None else ""
        self.hierarchy = CacheHierarchy(
            l1=config.l1,
            l2=config.l2,
            l3=config.l3,
            timing=config.timing,
            stats=stats,
            shared_l3=shared_l3,
            name_prefix=prefix,
        )
        self.clock: float = 0.0
        self.txn_latencies: List[float] = []
        self._txn_start: Optional[float] = None
        self._measuring = True
        # Hoisted timing constants: the reference step re-reads
        # config.timing.<attr> per op; the fast step uses these.
        timing = config.timing
        self._cpu_op_ns = timing.cpu_op_ns
        self._clwb_issue_ns = timing.clwb_issue_ns
        self._sfence_ns = timing.sfence_ns
        # hot_path=False swaps in the straightforward per-op implementation
        # (the differential oracle / slow benchmark leg). Instance-attribute
        # binding shadows the class method, so callers pay no dispatch.
        if not config.hot_path:
            self.step = self._step_ref  # type: ignore[method-assign]

    # ------------------------------------------------------------------

    def set_measuring(self, measuring: bool) -> None:
        """Toggle transaction-latency recording (off during warmup)."""
        self._measuring = measuring

    def step(self, op: TraceOp) -> None:
        """Execute one trace op, advancing this core's clock.

        Fast path: loads/stores drive :meth:`CacheHierarchy.access` (tuple
        result, no outcome allocation) with timing constants pre-hoisted.
        Arithmetic order matches :meth:`_step_ref` operation for operation,
        so clocks — and therefore all stats — are bit-identical.
        """
        kind = op[0]
        if kind == OP_LOAD or kind == OP_STORE:
            clock = self.clock + self._cpu_op_ns
            line = op[1]
            hit_level, latency, writebacks = self.hierarchy.access(
                line, kind == OP_STORE
            )
            clock += latency
            if hit_level is None:
                # Memory access on the critical path (write-allocate fetch
                # for stores, demand read for loads).
                clock = self.system.read_line(clock, line, core=self.core_id).finish_time
            self.clock = clock
            if writebacks:
                # Dirty last-level evictions: asynchronous from the core's
                # view (hardware write buffers), so the clock does not chase
                # them. persistent=False marks them as not-crash-critical
                # (only the SCA scheme differentiates).
                persist = self.system.persist_line
                core = self.core_id
                for victim in writebacks:
                    persist(clock, victim, core=core, persistent=False)
        elif kind == OP_CLWB:
            clock = self.clock + self._clwb_issue_ns
            self.clock = clock
            line = op[1]
            payload = op[2] if len(op) > 2 else None
            if self.hierarchy.clwb(line):
                result = self.system.persist_line(
                    clock, line, payload=payload, core=self.core_id
                )
                # Durability is append time (ADR); the core resumes once
                # the line is accepted into the write queue.
                if result.durable_time > clock:
                    self.clock = result.durable_time
        elif kind == OP_FENCE:
            self.clock += self._sfence_ns
        elif kind == OP_TXN_BEGIN:
            self._txn_start = self.clock
        elif kind == OP_TXN_END:
            if self._txn_start is not None and self._measuring:
                self.txn_latencies.append(self.clock - self._txn_start)
            if self._txn_start is not None and self.tracer.enabled:
                self.tracer.txn(self._txn_start, self.clock, self.core_id)
            self._txn_start = None
        elif kind == OP_COMPUTE:
            self.clock += op[1]
        else:
            raise SimulationError(f"unknown trace op {op!r}")

    def _step_ref(self, op: TraceOp) -> None:
        """Reference step: per-op attribute walks, outcome objects."""
        kind = op[0]
        timing = self.config.timing
        if kind == OP_LOAD:
            self.clock += timing.cpu_op_ns
            self._access(op[1], write=False)
        elif kind == OP_STORE:
            self.clock += timing.cpu_op_ns
            self._access(op[1], write=True)
        elif kind == OP_CLWB:
            self.clock += timing.clwb_issue_ns
            line = op[1]
            payload = op[2] if len(op) > 2 else None
            if self.hierarchy.clwb(line):
                result = self.system.persist_line(
                    self.clock, line, payload=payload, core=self.core_id
                )
                self.clock = max(self.clock, result.durable_time)
        elif kind == OP_FENCE:
            self.clock += timing.sfence_ns
        elif kind == OP_TXN_BEGIN:
            self._txn_start = self.clock
        elif kind == OP_TXN_END:
            if self._txn_start is not None and self._measuring:
                self.txn_latencies.append(self.clock - self._txn_start)
            if self._txn_start is not None and self.tracer.enabled:
                self.tracer.txn(self._txn_start, self.clock, self.core_id)
            self._txn_start = None
        elif kind == OP_COMPUTE:
            self.clock += op[1]
        else:
            raise SimulationError(f"unknown trace op {op!r}")

    def _access(self, line: int, write: bool) -> None:
        outcome = (
            self.hierarchy.write_ref(line) if write else self.hierarchy.read_ref(line)
        )
        self.clock += outcome.latency_ns
        if outcome.hit_level is None:
            result = self.system.read_line(self.clock, line, core=self.core_id)
            self.clock = result.finish_time
        for victim in outcome.memory_writebacks:
            self.system.persist_line(
                self.clock, victim, core=self.core_id, persistent=False
            )

    def run(self, ops) -> None:
        """Replay a whole op sequence."""
        step = self.step
        for op in ops:
            step(op)

    def run_batched(self, arrays, chunk: int = 1024) -> None:
        """Replay pre-decoded :class:`~repro.sim.batch.TraceArrays` in
        chunks of ``chunk`` ops.

        The inner loop is the fast :meth:`step` with everything per-op
        hoisted: no method dispatch, no tuple indexing, no ``self.clock``
        attribute traffic (the clock lives in a local and is published at
        chunk boundaries), no per-op tracer/measuring re-reads. The
        arithmetic sequence matches :meth:`step` operation for operation
        — :meth:`step` never *reads* ``self.clock`` mid-op and the memory
        system takes the clock as an argument — so results are
        bit-identical for every chunk size (``tests/sim/test_batch.py``).
        """
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        kinds = arrays.kinds
        args = arrays.args
        payloads = arrays.payloads
        n = arrays.n
        access = self.hierarchy.access
        clwb = self.hierarchy.clwb
        read_line = self.system.read_line
        persist = self.system.persist_line
        core = self.core_id
        cpu_op_ns = self._cpu_op_ns
        clwb_issue_ns = self._clwb_issue_ns
        sfence_ns = self._sfence_ns
        txn_latencies = self.txn_latencies
        tracer = self.tracer
        tracer_enabled = tracer.enabled
        measuring = self._measuring
        store_k = OP_STORE
        clwb_k = OP_CLWB
        fence_k = OP_FENCE
        begin_k = OP_TXN_BEGIN
        end_k = OP_TXN_END
        clock = self.clock
        txn_start = self._txn_start
        start = 0
        while start < n:
            stop = start + chunk
            if stop > n:
                stop = n
            for i in range(start, stop):
                kind = kinds[i]
                if kind <= store_k:  # OP_LOAD or OP_STORE
                    clock += cpu_op_ns
                    line = args[i]
                    hit_level, latency, writebacks = access(line, kind == store_k)
                    clock += latency
                    if hit_level is None:
                        clock = read_line(clock, line, core=core).finish_time
                    if writebacks:
                        for victim in writebacks:
                            persist(clock, victim, core=core, persistent=False)
                elif kind == clwb_k:
                    clock += clwb_issue_ns
                    line = args[i]
                    if clwb(line):
                        result = persist(
                            clock,
                            line,
                            payload=None if payloads is None else payloads[i],
                            core=core,
                        )
                        if result.durable_time > clock:
                            clock = result.durable_time
                elif kind == fence_k:
                    clock += sfence_ns
                elif kind == begin_k:
                    txn_start = clock
                elif kind == end_k:
                    if txn_start is not None:
                        if measuring:
                            txn_latencies.append(clock - txn_start)
                        if tracer_enabled:
                            tracer.txn(txn_start, clock, core)
                    txn_start = None
                else:  # OP_COMPUTE (build_arrays rejects anything else)
                    clock += args[i]
            self.clock = clock
            start = stop
        self.clock = clock
        self._txn_start = txn_start

    def run_batched_record(
        self, arrays, rec_kinds, rec_lats, rec_wbs, chunk: int = 1024
    ) -> None:
        """:meth:`run_batched`, additionally recording hierarchy outcomes.

        Appends one resolved ``BK_*`` code to ``rec_kinds`` (a
        ``bytearray``) and one SRAM latency to ``rec_lats`` per op, and
        stores write-back victim tuples sparsely in ``rec_wbs`` (op index
        -> tuple). The recording is pure observation: the call sequence
        and arithmetic are exactly :meth:`run_batched`'s, so a recording
        run is bit-identical to a plain one, and the recorded stream
        drives :meth:`run_batched_replay` for later runs of the same
        (trace, cache geometry).
        """
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        kinds = arrays.kinds
        args = arrays.args
        payloads = arrays.payloads
        n = arrays.n
        access = self.hierarchy.access
        clwb = self.hierarchy.clwb
        read_line = self.system.read_line
        persist = self.system.persist_line
        core = self.core_id
        cpu_op_ns = self._cpu_op_ns
        clwb_issue_ns = self._clwb_issue_ns
        sfence_ns = self._sfence_ns
        txn_latencies = self.txn_latencies
        tracer = self.tracer
        tracer_enabled = tracer.enabled
        measuring = self._measuring
        store_k = OP_STORE
        clwb_k = OP_CLWB
        fence_k = OP_FENCE
        begin_k = OP_TXN_BEGIN
        end_k = OP_TXN_END
        kinds_append = rec_kinds.append
        lats_append = rec_lats.append
        base = len(rec_kinds)
        clock = self.clock
        txn_start = self._txn_start
        start = 0
        while start < n:
            stop = start + chunk
            if stop > n:
                stop = n
            for i in range(start, stop):
                kind = kinds[i]
                if kind <= store_k:  # OP_LOAD or OP_STORE
                    clock += cpu_op_ns
                    line = args[i]
                    hit_level, latency, writebacks = access(line, kind == store_k)
                    clock += latency
                    lats_append(latency)
                    if hit_level is None:
                        clock = read_line(clock, line, core=core).finish_time
                        code = BK_MEM_MISS
                    else:
                        code = BK_MEM_HIT
                    if writebacks:
                        rec_wbs[base + i] = tuple(writebacks)
                        code = BK_MEM_MISS_WB if code == BK_MEM_MISS else BK_MEM_HIT_WB
                        for victim in writebacks:
                            persist(clock, victim, core=core, persistent=False)
                    kinds_append(code)
                elif kind == clwb_k:
                    clock += clwb_issue_ns
                    line = args[i]
                    lats_append(0.0)
                    if clwb(line):
                        kinds_append(BK_CLWB_DIRTY)
                        result = persist(
                            clock,
                            line,
                            payload=None if payloads is None else payloads[i],
                            core=core,
                        )
                        if result.durable_time > clock:
                            clock = result.durable_time
                    else:
                        kinds_append(BK_CLWB_CLEAN)
                elif kind == fence_k:
                    clock += sfence_ns
                    kinds_append(BK_FENCE)
                    lats_append(0.0)
                elif kind == begin_k:
                    txn_start = clock
                    kinds_append(BK_TXN_BEGIN)
                    lats_append(0.0)
                elif kind == end_k:
                    if txn_start is not None:
                        if measuring:
                            txn_latencies.append(clock - txn_start)
                        if tracer_enabled:
                            tracer.txn(txn_start, clock, core)
                    txn_start = None
                    kinds_append(BK_TXN_END)
                    lats_append(0.0)
                else:  # OP_COMPUTE (build_arrays rejects anything else)
                    clock += args[i]
                    kinds_append(BK_COMPUTE)
                    lats_append(0.0)
            self.clock = clock
            start = stop
        self.clock = clock
        self._txn_start = txn_start

    def run_batched_replay(self, arrays, segment, chunk: int = 1024) -> None:
        """Replay a recorded hierarchy-outcome ``segment`` over ``arrays``.

        The cache walk is skipped entirely: each op's resolved kind, SRAM
        latency, and write-back victims come from the recording, so an
        SRAM-hit load/store costs two float adds and nothing else. Memory
        traffic (misses, dirty clwbs, write-backs) is driven at exactly
        the clocks and in exactly the order the recording run drove it,
        and the recorded cache-stat delta is applied by the caller
        (:meth:`repro.sim.simulator.Simulator.run`) — so results are
        bit-identical to a walked run.

        When the tracer is disabled and no crash point is armed, memory
        traffic goes through the allocation-free fast chain
        (:meth:`~repro.core.system.SecureMemorySystem.read_line_fast` /
        ``persist_line_fast``), which skips per-op tracer probes, crash
        probes and result-object construction — all unobservable in that
        configuration.
        """
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        if segment.kinds is not None and len(segment.kinds) != arrays.n:
            raise SimulationError(
                "outcome segment does not match op arrays "
                f"({len(segment.kinds)} outcomes, {arrays.n} ops)"
            )
        args = arrays.args
        payloads = arrays.payloads
        n = arrays.n
        bkinds = segment.kinds
        lats = segment.lats
        wbs = segment.wbs
        core = self.core_id
        cpu_op_ns = self._cpu_op_ns
        clwb_issue_ns = self._clwb_issue_ns
        sfence_ns = self._sfence_ns
        txn_latencies = self.txn_latencies
        tracer = self.tracer
        tracer_enabled = tracer.enabled
        measuring = self._measuring
        system = self.system
        fast = (
            not tracer_enabled
            and tracer.sampler is None
            and not system.crash_ctl.armed
        )
        clock = self.clock
        txn_start = self._txn_start
        start = 0
        if fast:
            read_fast = system.read_line_fast
            persist_fast = system.persist_line_fast
            while start < n:
                stop = start + chunk
                if stop > n:
                    stop = n
                for i in range(start, stop):
                    kind = bkinds[i]
                    if kind == BK_MEM_HIT:
                        clock += cpu_op_ns
                        clock += lats[i]
                    elif kind == BK_CLWB_DIRTY:
                        clock += clwb_issue_ns
                        durable = persist_fast(
                            clock,
                            args[i],
                            None if payloads is None else payloads[i],
                            core,
                        )
                        if durable > clock:
                            clock = durable
                    elif kind == BK_MEM_MISS:
                        clock += cpu_op_ns
                        clock += lats[i]
                        clock = read_fast(clock, args[i], core)
                    elif kind == BK_FENCE:
                        clock += sfence_ns
                    elif kind == BK_TXN_BEGIN:
                        txn_start = clock
                    elif kind == BK_TXN_END:
                        if txn_start is not None and measuring:
                            txn_latencies.append(clock - txn_start)
                        txn_start = None
                    elif kind == BK_COMPUTE:
                        clock += args[i]
                    elif kind == BK_CLWB_CLEAN:
                        clock += clwb_issue_ns
                    else:  # BK_MEM_HIT_WB / BK_MEM_MISS_WB
                        clock += cpu_op_ns
                        clock += lats[i]
                        if kind == BK_MEM_MISS_WB:
                            clock = read_fast(clock, args[i], core)
                        for victim in wbs[i]:
                            persist_fast(clock, victim, None, core, False)
                self.clock = clock
                start = stop
        else:
            read_line = system.read_line
            persist = system.persist_line
            while start < n:
                stop = start + chunk
                if stop > n:
                    stop = n
                for i in range(start, stop):
                    kind = bkinds[i]
                    if kind == BK_MEM_HIT:
                        clock += cpu_op_ns
                        clock += lats[i]
                    elif kind == BK_CLWB_DIRTY:
                        clock += clwb_issue_ns
                        result = persist(
                            clock,
                            args[i],
                            payload=None if payloads is None else payloads[i],
                            core=core,
                        )
                        if result.durable_time > clock:
                            clock = result.durable_time
                    elif kind == BK_MEM_MISS:
                        clock += cpu_op_ns
                        clock += lats[i]
                        clock = read_line(clock, args[i], core=core).finish_time
                    elif kind == BK_FENCE:
                        clock += sfence_ns
                    elif kind == BK_TXN_BEGIN:
                        txn_start = clock
                    elif kind == BK_TXN_END:
                        if txn_start is not None:
                            if measuring:
                                txn_latencies.append(clock - txn_start)
                            if tracer_enabled:
                                tracer.txn(txn_start, clock, core)
                        txn_start = None
                    elif kind == BK_COMPUTE:
                        clock += args[i]
                    elif kind == BK_CLWB_CLEAN:
                        clock += clwb_issue_ns
                    else:  # BK_MEM_HIT_WB / BK_MEM_MISS_WB
                        clock += cpu_op_ns
                        clock += lats[i]
                        if kind == BK_MEM_MISS_WB:
                            clock = read_line(clock, args[i], core=core).finish_time
                        for victim in wbs[i]:
                            persist(clock, victim, core=core, persistent=False)
                self.clock = clock
                start = stop
        self.clock = clock
        self._txn_start = txn_start
