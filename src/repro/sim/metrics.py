"""Result records produced by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.stats import Stats
from repro.obs.histogram import nearest_rank


@dataclass
class SimResult:
    """Everything an experiment needs from one simulation run."""

    #: Wall-clock of the run in simulated nanoseconds (CPU retire time of
    #: the last op, or the drain completion if later).
    total_time_ns: float
    #: Per-transaction latencies (TXN_BEGIN -> TXN_END), nanoseconds.
    txn_latencies: List[float] = field(default_factory=list)
    #: The shared statistics registry of the run.
    stats: Stats = field(default_factory=Stats)

    # ------------------------------------------------------------------

    @property
    def n_txns(self) -> int:
        return len(self.txn_latencies)

    @property
    def avg_txn_latency_ns(self) -> float:
        if not self.txn_latencies:
            return 0.0
        return sum(self.txn_latencies) / len(self.txn_latencies)

    def txn_latency_percentile(self, p: float) -> float:
        """Nearest-rank percentile of the transaction latencies.

        The p-th percentile is the smallest recorded latency with at least
        ``p`` percent of the sample at or below it (rank ``ceil(p/100*n)``,
        the shared :func:`repro.obs.histogram.nearest_rank` definition the
        bucketed histograms also use); 0.0 when no transactions were
        measured.
        """
        if not self.txn_latencies:
            return 0.0
        ordered = sorted(self.txn_latencies)
        rank = nearest_rank(p, len(ordered))
        return ordered[rank - 1]

    @property
    def p50_txn_latency_ns(self) -> float:
        return self.txn_latency_percentile(50)

    @property
    def p95_txn_latency_ns(self) -> float:
        return self.txn_latency_percentile(95)

    @property
    def p99_txn_latency_ns(self) -> float:
        return self.txn_latency_percentile(99)

    # -- write traffic --------------------------------------------------

    @property
    def nvm_writes(self) -> int:
        """Write requests that entered the persistence domain."""
        return int(self.stats.get("wq", "appends"))

    @property
    def data_writes(self) -> int:
        return int(self.stats.get("wq", "data_appends"))

    @property
    def counter_writes(self) -> int:
        return int(self.stats.get("wq", "counter_appends"))

    @property
    def coalesced_counter_writes(self) -> int:
        return int(self.stats.get("wq", "cwc_coalesced"))

    @property
    def surviving_writes(self) -> int:
        """Writes after CWC removal (what actually reaches the banks)."""
        return self.nvm_writes - self.coalesced_counter_writes

    # -- counter cache ---------------------------------------------------

    @property
    def counter_cache_hit_rate(self) -> float:
        """Hit rate over all counter-cache accesses (reads and updates)."""
        return self.stats.ratio("cc", "hits", "accesses")

    @property
    def counter_cache_read_hit_rate(self) -> float:
        """Read-path hit rate: the hits that let OTP generation overlap
        the data fetch (what Figure 17a measures)."""
        return self.stats.ratio("cc", "read_hits", "read_accesses")

    # -- stalls -----------------------------------------------------------

    @property
    def wq_stall_ns(self) -> float:
        return self.stats.get("wq", "stall_ns")

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable summary (the ``repro simulate --json`` payload).

        Flattens the headline metrics plus every raw counter of the shared
        statistics registry (as ``"namespace.counter"`` keys).
        """
        return {
            "total_time_ns": self.total_time_ns,
            "n_txns": self.n_txns,
            "avg_txn_latency_ns": self.avg_txn_latency_ns,
            "p50_txn_latency_ns": self.p50_txn_latency_ns,
            "p95_txn_latency_ns": self.p95_txn_latency_ns,
            "p99_txn_latency_ns": self.p99_txn_latency_ns,
            "nvm_writes": self.nvm_writes,
            "data_writes": self.data_writes,
            "counter_writes": self.counter_writes,
            "coalesced_counter_writes": self.coalesced_counter_writes,
            "surviving_writes": self.surviving_writes,
            "counter_cache_hit_rate": self.counter_cache_hit_rate,
            "counter_cache_read_hit_rate": self.counter_cache_read_hit_rate,
            "wq_stall_ns": self.wq_stall_ns,
            "stats": {
                f"{space}.{counter}": value for space, counter, value in self.stats
            },
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"txns={self.n_txns} avg_lat={self.avg_txn_latency_ns:.0f}ns "
            f"writes={self.surviving_writes} (data={self.data_writes}, "
            f"ctr={self.counter_writes}, coalesced={self.coalesced_counter_writes}) "
            f"cc_hit={self.counter_cache_hit_rate:.2%}"
        )
