"""Multi-programmed simulation (paper Figure 14).

``N`` programs run the same workload on different cores, each with a
private L1/L2 and its own physical region (footprint = one bank's worth of
memory, the paper's setup), sharing the L3, the memory controller, the
write queue, and the counter cache. Cores are interleaved by local time:
at each step the core with the smallest clock executes its next op, which
is the standard conservative interleaving for trace-driven multi-core
simulation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.cache.sram import SetAssociativeCache
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import CoreEngine
from repro.sim.metrics import SimResult
from repro.sim.trace_cache import cached_generate_trace, use_store
from repro.txn.persist import TraceOp


class MulticoreSimulator:
    """N cores over one shared memory system."""

    def __init__(self, config: SimConfig, n_cores: int, tracer=None):
        if n_cores < 1:
            raise ConfigError("need at least one core")
        self.config = config
        self.n_cores = n_cores
        self.stats = Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.system = SecureMemorySystem(config, stats=self.stats, tracer=self.tracer)
        shared_l3 = SetAssociativeCache(config.l3, self.stats, "l3")
        self.engines = [
            CoreEngine(
                core,
                config,
                self.system,
                self.stats,
                shared_l3=shared_l3,
                tracer=self.tracer,
            )
            for core in range(n_cores)
        ]

    def run(self, traces: List[List[TraceOp]]) -> SimResult:
        """Interleave one op stream per core by local time."""
        if len(traces) != self.n_cores:
            raise ConfigError(
                f"{self.n_cores} cores but {len(traces)} traces supplied"
            )
        cursors = [0] * self.n_cores
        remaining = sum(len(t) for t in traces)
        while remaining:
            # The core with the smallest local clock (and ops left) steps.
            best = None
            for core, engine in enumerate(self.engines):
                if cursors[core] < len(traces[core]) and (
                    best is None or engine.clock < self.engines[best].clock
                ):
                    best = core
            engine = self.engines[best]
            engine.step(traces[best][cursors[best]])
            cursors[best] += 1
            remaining -= 1
        drain_finish = self.system.drain()
        total = max(max(e.clock for e in self.engines), drain_finish)
        latencies: List[float] = []
        for engine in self.engines:
            latencies.extend(engine.txn_latencies)
        return SimResult(
            total_time_ns=total, txn_latencies=latencies, stats=self.stats
        )


def simulate_multiprogrammed(
    workload: "str | List[str]",
    scheme: Scheme,
    n_programs: Optional[int] = None,
    n_ops: int = 100,
    request_size: int = 1024,
    footprint: Optional[int] = None,
    base_config: Optional[SimConfig] = None,
    seed: int = 1,
    fidelity: str = "timing",
) -> SimResult:
    """The Figure 14 kernel: N programs on N cores.

    ``workload`` is either one name (the paper's homogeneous setup — N
    copies of the same program) or a list of names, one per core, for
    heterogeneous mixes. Each program's footprint defaults to one bank's
    worth of capacity and its heap sits in its own region of the physical
    space, so with ``n_programs == n_banks`` every bank is busy — the
    XBank worst case the paper calls out.

    ``fidelity`` mirrors :func:`~repro.sim.simulator.simulate_workload`:
    ``"timing"`` (default) skips functional byte work, ``"full"`` carries
    payloads through the crypto path; both produce identical timing/stats.
    """
    if isinstance(workload, str):
        if n_programs is None:
            raise ConfigError("n_programs required with a single workload name")
        workloads = [workload] * n_programs
    else:
        workloads = list(workload)
        if n_programs is not None and n_programs != len(workloads):
            raise ConfigError(
                f"n_programs={n_programs} but {len(workloads)} workloads given"
            )
        n_programs = len(workloads)
    if n_programs < 1:
        raise ConfigError("need at least one program")

    cfg = dataclasses.replace(scheme_config(scheme, base_config), fidelity=fidelity)
    use_store(cfg.outcome_store)
    amap = cfg.address_map()
    if footprint is None:
        footprint = amap.bank_size
    region = amap.capacity // n_programs
    traces = []
    for program, name in enumerate(workloads):
        trace = cached_generate_trace(
            name,
            n_ops=n_ops,
            request_size=request_size,
            footprint=min(footprint, region // 4),
            heap_base=program * region,
            heap_capacity=region,
            seed=seed + program,
            track_payloads=cfg.functional,
        )
        traces.append(trace.ops)
    sim = MulticoreSimulator(cfg, n_cores=n_programs)
    return sim.run(traces)
