"""Cross-process outcome store: traces + hierarchy recordings on disk.

The per-process caches of :mod:`repro.sim.trace_cache` make a six-scheme
sweep generate each trace once and record each (trace, cache geometry)
cache walk once — *per process*. Every worker of a ``--jobs 4`` sweep,
every fresh ``repro run``/``repro tune`` invocation, and every CI drill
still pays generation and recording from scratch. This module is the
second tier under that cache: a content-digest-keyed on-disk store that
persists the compact binary form of a generated trace (its op streams,
decoded to :class:`~repro.sim.batch.TraceArrays` on load) and of each
recorded :class:`~repro.sim.batch.ReplayOutcomes` stream, so a fleet of
processes records each (trace, geometry) exactly once.

The store follows the sweep journal's robustness rules
(:mod:`repro.experiments.journal`):

* **Content keys, not positions.** A trace entry is keyed by a sha256
  digest over every :func:`~repro.workloads.generator.generate_trace`
  input; an outcomes entry by that digest plus a digest of the cache
  geometry signature ``(l1, l2, l3, timing)``. Two entries share a key
  iff they would simulate identically.
* **Salted by code version.** :data:`STORE_SALT` plus
  ``repro.__version__`` is folded into every digest, so entries written
  by a different model version become unreachable (and are eventually
  garbage-collected) instead of silently replaying stale results.
* **Torn files are expected.** Every entry carries a length header and a
  trailing sha256 checksum over its payload; a truncated or corrupted
  file reads as a miss (and is unlinked), never as wrong data.
* **Atomic publication.** Entries are written to a per-writer temp file
  and published with ``os.replace``, so concurrent workers racing on the
  same digest are safe: readers see either nothing or a complete entry,
  and the last writer wins with bytes identical to the loser's.

The store is size-capped: after each write the total entry size is
checked against ``cap_bytes`` and least-recently-*used* entries (mtime
order — loads touch mtime) are evicted until the store fits. Every load
path is **bit-identical** to the compute path it replaces — differential
tests in ``tests/sim/test_outcome_store.py`` assert equality of the
decoded op tuples, arrays, outcome streams, and end-to-end results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import struct
from array import array
from typing import Dict, List, Optional, Tuple

from repro.sim.batch import OutcomeSegment, ReplayOutcomes, TraceArrays
from repro.txn.persist import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
)
from repro.workloads.generator import GeneratedTrace

#: Bump when the entry encoding or the simulation model changes in a way
#: that invalidates stored traces/recordings. Folded (with
#: ``repro.__version__``) into every digest, so a bump orphans old
#: entries rather than replaying them.
STORE_SALT = "supermem-outcomes-v1"

#: Default size cap: generous for figure grids (a smoke-scale trace entry
#: is a few KB), small enough that an unattended tuner cannot fill a disk.
DEFAULT_CAP_BYTES = 256 << 20

_MAGIC = b"SMOS"
_VERSION = 1
_KIND_TRACE = 1
_KIND_OUTCOMES = 2
#: magic + version u16 + kind u8 + payload length u64
_HEADER = struct.Struct("<4sHBQ")
_CHECKSUM_LEN = 32

_TRACE_SUFFIX = ".trace"
_OUTCOME_SUFFIX = ".outc"

# ----------------------------------------------------------------------
# Process-wide store accounting (mirrors trace_cache's counter style).
# ----------------------------------------------------------------------

_STAT_KEYS = (
    "trace_hits",
    "trace_misses",
    "outcome_hits",
    "outcome_misses",
    "bytes_read",
    "bytes_written",
)

_stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}


def store_stats() -> Dict[str, int]:
    """Process-wide store counters since :func:`reset_store_stats`.

    ``trace_hits``/``trace_misses`` and ``outcome_hits``/
    ``outcome_misses`` count disk lookups by entry kind (a corrupt entry
    counts as a miss); ``bytes_read``/``bytes_written`` total the entry
    bytes moved. Surfaced by the sweep runner as the
    ``repro_outcome_store_{hits,misses,bytes}_total`` metric families.
    """
    return dict(_stats)


def reset_store_stats() -> None:
    """Zero the process-wide store counters."""
    for key in _STAT_KEYS:
        _stats[key] = 0


# ----------------------------------------------------------------------
# Content digests
# ----------------------------------------------------------------------


def _jsonify(obj: object) -> object:
    if isinstance(obj, enum.Enum):
        return obj.value
    raise TypeError(f"not store-digestable: {obj!r}")


def digest_salt() -> str:
    """The full salt folded into every store digest."""
    from repro import __version__

    return f"{STORE_SALT}:{__version__}"


def _digest(payload: Dict[str, object]) -> str:
    canon = json.dumps(payload, sort_keys=True, default=_jsonify)
    return hashlib.sha256(canon.encode()).hexdigest()


def trace_digest(
    name: str,
    n_ops: int,
    request_size: int,
    footprint: int,
    heap_base: int,
    heap_capacity: Optional[int],
    seed: int,
    warmup_ops: int,
    track_payloads: bool,
) -> str:
    """Content digest over every input that determines a generated trace.

    The same key set :func:`repro.sim.trace_cache.cached_generate_trace`
    memoizes on, plus the version salt.
    """
    return _digest(
        {
            "salt": digest_salt(),
            "kind": "trace",
            "name": name,
            "n_ops": n_ops,
            "request_size": request_size,
            "footprint": footprint,
            "heap_base": heap_base,
            "heap_capacity": heap_capacity,
            "seed": seed,
            "warmup_ops": warmup_ops,
            "track_payloads": track_payloads,
        }
    )


def geometry_digest(cache_sig: Tuple) -> str:
    """Content digest of one cache-geometry signature.

    ``cache_sig`` is the ``(l1, l2, l3, timing)`` tuple of frozen config
    dataclasses that keys recorded outcome streams in the process cache;
    the digest covers every field of each, so two geometries share a
    digest iff their cache walks are identical.
    """
    return _digest(
        {
            "salt": digest_salt(),
            "kind": "geometry",
            "sig": [dataclasses.asdict(part) for part in cache_sig],
        }
    )[:24]


# ----------------------------------------------------------------------
# Binary op-stream encoding (tracefile-style, buffer-resident)
# ----------------------------------------------------------------------

_PACK_B = struct.Struct("<B").pack
_PACK_Q = struct.Struct("<Q").pack
_PACK_D = struct.Struct("<d").pack
_PACK_H = struct.Struct("<H").pack
_UNPACK_Q = struct.Struct("<Q").unpack_from
_UNPACK_D = struct.Struct("<d").unpack_from
_UNPACK_H = struct.Struct("<H").unpack_from


def _pack_ops(buf: bytearray, ops) -> None:
    """Append one op stream to ``buf`` (tracefile per-op encoding).

    CLWB payloads are length-prefixed with ``0`` reserved for ``None``
    (lengths are stored +1), preserving the ``None``-vs-``b""``
    distinction bit-for-bit.
    """
    append = buf.extend
    for op in ops:
        kind = op[0]
        append(_PACK_B(kind))
        if kind <= OP_STORE:  # OP_LOAD or OP_STORE
            append(_PACK_Q(op[1]))
        elif kind == OP_CLWB:
            append(_PACK_Q(op[1]))
            payload = op[2] if len(op) > 2 else None
            if payload is None:
                append(_PACK_H(0))
            else:
                append(_PACK_H(len(payload) + 1))
                append(payload)
        elif kind == OP_FENCE:
            pass
        elif kind in (OP_TXN_BEGIN, OP_TXN_END):
            append(_PACK_Q(op[1]))
        elif kind == OP_COMPUTE:
            append(_PACK_D(op[1]))
        else:
            raise ValueError(f"cannot serialise op {op!r}")


def _unpack_ops(buf: bytes, off: int, n: int) -> Tuple[list, TraceArrays, int]:
    """Decode ``n`` ops from ``buf`` at ``off``.

    Returns the op tuples *and* their :class:`TraceArrays` built in the
    same pass — a store hit pays one decode, never an extra
    :func:`~repro.sim.batch.build_arrays` walk — plus the next offset.
    The arrays match :func:`build_arrays` exactly (``payloads`` stays
    ``None`` unless some clwb actually carries bytes).
    """
    ops: list = []
    ops_append = ops.append
    kinds = bytearray(n)
    args: List[object] = [0] * n
    payloads: Optional[List[Optional[bytes]]] = None
    for i in range(n):
        kind = buf[off]
        off += 1
        kinds[i] = kind
        if kind <= OP_STORE:
            (line,) = _UNPACK_Q(buf, off)
            off += 8
            args[i] = line
            ops_append((kind, line))
        elif kind == OP_CLWB:
            (line,) = _UNPACK_Q(buf, off)
            off += 8
            (plen,) = _UNPACK_H(buf, off)
            off += 2
            if plen:
                payload = bytes(buf[off : off + plen - 1])
                off += plen - 1
                if payloads is None:
                    payloads = [None] * n
                payloads[i] = payload
            else:
                payload = None
            args[i] = line
            ops_append((kind, line, payload))
        elif kind == OP_FENCE:
            ops_append((kind,))
        elif kind in (OP_TXN_BEGIN, OP_TXN_END):
            (txn_id,) = _UNPACK_Q(buf, off)
            off += 8
            args[i] = txn_id
            ops_append((kind, txn_id))
        elif kind == OP_COMPUTE:
            (ns,) = _UNPACK_D(buf, off)
            off += 8
            args[i] = ns
            ops_append((kind, ns))
        else:
            raise ValueError(f"unknown opcode {kind} in store entry")
    return ops, TraceArrays(bytes(kinds), args, payloads, n), off


def _encode_trace(trace: GeneratedTrace) -> bytes:
    """The store payload of one generated trace: metadata + op streams."""
    meta = json.dumps(
        {
            "workload_name": trace.workload_name,
            "request_size": trace.request_size,
            "footprint": trace.footprint,
            "n_ops": trace.n_ops,
            "seed": trace.seed,
        },
        sort_keys=True,
    ).encode()
    buf = bytearray()
    buf += _PACK_Q(len(meta))
    buf += meta
    buf += _PACK_Q(len(trace.ops))
    buf += _PACK_Q(len(trace.warmup_ops))
    _pack_ops(buf, trace.ops)
    _pack_ops(buf, trace.warmup_ops)
    return bytes(buf)


def _decode_trace(payload: bytes) -> GeneratedTrace:
    """Rebuild a :class:`GeneratedTrace` (with replay arrays attached)."""
    (meta_len,) = _UNPACK_Q(payload, 0)
    off = 8 + meta_len
    meta = json.loads(payload[8:off].decode())
    (n_main,) = _UNPACK_Q(payload, off)
    (n_warm,) = _UNPACK_Q(payload, off + 8)
    off += 16
    ops, arrays, off = _unpack_ops(payload, off, n_main)
    warmup, warm_arrays, off = _unpack_ops(payload, off, n_warm)
    if off != len(payload):
        raise ValueError("trailing bytes in trace entry")
    trace = GeneratedTrace(
        ops=ops,
        workload_name=meta["workload_name"],
        request_size=meta["request_size"],
        footprint=meta["footprint"],
        n_ops=meta["n_ops"],
        seed=meta["seed"],
        warmup_ops=warmup,
    )
    trace.replay_arrays = arrays
    if n_warm:
        trace.warmup_replay_arrays = warm_arrays
    return trace


# ----------------------------------------------------------------------
# Outcome-stream encoding
# ----------------------------------------------------------------------


def _pack_segment(buf: bytearray, segment: OutcomeSegment) -> None:
    n = len(segment.kinds)
    buf += _PACK_Q(n)
    buf += segment.kinds
    buf += array("d", segment.lats).tobytes()
    wbs = segment.wbs
    buf += _PACK_Q(len(wbs))
    for index in sorted(wbs):
        victims = wbs[index]
        buf += _PACK_Q(index)
        buf += _PACK_H(len(victims))
        for victim in victims:
            buf += _PACK_Q(victim)


def _unpack_segment(buf: bytes, off: int) -> Tuple[OutcomeSegment, int]:
    (n,) = _UNPACK_Q(buf, off)
    off += 8
    kinds = bytes(buf[off : off + n])
    off += n
    lats = array("d")
    lats.frombytes(buf[off : off + 8 * n])
    off += 8 * n
    (n_wbs,) = _UNPACK_Q(buf, off)
    off += 8
    wbs: dict = {}
    for _ in range(n_wbs):
        (index,) = _UNPACK_Q(buf, off)
        off += 8
        (n_vict,) = _UNPACK_H(buf, off)
        off += 2
        victims = []
        for _ in range(n_vict):
            (victim,) = _UNPACK_Q(buf, off)
            off += 8
            victims.append(victim)
        wbs[index] = tuple(victims)
    return OutcomeSegment(kinds, list(lats), wbs), off


def _encode_outcomes(outcomes: ReplayOutcomes) -> bytes:
    """The store payload of one recorded hierarchy outcome stream.

    Kinds travel as raw bytes, latencies as ``array('d')`` (f64
    round-trips are exact), write-back maps sparsely; the stat delta
    rides as JSON because JSON preserves the int-vs-float distinction
    the replay's ``vals[key] += delta`` bumps rely on.
    """
    buf = bytearray()
    buf += _PACK_B(1 if outcomes.warmup is not None else 0)
    _pack_segment(buf, outcomes.main)
    if outcomes.warmup is not None:
        _pack_segment(buf, outcomes.warmup)
    delta = json.dumps(
        [[list(key), value] for key, value in outcomes.stat_delta],
        sort_keys=False,
    ).encode()
    buf += _PACK_Q(len(delta))
    buf += delta
    return bytes(buf)


def _decode_outcomes(payload: bytes) -> ReplayOutcomes:
    has_warmup = payload[0]
    main, off = _unpack_segment(payload, 1)
    warmup = None
    if has_warmup:
        warmup, off = _unpack_segment(payload, off)
    (delta_len,) = _UNPACK_Q(payload, off)
    off += 8
    delta_raw = json.loads(payload[off : off + delta_len].decode())
    if off + delta_len != len(payload):
        raise ValueError("trailing bytes in outcomes entry")
    stat_delta = tuple((tuple(key), value) for key, value in delta_raw)
    return ReplayOutcomes(main, warmup, stat_delta)


# ----------------------------------------------------------------------
# The store itself
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EntryInfo:
    """One on-disk entry, as reported by :meth:`OutcomeStore.entries`."""

    name: str
    kind: str  # "trace" / "outcomes" / "other"
    size: int
    mtime: float


class OutcomeStore:
    """A directory of digest-named, checksummed, atomically-written entries.

    ``root`` is created on first use. One file per entry:
    ``<trace-digest>.trace`` holds a trace's op streams,
    ``<trace-digest>-<geometry-digest>.outc`` one recorded outcome
    stream. Writers publish via temp file + ``os.replace``; readers
    verify the header and payload checksum and treat any mismatch as a
    miss (unlinking the bad file). Loads touch mtime, and :meth:`gc`
    evicts oldest-mtime entries beyond ``cap_bytes`` — LRU by access.
    """

    def __init__(self, root: str, cap_bytes: Optional[int] = None):
        self.root = os.path.abspath(root)
        self.cap_bytes = DEFAULT_CAP_BYTES if cap_bytes is None else cap_bytes
        os.makedirs(self.root, exist_ok=True)
        self._tmp_seq = 0

    # -- entry files -----------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _write_entry(self, name: str, kind: int, payload: bytes) -> None:
        data = (
            _HEADER.pack(_MAGIC, _VERSION, kind, len(payload))
            + payload
            + hashlib.sha256(payload).digest()
        )
        self._tmp_seq += 1
        tmp = self._path(f".tmp.{os.getpid()}.{self._tmp_seq}.{name}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._path(name))
        except OSError:
            # A full disk or vanished directory degrades the store to a
            # pass-through; the compute path still has the result.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        _stats["bytes_written"] += len(data)
        self.gc()

    def _read_entry(self, name: str, kind: int) -> Optional[bytes]:
        path = self._path(name)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        header_len = _HEADER.size
        if len(data) < header_len + _CHECKSUM_LEN:
            self._drop(path)
            return None
        magic, version, entry_kind, payload_len = _HEADER.unpack_from(data)
        if (
            magic != _MAGIC
            or version != _VERSION
            or entry_kind != kind
            or len(data) != header_len + payload_len + _CHECKSUM_LEN
        ):
            self._drop(path)
            return None
        payload = data[header_len : header_len + payload_len]
        if hashlib.sha256(payload).digest() != data[header_len + payload_len :]:
            self._drop(path)
            return None
        _stats["bytes_read"] += len(data)
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return payload

    @staticmethod
    def _drop(path: str) -> None:
        """Best-effort unlink of a torn/corrupt entry."""
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- traces ----------------------------------------------------------

    def load_trace(self, digest: str) -> Optional[GeneratedTrace]:
        """The stored trace for ``digest`` (arrays attached), or ``None``."""
        payload = self._read_entry(digest + _TRACE_SUFFIX, _KIND_TRACE)
        if payload is None:
            _stats["trace_misses"] += 1
            return None
        try:
            trace = _decode_trace(payload)
        except (ValueError, KeyError, IndexError, struct.error, UnicodeDecodeError):
            self._drop(self._path(digest + _TRACE_SUFFIX))
            _stats["trace_misses"] += 1
            return None
        _stats["trace_hits"] += 1
        return trace

    def save_trace(self, digest: str, trace: GeneratedTrace) -> None:
        """Persist one generated trace under its content digest."""
        self._write_entry(digest + _TRACE_SUFFIX, _KIND_TRACE, _encode_trace(trace))

    # -- outcome streams -------------------------------------------------

    @staticmethod
    def _outcome_name(trace_digest_: str, cache_sig: Tuple) -> str:
        return f"{trace_digest_}-{geometry_digest(cache_sig)}{_OUTCOME_SUFFIX}"

    def load_outcomes(
        self,
        trace_digest_: str,
        cache_sig: Tuple,
        n_main: Optional[int] = None,
        n_warm: Optional[int] = None,
    ) -> Optional[ReplayOutcomes]:
        """The stored recording for (trace digest, geometry), or ``None``.

        ``n_main``/``n_warm`` let the caller assert the recording matches
        its trace — a mismatched entry (impossible short of a digest
        collision, but cheap to check) reads as a miss.
        """
        name = self._outcome_name(trace_digest_, cache_sig)
        payload = self._read_entry(name, _KIND_OUTCOMES)
        if payload is None:
            _stats["outcome_misses"] += 1
            return None
        try:
            outcomes = _decode_outcomes(payload)
        except (ValueError, KeyError, IndexError, struct.error, UnicodeDecodeError):
            self._drop(self._path(name))
            _stats["outcome_misses"] += 1
            return None
        recorded_warm = 0 if outcomes.warmup is None else len(outcomes.warmup.kinds)
        if (n_main is not None and len(outcomes.main.kinds) != n_main) or (
            n_warm is not None and recorded_warm != n_warm
        ):
            self._drop(self._path(name))
            _stats["outcome_misses"] += 1
            return None
        _stats["outcome_hits"] += 1
        return outcomes

    def save_outcomes(
        self, trace_digest_: str, cache_sig: Tuple, outcomes: ReplayOutcomes
    ) -> None:
        """Persist one recorded outcome stream for (trace, geometry)."""
        self._write_entry(
            self._outcome_name(trace_digest_, cache_sig),
            _KIND_OUTCOMES,
            _encode_outcomes(outcomes),
        )

    # -- inspection / GC -------------------------------------------------

    def entries(self) -> List[EntryInfo]:
        """Every published entry, oldest mtime first (in-flight temp
        files and foreign files are reported as kind ``"other"``)."""
        infos: List[EntryInfo] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return infos
        for name in names:
            try:
                st = os.stat(self._path(name))
            except OSError:
                continue  # racing writer published/retired it meanwhile
            if name.endswith(_TRACE_SUFFIX):
                kind = "trace"
            elif name.endswith(_OUTCOME_SUFFIX):
                kind = "outcomes"
            else:
                kind = "other"
            infos.append(EntryInfo(name, kind, st.st_size, st.st_mtime))
        infos.sort(key=lambda info: (info.mtime, info.name))
        return infos

    def stats(self) -> Dict[str, object]:
        """Inspection summary: entry counts and bytes by kind, plus cap."""
        infos = self.entries()
        by_kind: Dict[str, Dict[str, int]] = {}
        total = 0
        for info in infos:
            bucket = by_kind.setdefault(info.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += info.size
            total += info.size
        return {
            "root": self.root,
            "entries": len(infos),
            "bytes": total,
            "cap_bytes": self.cap_bytes,
            "by_kind": by_kind,
        }

    def gc(self, cap_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries beyond the size cap.

        Returns the number of entries removed. ``cap_bytes`` overrides
        the store's cap for this pass (``repro cache --prune`` uses it).
        """
        cap = self.cap_bytes if cap_bytes is None else cap_bytes
        infos = self.entries()
        total = sum(info.size for info in infos)
        removed = 0
        for info in infos:  # oldest first
            if total <= cap:
                break
            if info.kind == "other":
                continue  # never GC foreign files or in-flight temps
            self._drop(self._path(info.name))
            total -= info.size
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every trace/outcomes entry. Returns the count removed."""
        removed = 0
        for info in self.entries():
            if info.kind == "other":
                continue
            self._drop(self._path(info.name))
            removed += 1
        return removed
