"""Post-run profiling: bank utilisation and write-queue behaviour.

Turns a finished run's statistics into the analyses an architect reads
first: which bank is the bottleneck (the SingleBank story in one table),
how busy the drain was, and how hard the write queue pushed back on the
cores. Everything derives from counters the components already maintain —
profiling never touches the timing model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class BankProfile:
    """Activity of one bank over a run."""

    index: int
    reads: int
    writes: int
    busy_ns: float
    utilization: float  # busy / total run time

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class RunProfile:
    """The full post-run profile."""

    total_time_ns: float
    banks: List[BankProfile]
    wq_full_stalls: int
    wq_stall_ns: float
    wq_peak_occupancy: int
    read_forwards: int

    @property
    def hottest_bank(self) -> BankProfile:
        return max(self.banks, key=lambda b: b.busy_ns)

    @property
    def bank_imbalance(self) -> float:
        """Hottest bank's busy time over the mean (1.0 = perfectly even).

        The SingleBank counter bottleneck shows up here as a large value;
        XBank pulls it toward 1.
        """
        if not self.banks:
            return 0.0
        mean = sum(b.busy_ns for b in self.banks) / len(self.banks)
        if mean == 0:
            return 0.0
        return self.hottest_bank.busy_ns / mean

    @property
    def stall_fraction(self) -> float:
        """Share of the run the cores spent stalled on a full queue."""
        if self.total_time_ns <= 0:
            return 0.0
        return self.wq_stall_ns / self.total_time_ns

    def format(self) -> str:
        lines = [
            f"run time: {self.total_time_ns:.0f} ns; "
            f"stalls: {self.wq_full_stalls} ({self.stall_fraction:.1%} of time); "
            f"WQ peak: {self.wq_peak_occupancy}; forwards: {self.read_forwards}",
            f"{'bank':>4} | {'reads':>7} | {'writes':>7} | {'busy ns':>10} | {'util':>6}",
        ]
        for bank in self.banks:
            lines.append(
                f"{bank.index:>4} | {bank.reads:>7} | {bank.writes:>7} | "
                f"{bank.busy_ns:>10.0f} | {bank.utilization:>6.1%}"
            )
        lines.append(f"bank imbalance (hottest/mean busy): {self.bank_imbalance:.2f}x")
        return "\n".join(lines)


def _derive_n_banks(result: SimResult) -> int:
    """Bank count of a finished run, recovered from its statistics.

    The memory controller records its geometry under ``config.n_banks``;
    older stats snapshots fall back to scanning the ``bank.N`` namespaces
    (which only exist for banks that saw traffic), and finally to the
    default 8-bank geometry.
    """
    recorded = int(result.stats.get("config", "n_banks"))
    if recorded > 0:
        return recorded
    highest = -1
    for space, _counter, _value in result.stats:
        match = re.fullmatch(r"bank\.(\d+)", space)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1 if highest >= 0 else 8


def profile_run(result: SimResult, n_banks: Optional[int] = None) -> RunProfile:
    """Build a :class:`RunProfile` from a finished run's statistics.

    ``n_banks`` defaults to the geometry recorded in the run's stats, so
    non-default bank configurations profile correctly without the caller
    re-threading the :class:`~repro.common.config.SimConfig`.
    """
    if n_banks is None:
        n_banks = _derive_n_banks(result)
    stats = result.stats
    total = result.total_time_ns
    banks = []
    for index in range(n_banks):
        ns = f"bank.{index}"
        busy = stats.get(ns, "busy_ns")
        banks.append(
            BankProfile(
                index=index,
                reads=int(stats.get(ns, "reads")),
                writes=int(stats.get(ns, "writes")),
                busy_ns=busy,
                utilization=(busy / total) if total > 0 else 0.0,
            )
        )
    return RunProfile(
        total_time_ns=total,
        banks=banks,
        wq_full_stalls=int(stats.get("wq", "full_stalls")),
        wq_stall_ns=stats.get("wq", "stall_ns"),
        wq_peak_occupancy=int(stats.get("wq", "peak_occupancy")),
        read_forwards=int(stats.get("wq", "read_forwards")),
    )
