"""Single-core trace simulation.

:class:`Simulator` replays one generated trace under one scheme
configuration and returns a :class:`~repro.sim.metrics.SimResult`.
:func:`simulate_workload` is the one-call convenience used throughout the
experiments and benchmarks: workload name + scheme + knobs -> result.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.common.config import SimConfig
from repro.common.stats import Stats
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.obs.tracer import NULL_TRACER
from repro.common.errors import SimulationError
from repro.sim.batch import (
    HIERARCHY_STAT_NAMESPACES,
    OutcomeSegment,
    ReplayOutcomes,
    TraceArrays,
    build_arrays,
)
from repro.sim.engine import CoreEngine
from repro.sim.metrics import SimResult
from repro.sim.trace_cache import (
    cached_generate_trace,
    store_trace_outcomes,
    trace_arrays,
    trace_outcomes,
    use_store,
    warmup_trace_arrays,
)
from repro.txn.persist import TraceOp


class Simulator:
    """Replays a trace on a single core over a fresh memory system."""

    def __init__(
        self,
        config: SimConfig,
        counter_organization: str = "split",
        tracer=None,
    ):
        self.config = config
        self.stats = Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.system = SecureMemorySystem(
            config,
            stats=self.stats,
            counter_organization=counter_organization,
            tracer=self.tracer,
        )
        self.engine = CoreEngine(
            0, config, self.system, self.stats, tracer=self.tracer
        )

    def run(
        self,
        ops: Iterable[TraceOp],
        warmup_ops: Iterable[TraceOp] = (),
        arrays: Optional[TraceArrays] = None,
        warmup_arrays: Optional[TraceArrays] = None,
        outcomes: Optional[ReplayOutcomes] = None,
        record_outcomes: bool = False,
    ) -> SimResult:
        """Replay ``warmup_ops`` (unmeasured) then ``ops`` (measured).

        With the production configuration (``hot_path`` and
        ``batched_replay`` both on) the replay runs through the chunked
        batched loop (:meth:`CoreEngine.run_batched`); pre-decoded
        ``arrays``/``warmup_arrays`` (from :mod:`repro.sim.trace_cache`)
        skip the decode pass, otherwise the op lists are decoded here.

        ``outcomes`` (a recorded hierarchy outcome stream for exactly
        these arrays under this cache geometry) skips the cache walk
        entirely (:meth:`CoreEngine.run_batched_replay`); alternatively
        ``record_outcomes`` captures such a stream during this run into
        :attr:`recorded_outcomes` for later replays.
        :func:`simulate_workload` orchestrates both against the trace
        cache. Results are bit-identical in every mode.
        """
        self.recorded_outcomes: Optional[ReplayOutcomes] = None
        if self.config.hot_path and self.config.batched_replay:
            if arrays is None:
                arrays = build_arrays(
                    ops if isinstance(ops, (list, tuple)) else list(ops)
                )
            if warmup_arrays is None:
                warmup = (
                    warmup_ops
                    if isinstance(warmup_ops, (list, tuple))
                    else list(warmup_ops)
                )
                warmup_arrays = build_arrays(warmup) if warmup else None
            n_warm = warmup_arrays.n if warmup_arrays is not None else 0
            if outcomes is not None:
                self._run_replay(arrays, warmup_arrays, n_warm, outcomes)
            elif record_outcomes:
                self._run_recording(arrays, warmup_arrays, n_warm)
            else:
                if n_warm:
                    self.engine.set_measuring(False)
                    self.engine.run_batched(warmup_arrays)
                    self.engine.set_measuring(True)
                    self._reset_warmup_stats()
                self.engine.run_batched(arrays)
        else:
            warmup = list(warmup_ops)
            if warmup:
                self.engine.set_measuring(False)
                self.engine.run(warmup)
                self.engine.set_measuring(True)
                self._reset_warmup_stats()
            self.engine.run(ops)
        drain_finish = self.system.drain()
        total = max(self.engine.clock, drain_finish)
        return SimResult(
            total_time_ns=total,
            txn_latencies=self.engine.txn_latencies,
            stats=self.stats,
        )

    def _run_replay(
        self,
        arrays: TraceArrays,
        warmup_arrays: Optional[TraceArrays],
        n_warm: int,
        outcomes: ReplayOutcomes,
    ) -> None:
        """Replay through a recorded hierarchy outcome stream."""
        recorded_warm = (
            0 if outcomes.warmup is None else len(outcomes.warmup.kinds)
        )
        if recorded_warm != n_warm or len(outcomes.main.kinds) != arrays.n:
            raise SimulationError(
                "outcome recording does not match the trace "
                f"({recorded_warm}/{len(outcomes.main.kinds)} recorded vs "
                f"{n_warm}/{arrays.n} ops)"
            )
        if n_warm:
            self.engine.set_measuring(False)
            self.engine.run_batched_replay(warmup_arrays, outcomes.warmup)
            self.engine.set_measuring(True)
            self._reset_warmup_stats()
        self.engine.run_batched_replay(arrays, outcomes.main)
        # The recorded cache-stat delta replaces the per-access bumps the
        # skipped walk would have made (warmup included: warmup resets
        # never touch the hierarchy namespaces).
        vals = self.stats.raw()
        for key, delta in outcomes.stat_delta:
            vals[key] += delta

    def _run_recording(
        self,
        arrays: TraceArrays,
        warmup_arrays: Optional[TraceArrays],
        n_warm: int,
    ) -> None:
        """Run batched while recording the hierarchy outcome stream."""
        raw = self.stats.raw()
        namespaces = HIERARCHY_STAT_NAMESPACES
        base = {
            key: value for key, value in raw.items() if key[0] in namespaces
        }
        warm_segment = None
        if n_warm:
            kinds: bytearray = bytearray()
            lats: list = []
            wbs: dict = {}
            self.engine.set_measuring(False)
            self.engine.run_batched_record(warmup_arrays, kinds, lats, wbs)
            self.engine.set_measuring(True)
            self._reset_warmup_stats()
            warm_segment = OutcomeSegment(bytes(kinds), lats, wbs)
        kinds = bytearray()
        lats = []
        wbs = {}
        self.engine.run_batched_record(arrays, kinds, lats, wbs)
        delta = tuple(
            (key, value - base.get(key, 0.0))
            for key, value in raw.items()
            if key[0] in namespaces and value != base.get(key, 0.0)
        )
        self.recorded_outcomes = ReplayOutcomes(
            OutcomeSegment(bytes(kinds), lats, wbs), warm_segment, delta
        )

    def _reset_warmup_stats(self) -> None:
        # Warmup traffic warms caches but should not pollute traffic
        # counters; snapshot-and-subtract would complicate every stat,
        # so instead reset the counters that experiments read (the
        # cache *contents* stay warm — only the statistics reset).
        for namespace in ("wq", "secmem", "nvm", "mc", "cc", "it"):
            for counter, _ in list(self.stats.namespace(namespace).items()):
                self.stats.set(namespace, counter, 0)


def simulate_workload(
    workload: str,
    scheme: Scheme,
    n_ops: int = 200,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    base_config: Optional[SimConfig] = None,
    seed: int = 1,
    warmup_ops: int = 0,
    counter_organization: str = "split",
    tracer=None,
    fidelity: str = "timing",
) -> SimResult:
    """Generate a workload trace and simulate it under ``scheme``.

    This is the standard experiment kernel: the same trace (same seed)
    replayed under different schemes isolates the scheme effect.

    ``fidelity`` selects how much functional work rides along with the
    timing model. The default ``"timing"`` forces ``functional=False``
    (via :class:`SimConfig`'s coupling): traces carry no payloads and no
    pad generation, XOR, or NVM byte image is produced — the historical
    behaviour of this function. ``"full"`` keeps ``functional`` as the
    base config has it (True by default), generating payload-tracking
    traces and running the byte-level crypto path. Both fidelities charge
    identical latencies and count identical stats — asserted bit-for-bit
    by tests/sim/test_fidelity.py.

    Trace generation is memoized per process (:mod:`repro.sim.trace_cache`):
    sweeping several schemes over the same (workload, size, seed) point
    generates the trace once and replays it under each scheme.
    """
    cfg = dataclasses.replace(scheme_config(scheme, base_config), fidelity=fidelity)
    # The config is the single source of truth for the disk tier: a run
    # without a configured store never reads or writes one.
    use_store(cfg.outcome_store)
    trace = cached_generate_trace(
        workload,
        n_ops=n_ops,
        request_size=request_size,
        footprint=footprint,
        seed=seed,
        warmup_ops=warmup_ops,
        track_payloads=cfg.functional,
    )
    sim = Simulator(cfg, counter_organization=counter_organization, tracer=tracer)
    arrays = warmup = outcomes = cache_sig = None
    if cfg.hot_path and cfg.batched_replay:
        # One decode per process: the arrays live on the cached trace.
        arrays = trace_arrays(trace)
        warmup = warmup_trace_arrays(trace) if trace.warmup_ops else None
        # One cache walk per (trace, cache geometry): the first scheme of
        # a sweep records the hierarchy outcome stream, the rest replay it
        # (the walk is scheme-independent — see repro.sim.batch).
        cache_sig = (cfg.l1, cfg.l2, cfg.l3, cfg.timing)
        outcomes = trace_outcomes(trace, cache_sig)
    result = sim.run(
        trace.ops,
        warmup_ops=trace.warmup_ops,
        arrays=arrays,
        warmup_arrays=warmup,
        outcomes=outcomes,
        record_outcomes=cache_sig is not None and outcomes is None,
    )
    if outcomes is None and sim.recorded_outcomes is not None:
        store_trace_outcomes(trace, cache_sig, sim.recorded_outcomes)
    return result
