"""Single-core trace simulation.

:class:`Simulator` replays one generated trace under one scheme
configuration and returns a :class:`~repro.sim.metrics.SimResult`.
:func:`simulate_workload` is the one-call convenience used throughout the
experiments and benchmarks: workload name + scheme + knobs -> result.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.common.config import SimConfig
from repro.common.stats import Stats
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import CoreEngine
from repro.sim.metrics import SimResult
from repro.sim.trace_cache import cached_generate_trace
from repro.txn.persist import TraceOp


class Simulator:
    """Replays a trace on a single core over a fresh memory system."""

    def __init__(
        self,
        config: SimConfig,
        counter_organization: str = "split",
        tracer=None,
    ):
        self.config = config
        self.stats = Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.system = SecureMemorySystem(
            config,
            stats=self.stats,
            counter_organization=counter_organization,
            tracer=self.tracer,
        )
        self.engine = CoreEngine(
            0, config, self.system, self.stats, tracer=self.tracer
        )

    def run(
        self,
        ops: Iterable[TraceOp],
        warmup_ops: Iterable[TraceOp] = (),
    ) -> SimResult:
        """Replay ``warmup_ops`` (unmeasured) then ``ops`` (measured)."""
        warmup = list(warmup_ops)
        if warmup:
            self.engine.set_measuring(False)
            self.engine.run(warmup)
            self.engine.set_measuring(True)
            # Warmup traffic warms caches but should not pollute traffic
            # counters; snapshot-and-subtract would complicate every stat,
            # so instead reset the counters that experiments read (the
            # cache *contents* stay warm — only the statistics reset).
            for namespace in ("wq", "secmem", "nvm", "mc", "cc"):
                for counter, _ in list(self.stats.namespace(namespace).items()):
                    self.stats.set(namespace, counter, 0)
        self.engine.run(ops)
        drain_finish = self.system.drain()
        total = max(self.engine.clock, drain_finish)
        return SimResult(
            total_time_ns=total,
            txn_latencies=self.engine.txn_latencies,
            stats=self.stats,
        )


def simulate_workload(
    workload: str,
    scheme: Scheme,
    n_ops: int = 200,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    base_config: Optional[SimConfig] = None,
    seed: int = 1,
    warmup_ops: int = 0,
    counter_organization: str = "split",
    tracer=None,
    fidelity: str = "timing",
) -> SimResult:
    """Generate a workload trace and simulate it under ``scheme``.

    This is the standard experiment kernel: the same trace (same seed)
    replayed under different schemes isolates the scheme effect.

    ``fidelity`` selects how much functional work rides along with the
    timing model. The default ``"timing"`` forces ``functional=False``
    (via :class:`SimConfig`'s coupling): traces carry no payloads and no
    pad generation, XOR, or NVM byte image is produced — the historical
    behaviour of this function. ``"full"`` keeps ``functional`` as the
    base config has it (True by default), generating payload-tracking
    traces and running the byte-level crypto path. Both fidelities charge
    identical latencies and count identical stats — asserted bit-for-bit
    by tests/sim/test_fidelity.py.

    Trace generation is memoized per process (:mod:`repro.sim.trace_cache`):
    sweeping several schemes over the same (workload, size, seed) point
    generates the trace once and replays it under each scheme.
    """
    cfg = dataclasses.replace(scheme_config(scheme, base_config), fidelity=fidelity)
    trace = cached_generate_trace(
        workload,
        n_ops=n_ops,
        request_size=request_size,
        footprint=footprint,
        seed=seed,
        warmup_ops=warmup_ops,
        track_payloads=cfg.functional,
    )
    sim = Simulator(cfg, counter_organization=counter_organization, tracer=tracer)
    return sim.run(trace.ops, warmup_ops=trace.warmup_ops)
