"""Analytical surrogate of the timing simulator.

The simulator charges per-op costs — SRAM walks, persist chains, fence
drains — whose totals are, to first order, linear in what the *trace*
contains: how many loads, stores, clwbs, fences and transactions it
issues, how much compute it interleaves, and how many distinct lines it
touches (cold-miss mass). Those are all **trace-static** quantities:
they depend only on the generated op stream, not on the scheme being
simulated. A per-scheme linear model over that basis is therefore a
closed-form run-time predictor — fit once against simulated results on
the Figure 13 grid, then evaluated in microseconds without running the
simulator at all.

What the surrogate is for:

* **Sweep planning** — estimate the simulated time (and hence the wall
  cost, which tracks it) of a design-space grid before committing to it.
* **Sanity regression** — CI fits the surrogate on the smoke grid and
  asserts the in-sample relative error stays within documented bounds
  (:data:`MEAN_REL_ERROR_BOUND` / :data:`MAX_REL_ERROR_BOUND`); a model
  change that breaks the linear cost structure (e.g. a latency charged
  superlinearly by accident) shows up as a fit-quality collapse.
* **Journal cross-validation** — :func:`validate_against_journal`
  replays the prediction against results journaled by a real sweep
  (matched by content digest), so the artifact uploaded by CI proves the
  surrogate describes the simulator actually shipped.

The fit is ordinary least squares per scheme (six small solves) with
column scaling and a tiny ridge term for conditioning — pure Python,
no numpy — followed by a shared per-workload multiplicative correction:
the residual the linear basis leaves behind is strongly *workload*-
structured (the same cell over- or under-predicts across every scheme),
so one least-squares scale factor per workload, fit across all schemes
and sizes at once (21 observations per factor on the fig13 grid),
removes it without over-parameterising the per-scheme solves. Errors
are reported *relative* (``|pred - sim| / sim``), the unit the bounds
are documented in.
"""

from __future__ import annotations

import dataclasses
import json
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.core.schemes import EVALUATED_SCHEMES, Scheme, scheme_config
from repro.sim.batch import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
)
from repro.sim.trace_cache import cached_generate_trace, trace_arrays

#: In-sample mean relative error the fit must stay within (CI-asserted).
#: Measured headroom: the smoke-grid fit lands well under half of this.
MEAN_REL_ERROR_BOUND = 0.10
#: Worst single-point relative error the fit must stay within. The
#: locality proxies (``*_window_hits``) brought the measured worst cell
#: from ~24% to well under half of this bound on the smoke grid.
MAX_REL_ERROR_BOUND = 0.25

#: LRU-window sizes, in 64 B cache lines, behind the locality hit-rate
#: proxy features. These are *model constants*, not tied to any
#: :class:`SimConfig` geometry — the features must stay trace-static and
#: config-independent (see :func:`predict_spec`). 512 lines ~ an L1D
#: working set (32 KiB); 4096 lines ~ a last-level slice (256 KiB) —
#: both smaller than every scale's footprint, so the windows bind.
L1_WINDOW_LINES = 512
LLC_WINDOW_LINES = 4096

#: The trace-static feature basis, in coefficient order. ``intercept``
#: absorbs fixed per-run cost; the counts are per-op cost carriers;
#: ``unique_lines`` carries the cold-miss/footprint mass; and the two
#: ``*_window_hits`` locality proxies count line accesses that re-touch
#: a line seen within the last :data:`L1_WINDOW_LINES` /
#: :data:`LLC_WINDOW_LINES` distinct lines — a measured hit-rate proxy
#: that separates tight-reuse workloads from scans the raw op counts
#: cannot tell apart.
FEATURE_NAMES = (
    "intercept",
    "n_load",
    "n_store",
    "n_clwb",
    "n_fence",
    "n_txn",
    "compute_ns",
    "unique_lines",
    "l1_window_hits",
    "llc_window_hits",
)


def trace_features(trace) -> Dict[str, float]:
    """Trace-static feature values of one generated trace.

    Derived from the measured segment's flat replay arrays (decoded at
    most once per process by :mod:`repro.sim.trace_cache`) — one
    C-speed ``bytes.count`` per opcode plus a single pass for the
    argument-dependent features.
    """
    arrays = trace_arrays(trace)
    kinds = arrays.kinds
    args = arrays.args
    compute_ns = 0.0
    lines = set()
    # Bounded-recency LRU windows: an access "hits" a window when its
    # line was touched within the last N *distinct* lines. O(1) per
    # access; the counts proxy the hit rate a cache of that reach sees.
    l1_window: OrderedDict = OrderedDict()
    llc_window: OrderedDict = OrderedDict()
    l1_hits = 0
    llc_hits = 0
    for i, kind in enumerate(kinds):
        if kind <= OP_CLWB:  # load / store / clwb all carry a line index
            line = args[i]
            lines.add(line)
            if line in l1_window:
                l1_hits += 1
                l1_window.move_to_end(line)
            else:
                l1_window[line] = None
                if len(l1_window) > L1_WINDOW_LINES:
                    l1_window.popitem(last=False)
            if line in llc_window:
                llc_hits += 1
                llc_window.move_to_end(line)
            else:
                llc_window[line] = None
                if len(llc_window) > LLC_WINDOW_LINES:
                    llc_window.popitem(last=False)
        elif kind == OP_COMPUTE:
            compute_ns += args[i]
    return {
        "intercept": 1.0,
        "n_load": float(kinds.count(OP_LOAD)),
        "n_store": float(kinds.count(OP_STORE)),
        "n_clwb": float(kinds.count(OP_CLWB)),
        "n_fence": float(kinds.count(OP_FENCE)),
        "n_txn": float(kinds.count(OP_TXN_BEGIN)),
        "compute_ns": compute_ns,
        "unique_lines": float(len(lines)),
        "l1_window_hits": float(l1_hits),
        "llc_window_hits": float(llc_hits),
    }


@dataclasses.dataclass
class TrainingPair:
    """One (features, simulated run time) observation."""

    workload: str
    request_size: int
    scheme: Scheme
    features: Dict[str, float]
    total_time_ns: float
    #: Journal content digest of the spec that produced the observation
    #: (lets validation reports cross-reference journal records).
    digest: str = ""


# ----------------------------------------------------------------------
# Least squares (pure Python)
# ----------------------------------------------------------------------


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination, partial pivoting."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-300:
            raise ConfigError("singular system in surrogate fit")
        a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor:
                for c in range(col, n + 1):
                    a[r][c] -= factor * a[col][c]
    x = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = a[r][n]
        for c in range(r + 1, n):
            acc -= a[r][c] * x[c]
        x[r] = acc / a[r][r]
    return x


def _fit_ols(rows: List[List[float]], y: List[float]) -> List[float]:
    """Ridge-stabilised least squares with column scaling.

    Features span ~7 orders of magnitude (intercept 1 vs compute_ns in
    the millions), so columns are scaled to unit RMS before forming the
    normal equations and the coefficients unscaled afterwards; the ridge
    term is tiny relative to the (scaled) diagonal — numerical
    conditioning only, not meaningful shrinkage.
    """
    n, k = len(rows), len(rows[0])
    scale = []
    for j in range(k):
        rms = (sum(row[j] * row[j] for row in rows) / n) ** 0.5
        scale.append(rms if rms > 0.0 else 1.0)
    scaled = [[row[j] / scale[j] for j in range(k)] for row in rows]
    ata = [
        [sum(row[i] * row[j] for row in scaled) for j in range(k)]
        for i in range(k)
    ]
    for j in range(k):
        ata[j][j] += 1e-8 * n
    atb = [sum(row[j] * yi for row, yi in zip(scaled, y)) for j in range(k)]
    coef = _solve(ata, atb)
    return [coef[j] / scale[j] for j in range(k)]


# ----------------------------------------------------------------------
# Model
# ----------------------------------------------------------------------


class SurrogateModel:
    """Per-scheme linear predictor of simulated run time (ns), with a
    shared per-workload multiplicative correction on top."""

    def __init__(
        self,
        feature_names: Tuple[str, ...],
        coefficients: Dict[str, List[float]],
        training: Dict[str, object],
        validation: Dict[str, object],
        workload_factors: Optional[Dict[str, float]] = None,
    ):
        self.feature_names = tuple(feature_names)
        self.coefficients = coefficients
        self.training = training
        self.validation = validation
        #: Shared multiplicative correction per workload (piecewise part
        #: of the fit); empty for models persisted before it existed.
        self.workload_factors: Dict[str, float] = dict(workload_factors or {})

    def predict(
        self,
        features: Dict[str, float],
        scheme: Scheme,
        workload: Optional[str] = None,
    ) -> float:
        """Predicted ``total_time_ns`` for a trace with ``features``.

        Pass ``workload`` to apply the per-workload correction factor;
        without it (or for a workload the fit never saw) the prediction
        is the uncorrected linear term.
        """
        try:
            coef = self.coefficients[scheme.value]
        except KeyError:
            raise ConfigError(
                f"surrogate has no coefficients for scheme {scheme.value!r}"
            ) from None
        linear = sum(
            c * features[name] for c, name in zip(coef, self.feature_names)
        )
        if workload is not None:
            return linear * self.workload_factors.get(workload, 1.0)
        return linear

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "supermem-surrogate",
            "feature_names": list(self.feature_names),
            "coefficients": self.coefficients,
            "training": self.training,
            "validation": self.validation,
            "workload_factors": self.workload_factors,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SurrogateModel":
        if payload.get("kind") != "supermem-surrogate":
            raise ConfigError("not a surrogate model payload")
        return cls(
            tuple(payload["feature_names"]),  # type: ignore[arg-type]
            dict(payload["coefficients"]),  # type: ignore[arg-type]
            dict(payload.get("training", {})),  # type: ignore[arg-type]
            dict(payload.get("validation", {})),  # type: ignore[arg-type]
            dict(payload.get("workload_factors", {})),  # type: ignore[arg-type]
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SurrogateModel":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# Training / validation
# ----------------------------------------------------------------------


def _spec_trace(spec):
    """The (cached) generated trace a spec's simulation replays."""
    cfg = dataclasses.replace(
        scheme_config(spec.scheme, spec.base_config), fidelity=spec.fidelity
    )
    return cached_generate_trace(
        spec.workload,
        n_ops=spec.n_ops,
        request_size=spec.request_size,
        footprint=spec.footprint,
        seed=spec.seed,
        warmup_ops=spec.warmup_ops,
        track_payloads=cfg.functional,
    )


def predict_spec(model: SurrogateModel, spec) -> float:
    """Predicted ``total_time_ns`` for one runner :class:`PointSpec`.

    The public hook the auto-tuner's ``--surrogate-first`` screen anchors
    on (:mod:`repro.experiments.tuner`): it derives the spec's cached
    trace and evaluates the per-scheme model on its trace-static
    features. Those features are config-independent by construction, so
    this prices the *workload* under the scheme, not the candidate's
    config deltas — see ``docs/TUNING.md`` for how the screen layers an
    online knob model on top.
    """
    return model.predict(
        trace_features(_spec_trace(spec)), spec.scheme, workload=spec.workload
    )


def collect_training_pairs(
    scale: str = "smoke",
    request_sizes: Optional[Sequence[int]] = None,
    jobs: int = 1,
    fidelity: str = "timing",
) -> List[TrainingPair]:
    """Simulate the Figure 13 grid and pair each result with features.

    Uses :func:`repro.experiments.fig13.specs` so the training grid is
    exactly the fig13 sweep (same specs, same journal digests).
    """
    from repro.experiments import fig13
    from repro.experiments.journal import spec_digest
    from repro.experiments.runner import run_points

    sizes = tuple(request_sizes) if request_sizes else fig13.REQUEST_SIZES
    _, point_specs = fig13.specs(scale, request_sizes=sizes, fidelity=fidelity)
    results = run_points(point_specs, jobs=jobs, label="surrogate")
    pairs = []
    for spec, result in zip(point_specs, results):
        pairs.append(
            TrainingPair(
                workload=spec.workload,
                request_size=spec.request_size,
                scheme=spec.scheme,
                features=trace_features(_spec_trace(spec)),
                total_time_ns=result.total_time_ns,
                digest=spec_digest(spec),
            )
        )
    return pairs


def fit_surrogate(
    pairs: Sequence[TrainingPair],
    scale: str = "smoke",
) -> SurrogateModel:
    """Fit per-scheme coefficients plus the shared per-workload factors;
    validation holds the in-sample error (factors applied)."""
    by_scheme: Dict[str, List[TrainingPair]] = {}
    for pair in pairs:
        by_scheme.setdefault(pair.scheme.value, []).append(pair)
    coefficients = {}
    for scheme_value, scheme_pairs in by_scheme.items():
        if len(scheme_pairs) < len(FEATURE_NAMES):
            raise ConfigError(
                f"scheme {scheme_value!r} has {len(scheme_pairs)} training "
                f"points; need at least {len(FEATURE_NAMES)} (one per "
                f"feature) — widen the grid"
            )
        rows = [
            [pair.features[name] for name in FEATURE_NAMES]
            for pair in scheme_pairs
        ]
        y = [pair.total_time_ns for pair in scheme_pairs]
        coefficients[scheme_value] = _fit_ols(rows, y)
    model = SurrogateModel(
        FEATURE_NAMES,
        coefficients,
        training={
            "scale": scale,
            "n_points": len(pairs),
            "schemes": sorted(by_scheme),
        },
        validation={},
    )
    # The piecewise stage: the linear basis leaves a residual that is
    # workload-structured and scheme-shared (the same cell over- or
    # under-predicts under every scheme), so one least-squares scale per
    # workload — fit across all of its schemes and sizes at once —
    # absorbs it with a handful of well-determined parameters.
    num: Dict[str, float] = {}
    den: Dict[str, float] = {}
    for pair in pairs:
        predicted = model.predict(pair.features, pair.scheme)
        num[pair.workload] = num.get(pair.workload, 0.0) + (
            predicted * pair.total_time_ns
        )
        den[pair.workload] = den.get(pair.workload, 0.0) + predicted * predicted
    model.workload_factors = {
        workload: num[workload] / den[workload]
        for workload in num
        if den[workload] > 0.0
    }
    model.validation = validate_pairs(model, pairs)
    return model


def validate_pairs(
    model: SurrogateModel, pairs: Sequence[TrainingPair]
) -> Dict[str, object]:
    """Relative-error report of ``model`` against observed pairs."""
    if not pairs:
        raise ConfigError("no pairs to validate the surrogate against")
    errors = []
    worst = None
    for pair in pairs:
        predicted = model.predict(
            pair.features, pair.scheme, workload=pair.workload
        )
        rel = abs(predicted - pair.total_time_ns) / pair.total_time_ns
        errors.append(rel)
        if worst is None or rel > worst["rel_error"]:
            worst = {
                "workload": pair.workload,
                "request_size": pair.request_size,
                "scheme": pair.scheme.value,
                "rel_error": rel,
            }
    mean = sum(errors) / len(errors)
    return {
        "n_points": len(errors),
        "mean_rel_error": round(mean, 6),
        "max_rel_error": round(max(errors), 6),
        "worst": worst,
        "bounds": {
            "mean_rel_error": MEAN_REL_ERROR_BOUND,
            "max_rel_error": MAX_REL_ERROR_BOUND,
        },
        "within_bounds": (
            mean <= MEAN_REL_ERROR_BOUND and max(errors) <= MAX_REL_ERROR_BOUND
        ),
    }


def validate_against_journal(
    model: SurrogateModel,
    journal_path: str,
    scale: str = "smoke",
    request_sizes: Optional[Sequence[int]] = None,
    fidelity: str = "timing",
) -> Dict[str, object]:
    """Validate ``model`` against results a sweep journaled to disk.

    Builds the fig13 grid specs, looks each one up in the journal by
    content digest (the same keying ``--resume`` uses), and reports the
    relative error on every point found — proof the model describes the
    simulator that actually wrote the journal. Points absent from the
    journal are skipped and counted.
    """
    from repro.experiments import fig13
    from repro.experiments.journal import SweepJournal, spec_digest

    sizes = tuple(request_sizes) if request_sizes else fig13.REQUEST_SIZES
    _, point_specs = fig13.specs(scale, request_sizes=sizes, fidelity=fidelity)
    journal = SweepJournal(journal_path)
    pairs = []
    missing = 0
    for spec in point_specs:
        digest = spec_digest(spec)
        result = journal.get(digest)
        if result is None:
            missing += 1
            continue
        pairs.append(
            TrainingPair(
                workload=spec.workload,
                request_size=spec.request_size,
                scheme=spec.scheme,
                features=trace_features(_spec_trace(spec)),
                total_time_ns=result.total_time_ns,
                digest=digest,
            )
        )
    if not pairs:
        raise ConfigError(
            f"journal {journal_path!r} holds none of the "
            f"{len(point_specs)} grid points (wrong scale/sizes, or a "
            f"stale code-version salt)"
        )
    report = validate_pairs(model, pairs)
    report["journal"] = {
        "path": journal_path,
        "matched": len(pairs),
        "missing": missing,
    }
    return report


def predict_grid(
    model: SurrogateModel,
    workload: str,
    request_size: int,
    scale: str = "smoke",
    schemes: Sequence[Scheme] = EVALUATED_SCHEMES,
) -> Dict[str, float]:
    """Predicted run time (ns) per scheme for one (workload, size) cell."""
    from repro.experiments import fig13

    _, point_specs = fig13.specs(scale, request_sizes=(request_size,))
    spec = next(
        (s for s in point_specs if s.workload == workload), None
    )
    if spec is None:
        raise ConfigError(f"unknown workload {workload!r}")
    features = trace_features(_spec_trace(spec))
    return {
        scheme.value: model.predict(features, scheme, workload=workload)
        for scheme in schemes
    }
