"""Per-process memoization of generated workload traces.

Every experiment sweep replays the *same* seeded trace under several
schemes — fig13 alone generates each (workload, size) trace six times, once
per scheme, even though trace generation is completely independent of the
scheme being simulated. This module caches :func:`~repro.workloads
.generator.generate_trace` results keyed on every input that determines
the trace: ``(workload, n_ops, request_size, footprint, heap_base,
heap_capacity, seed, warmup_ops, track_payloads)``.

Safety: traces are lists of plain tuples and the simulator only *reads*
them (the timing state lives in :class:`~repro.memory.write_queue.WQEntry`
objects built per run), so sharing one :class:`GeneratedTrace` across runs
is sound. A cached run is bit-identical to an uncached one — asserted by
``tests/sim/test_trace_cache.py``.

The cache is per-process: each worker of the parallel experiment runner
(:mod:`repro.experiments.runner`) builds its own, so a trace is generated
at most once per worker regardless of how many schemes that worker
simulates. A small LRU bound keeps long design-space explorations from
accumulating traces without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.workloads.generator import GeneratedTrace, generate_trace

#: Maximum distinct traces retained per process (LRU eviction). A full
#: figure sweep needs ~15 (5 workloads x 3 sizes); 64 leaves generous
#: headroom for ablation grids without unbounded growth.
MAX_ENTRIES = 64

_cache: "OrderedDict[Tuple, GeneratedTrace]" = OrderedDict()
_enabled = True
_hits = 0
_misses = 0


def configure(enabled: bool) -> None:
    """Globally enable/disable memoization (disabling also clears)."""
    global _enabled
    _enabled = enabled
    if not enabled:
        clear()


def clear() -> None:
    """Drop all cached traces and reset the hit/miss counters."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` since the last :func:`clear`."""
    return _hits, _misses


def cached_generate_trace(
    name: str,
    n_ops: int,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    heap_base: int = 0,
    heap_capacity: Optional[int] = None,
    seed: int = 1,
    warmup_ops: int = 0,
    track_payloads: bool = False,
) -> GeneratedTrace:
    """Memoized :func:`~repro.workloads.generator.generate_trace`.

    The returned trace is shared between callers and must be treated as
    immutable (it is: ops are tuples).
    """
    global _hits, _misses
    if not _enabled:
        return generate_trace(
            name,
            n_ops=n_ops,
            request_size=request_size,
            footprint=footprint,
            heap_base=heap_base,
            heap_capacity=heap_capacity,
            seed=seed,
            warmup_ops=warmup_ops,
            track_payloads=track_payloads,
        )
    key = (
        name,
        n_ops,
        request_size,
        footprint,
        heap_base,
        heap_capacity,
        seed,
        warmup_ops,
        track_payloads,
    )
    trace = _cache.get(key)
    if trace is not None:
        _hits += 1
        _cache.move_to_end(key)
        return trace
    _misses += 1
    trace = generate_trace(
        name,
        n_ops=n_ops,
        request_size=request_size,
        footprint=footprint,
        heap_base=heap_base,
        heap_capacity=heap_capacity,
        seed=seed,
        warmup_ops=warmup_ops,
        track_payloads=track_payloads,
    )
    _cache[key] = trace
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
    return trace
