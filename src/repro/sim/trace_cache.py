"""Per-process memoization of generated workload traces.

Every experiment sweep replays the *same* seeded trace under several
schemes — fig13 alone generates each (workload, size) trace six times, once
per scheme, even though trace generation is completely independent of the
scheme being simulated. This module caches :func:`~repro.workloads
.generator.generate_trace` results keyed on every input that determines
the trace: ``(workload, n_ops, request_size, footprint, heap_base,
heap_capacity, seed, warmup_ops, track_payloads)``.

Safety: traces are lists of plain tuples and the simulator only *reads*
them (the timing state lives in :class:`~repro.memory.write_queue.WQEntry`
objects built per run), so sharing one :class:`GeneratedTrace` across runs
is sound. A cached run is bit-identical to an uncached one — asserted by
``tests/sim/test_trace_cache.py``.

The cache is per-process: each worker of the parallel experiment runner
(:mod:`repro.experiments.runner`) builds its own, so a trace is generated
at most once per worker regardless of how many schemes that worker
simulates. A small LRU bound keeps long design-space explorations from
accumulating traces without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.sim.batch import TraceArrays, build_arrays
from repro.workloads.generator import GeneratedTrace, generate_trace

#: Maximum distinct traces retained per process (LRU eviction). A full
#: figure sweep needs ~15 (5 workloads x 3 sizes); 64 leaves generous
#: headroom for ablation grids without unbounded growth.
MAX_ENTRIES = 64

_cache: "OrderedDict[Tuple, GeneratedTrace]" = OrderedDict()
_enabled = True
_hits = 0
_misses = 0
_array_hits = 0
_array_misses = 0
_outcome_hits = 0
_outcome_misses = 0


def configure(enabled: bool) -> None:
    """Globally enable/disable memoization (disabling also clears)."""
    global _enabled
    _enabled = enabled
    if not enabled:
        clear()


def clear() -> None:
    """Drop all cached traces and reset the hit/miss counters."""
    global _hits, _misses, _array_hits, _array_misses
    global _outcome_hits, _outcome_misses
    _cache.clear()
    _hits = 0
    _misses = 0
    _array_hits = 0
    _array_misses = 0
    _outcome_hits = 0
    _outcome_misses = 0


def clear_outcomes() -> None:
    """Drop recorded hierarchy outcome streams, keeping traces/arrays.

    Used by the benchmark's ``batched-replay`` leg so it pays its own
    recording cost (one walk per trace per geometry) instead of reusing
    recordings a previous leg made.
    """
    global _outcome_hits, _outcome_misses
    for trace in _cache.values():
        trace.replay_outcomes = None
    _outcome_hits = 0
    _outcome_misses = 0


def cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` since the last :func:`clear`."""
    return _hits, _misses


def array_stats() -> Tuple[int, int]:
    """Replay-array decode cache ``(hits, misses)`` since :func:`clear`.

    A *hit* means a replay reused arrays already decoded onto the trace
    (:func:`trace_arrays`/:func:`warmup_trace_arrays`); a *miss* paid one
    decode pass. Surfaced by the sweep runner as
    ``repro_trace_array_hits_total``/``repro_trace_array_misses_total``.
    """
    return _array_hits, _array_misses


def trace_arrays(trace: GeneratedTrace) -> TraceArrays:
    """The flat replay arrays for ``trace.ops``, decoded at most once.

    The arrays live on the trace object itself (``replay_arrays``), so a
    trace memoized by this cache is decoded once per process no matter
    how many schemes replay it. Arrays are pure derived data — sharing
    them is as sound as sharing the trace tuples.
    """
    global _array_hits, _array_misses
    arrays = trace.replay_arrays
    if arrays is not None:
        _array_hits += 1
        return arrays
    _array_misses += 1
    arrays = build_arrays(trace.ops)
    trace.replay_arrays = arrays
    return arrays


def outcome_stats() -> Tuple[int, int]:
    """Hierarchy outcome-stream cache ``(hits, misses)`` since :func:`clear`.

    A *hit* means a replay reused a recorded cache-walk outcome stream
    (:func:`trace_outcomes`); a *miss* means the run had to walk (and
    record) the hierarchy itself. A six-scheme sweep over one trace
    records once and hits five times.
    """
    return _outcome_hits, _outcome_misses


def trace_outcomes(trace: GeneratedTrace, cache_sig: Tuple):
    """The recorded hierarchy outcomes of ``trace`` under ``cache_sig``.

    ``cache_sig`` is the cache-geometry key ``(l1, l2, l3, timing)``
    (frozen config dataclasses — hashable). Returns ``None`` (and counts
    a miss) when no recording exists yet; the caller then runs in
    recording mode and stores the result via
    :func:`store_trace_outcomes`.
    """
    global _outcome_hits, _outcome_misses
    store = trace.replay_outcomes
    outcomes = None if store is None else store.get(cache_sig)
    if outcomes is not None:
        _outcome_hits += 1
        return outcomes
    _outcome_misses += 1
    return None


def store_trace_outcomes(trace: GeneratedTrace, cache_sig: Tuple, outcomes) -> None:
    """Attach a freshly-recorded outcome stream to the cached trace."""
    store = trace.replay_outcomes
    if store is None:
        store = {}
        trace.replay_outcomes = store
    store[cache_sig] = outcomes


def warmup_trace_arrays(trace: GeneratedTrace) -> TraceArrays:
    """Like :func:`trace_arrays`, for ``trace.warmup_ops``."""
    global _array_hits, _array_misses
    arrays = trace.warmup_replay_arrays
    if arrays is not None:
        _array_hits += 1
        return arrays
    _array_misses += 1
    arrays = build_arrays(trace.warmup_ops)
    trace.warmup_replay_arrays = arrays
    return arrays


def cached_generate_trace(
    name: str,
    n_ops: int,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    heap_base: int = 0,
    heap_capacity: Optional[int] = None,
    seed: int = 1,
    warmup_ops: int = 0,
    track_payloads: bool = False,
) -> GeneratedTrace:
    """Memoized :func:`~repro.workloads.generator.generate_trace`.

    The returned trace is shared between callers and must be treated as
    immutable (it is: ops are tuples).
    """
    global _hits, _misses
    if not _enabled:
        return generate_trace(
            name,
            n_ops=n_ops,
            request_size=request_size,
            footprint=footprint,
            heap_base=heap_base,
            heap_capacity=heap_capacity,
            seed=seed,
            warmup_ops=warmup_ops,
            track_payloads=track_payloads,
        )
    key = (
        name,
        n_ops,
        request_size,
        footprint,
        heap_base,
        heap_capacity,
        seed,
        warmup_ops,
        track_payloads,
    )
    trace = _cache.get(key)
    if trace is not None:
        _hits += 1
        _cache.move_to_end(key)
        return trace
    _misses += 1
    trace = generate_trace(
        name,
        n_ops=n_ops,
        request_size=request_size,
        footprint=footprint,
        heap_base=heap_base,
        heap_capacity=heap_capacity,
        seed=seed,
        warmup_ops=warmup_ops,
        track_payloads=track_payloads,
    )
    _cache[key] = trace
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
    return trace
