"""Per-process memoization of generated workload traces.

Every experiment sweep replays the *same* seeded trace under several
schemes — fig13 alone generates each (workload, size) trace six times, once
per scheme, even though trace generation is completely independent of the
scheme being simulated. This module caches :func:`~repro.workloads
.generator.generate_trace` results keyed on every input that determines
the trace: ``(workload, n_ops, request_size, footprint, heap_base,
heap_capacity, seed, warmup_ops, track_payloads)``.

Safety: traces are lists of plain tuples and the simulator only *reads*
them (the timing state lives in :class:`~repro.memory.write_queue.WQEntry`
objects built per run), so sharing one :class:`GeneratedTrace` across runs
is sound. A cached run is bit-identical to an uncached one — asserted by
``tests/sim/test_trace_cache.py``.

The cache is per-process: each worker of the parallel experiment runner
(:mod:`repro.experiments.runner`) builds its own, so a trace is generated
at most once per worker regardless of how many schemes that worker
simulates. A small LRU bound keeps long design-space explorations from
accumulating traces without limit.

Below the process LRU sits an optional second tier, the on-disk
:class:`~repro.sim.outcome_store.OutcomeStore` (activated per run via
:func:`use_store`, normally from ``SimConfig.outcome_store``). Lookups
tier as **process LRU -> disk store -> generate/record**: a store hit
rebuilds the trace (arrays attached) or the recorded outcome stream from
its compact binary entry, and a miss falls through to the compute path
whose result is written back for the next process. A 4-job sweep against
one store therefore generates each trace and records each (trace,
geometry) walk exactly once fleet-wide.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.sim import outcome_store as _outcome_store
from repro.sim.batch import TraceArrays, build_arrays
from repro.sim.outcome_store import OutcomeStore
from repro.workloads.generator import GeneratedTrace, generate_trace

#: Maximum distinct traces retained per process (LRU eviction). A full
#: figure sweep needs ~15 (5 workloads x 3 sizes); 64 leaves generous
#: headroom for ablation grids without unbounded growth.
MAX_ENTRIES = 64

_cache: "OrderedDict[Tuple, GeneratedTrace]" = OrderedDict()
_enabled = True
_store: Optional[OutcomeStore] = None
_hits = 0
_misses = 0
_array_hits = 0
_array_misses = 0
_outcome_hits = 0
_outcome_misses = 0


def configure(enabled: bool) -> None:
    """Globally enable/disable memoization (disabling also clears).

    While disabled, *every* cache layer is bypassed: traces are
    regenerated per call, replay arrays are rebuilt per run without being
    attached to the trace, and recorded outcome streams are neither
    reused nor retained — the disabled path is truly uncached (the
    ``serial-nocache`` benchmark baseline relies on this).
    """
    global _enabled
    _enabled = enabled
    if not enabled:
        clear()


def use_store(path: Optional[str]) -> Optional[OutcomeStore]:
    """Activate (or deactivate, with ``None``) the on-disk second tier.

    Called per simulation from ``SimConfig.outcome_store``, so the
    config is the single source of truth: runs without a configured
    store never touch the disk tier, even mid-process after a run that
    used one. Re-activating the same path reuses the handle.
    """
    global _store
    if not path:
        _store = None
        return None
    root = os.path.abspath(path)
    if _store is None or _store.root != root:
        _store = OutcomeStore(root)
    return _store


def active_store() -> Optional[OutcomeStore]:
    """The currently-activated :class:`OutcomeStore`, if any."""
    return _store


def clear() -> None:
    """Drop all cached traces and reset the hit/miss counters.

    Derived data attached to the cached traces (replay arrays, recorded
    outcome streams) is detached too, so callers still holding a
    :class:`GeneratedTrace` reference cannot resurrect invalidated state
    through it — after ``clear()`` every replay pays its own decode and
    recording again (the on-disk store, if active, is not touched).
    """
    global _hits, _misses, _array_hits, _array_misses
    global _outcome_hits, _outcome_misses
    for trace in _cache.values():
        trace.replay_arrays = None
        trace.warmup_replay_arrays = None
        trace.replay_outcomes = None
    _cache.clear()
    _hits = 0
    _misses = 0
    _array_hits = 0
    _array_misses = 0
    _outcome_hits = 0
    _outcome_misses = 0


def clear_outcomes() -> None:
    """Drop recorded hierarchy outcome streams, keeping traces/arrays.

    Used by the benchmark's ``batched-replay`` leg so it pays its own
    recording cost (one walk per trace per geometry) instead of reusing
    recordings a previous leg made.
    """
    global _outcome_hits, _outcome_misses
    for trace in _cache.values():
        trace.replay_outcomes = None
    _outcome_hits = 0
    _outcome_misses = 0


def cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` since the last :func:`clear`."""
    return _hits, _misses


def array_stats() -> Tuple[int, int]:
    """Replay-array decode cache ``(hits, misses)`` since :func:`clear`.

    A *hit* means a replay reused arrays already decoded onto the trace
    (:func:`trace_arrays`/:func:`warmup_trace_arrays`); a *miss* paid one
    decode pass. Surfaced by the sweep runner as
    ``repro_trace_array_hits_total``/``repro_trace_array_misses_total``.
    """
    return _array_hits, _array_misses


def store_stats() -> Dict[str, int]:
    """Process-wide on-disk store counters (see
    :func:`repro.sim.outcome_store.store_stats`); zeros when no store
    has ever been activated."""
    return _outcome_store.store_stats()


def trace_arrays(trace: GeneratedTrace) -> TraceArrays:
    """The flat replay arrays for ``trace.ops``, decoded at most once.

    The arrays live on the trace object itself (``replay_arrays``), so a
    trace memoized by this cache is decoded once per process no matter
    how many schemes replay it. Arrays are pure derived data — sharing
    them is as sound as sharing the trace tuples. With memoization
    disabled the attached-array reuse is bypassed: every call pays a
    fresh decode and nothing is attached.
    """
    global _array_hits, _array_misses
    if not _enabled:
        _array_misses += 1
        return build_arrays(trace.ops)
    arrays = trace.replay_arrays
    if arrays is not None:
        _array_hits += 1
        return arrays
    _array_misses += 1
    arrays = build_arrays(trace.ops)
    trace.replay_arrays = arrays
    return arrays


def outcome_stats() -> Tuple[int, int]:
    """Hierarchy outcome-stream cache ``(hits, misses)`` since :func:`clear`.

    A *hit* means a replay reused a recorded cache-walk outcome stream
    (:func:`trace_outcomes`) — whether from this process's attached
    recordings or loaded from the on-disk store; a *miss* means the run
    had to walk (and record) the hierarchy itself. A six-scheme sweep
    over one trace records once and hits five times.
    """
    return _outcome_hits, _outcome_misses


def trace_outcomes(trace: GeneratedTrace, cache_sig: Tuple):
    """The recorded hierarchy outcomes of ``trace`` under ``cache_sig``.

    ``cache_sig`` is the cache-geometry key ``(l1, l2, l3, timing)``
    (frozen config dataclasses — hashable). Tiered lookup: recordings
    attached to the trace first, then the on-disk store (when active and
    the trace carries a store digest). Returns ``None`` (and counts a
    miss) when no recording exists yet; the caller then runs in
    recording mode and stores the result via
    :func:`store_trace_outcomes`.
    """
    global _outcome_hits, _outcome_misses
    if not _enabled:
        _outcome_misses += 1
        return None
    attached = trace.replay_outcomes
    outcomes = None if attached is None else attached.get(cache_sig)
    if outcomes is not None:
        _outcome_hits += 1
        return outcomes
    digest = getattr(trace, "store_digest", None)
    if _store is not None and digest is not None:
        outcomes = _store.load_outcomes(
            digest,
            cache_sig,
            n_main=len(trace.ops),
            n_warm=len(trace.warmup_ops),
        )
        if outcomes is not None:
            _outcome_hits += 1
            if attached is None:
                attached = {}
                trace.replay_outcomes = attached
            attached[cache_sig] = outcomes
            return outcomes
    _outcome_misses += 1
    return None


def store_trace_outcomes(trace: GeneratedTrace, cache_sig: Tuple, outcomes) -> None:
    """Attach a freshly-recorded outcome stream to the cached trace
    (and persist it to the on-disk store when one is active)."""
    if not _enabled:
        return
    store = trace.replay_outcomes
    if store is None:
        store = {}
        trace.replay_outcomes = store
    store[cache_sig] = outcomes
    digest = getattr(trace, "store_digest", None)
    if _store is not None and digest is not None:
        _store.save_outcomes(digest, cache_sig, outcomes)


def warmup_trace_arrays(trace: GeneratedTrace) -> TraceArrays:
    """Like :func:`trace_arrays`, for ``trace.warmup_ops``."""
    global _array_hits, _array_misses
    if not _enabled:
        _array_misses += 1
        return build_arrays(trace.warmup_ops)
    arrays = trace.warmup_replay_arrays
    if arrays is not None:
        _array_hits += 1
        return arrays
    _array_misses += 1
    arrays = build_arrays(trace.warmup_ops)
    trace.warmup_replay_arrays = arrays
    return arrays


def cached_generate_trace(
    name: str,
    n_ops: int,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    heap_base: int = 0,
    heap_capacity: Optional[int] = None,
    seed: int = 1,
    warmup_ops: int = 0,
    track_payloads: bool = False,
) -> GeneratedTrace:
    """Memoized :func:`~repro.workloads.generator.generate_trace`.

    Lookup order: process LRU, then the on-disk store (when active —
    a hit decodes the stored op streams, arrays attached, without
    running the workload), then generation (written back to the store).
    The returned trace is shared between callers and must be treated as
    immutable (it is: ops are tuples).
    """
    global _hits, _misses
    if not _enabled:
        return generate_trace(
            name,
            n_ops=n_ops,
            request_size=request_size,
            footprint=footprint,
            heap_base=heap_base,
            heap_capacity=heap_capacity,
            seed=seed,
            warmup_ops=warmup_ops,
            track_payloads=track_payloads,
        )
    key = (
        name,
        n_ops,
        request_size,
        footprint,
        heap_base,
        heap_capacity,
        seed,
        warmup_ops,
        track_payloads,
    )
    trace = _cache.get(key)
    if trace is not None:
        _hits += 1
        _cache.move_to_end(key)
        return trace
    _misses += 1
    digest = None
    trace = None
    if _store is not None:
        digest = _outcome_store.trace_digest(
            name,
            n_ops,
            request_size,
            footprint,
            heap_base,
            heap_capacity,
            seed,
            warmup_ops,
            track_payloads,
        )
        trace = _store.load_trace(digest)
    if trace is None:
        trace = generate_trace(
            name,
            n_ops=n_ops,
            request_size=request_size,
            footprint=footprint,
            heap_base=heap_base,
            heap_capacity=heap_capacity,
            seed=seed,
            warmup_ops=warmup_ops,
            track_payloads=track_payloads,
        )
        if _store is not None:
            _store.save_trace(digest, trace)
    if digest is not None:
        # Key for the outcome tier; GeneratedTrace is a plain dataclass,
        # so derived attributes ride along like replay_arrays does.
        trace.store_digest = digest
    _cache[key] = trace
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
    return trace
