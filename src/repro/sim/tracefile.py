"""Binary trace files: persist and reload generated op streams.

Trace-driven methodology separates *generation* (running the workload)
from *simulation* (replaying under many schemes). Saving traces to disk
makes sweeps reproducible and shareable: generate once, replay the
identical stream under every configuration — the standard gem5/NVMain
workflow the paper used.

Format (little-endian):

* 16-byte header: magic ``SMTR``, version u16, flags u16 (bit 0 =
  payloads present), op count u64;
* per op: opcode u8 followed by its operands —
  ``LOAD/STORE``: line u64; ``CLWB``: line u64 + (payload length u16 +
  bytes, when the payload flag is set); ``FENCE``: nothing;
  ``TXN_BEGIN/TXN_END``: id u64; ``COMPUTE``: f64 nanoseconds.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, List

from repro.common.errors import SimulationError
from repro.txn.persist import (
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
    TraceOp,
)

MAGIC = b"SMTR"
VERSION = 1
_FLAG_PAYLOADS = 1


def save_trace(path: str | Path, ops: List[TraceOp], payloads: bool = False) -> int:
    """Write ``ops`` to ``path``; returns the byte size written.

    ``payloads=True`` stores CLWB payloads (functional traces); otherwise
    payloads are dropped and reload yields ``None`` payloads.
    """
    flags = _FLAG_PAYLOADS if payloads else 0
    with open(path, "wb") as fh:
        fh.write(struct.pack("<4sHHQ", MAGIC, VERSION, flags, len(ops)))
        for op in ops:
            _write_op(fh, op, payloads)
        return fh.tell()


def _write_op(fh: BinaryIO, op: TraceOp, payloads: bool) -> None:
    kind = op[0]
    fh.write(struct.pack("<B", kind))
    if kind in (OP_LOAD, OP_STORE):
        fh.write(struct.pack("<Q", op[1]))
    elif kind == OP_CLWB:
        fh.write(struct.pack("<Q", op[1]))
        if payloads:
            payload = op[2] if len(op) > 2 and op[2] is not None else b""
            fh.write(struct.pack("<H", len(payload)))
            fh.write(payload)
    elif kind == OP_FENCE:
        pass
    elif kind in (OP_TXN_BEGIN, OP_TXN_END):
        fh.write(struct.pack("<Q", op[1]))
    elif kind == OP_COMPUTE:
        fh.write(struct.pack("<d", op[1]))
    else:
        raise SimulationError(f"cannot serialise op {op!r}")


def load_trace(path: str | Path) -> List[TraceOp]:
    """Read a trace file written by :func:`save_trace`."""
    with open(path, "rb") as fh:
        header = fh.read(16)
        if len(header) != 16:
            raise SimulationError(f"{path}: truncated header")
        magic, version, flags, count = struct.unpack("<4sHHQ", header)
        if magic != MAGIC:
            raise SimulationError(f"{path}: not a trace file (bad magic)")
        if version != VERSION:
            raise SimulationError(f"{path}: unsupported version {version}")
        payloads = bool(flags & _FLAG_PAYLOADS)
        ops: List[TraceOp] = []
        for _ in range(count):
            ops.append(_read_op(fh, payloads))
        return ops


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise SimulationError("truncated trace file")
    return data


def _read_op(fh: BinaryIO, payloads: bool) -> TraceOp:
    kind = _read_exact(fh, 1)[0]
    if kind in (OP_LOAD, OP_STORE):
        (line,) = struct.unpack("<Q", _read_exact(fh, 8))
        return (kind, line)
    if kind == OP_CLWB:
        (line,) = struct.unpack("<Q", _read_exact(fh, 8))
        if payloads:
            (length,) = struct.unpack("<H", _read_exact(fh, 2))
            payload = _read_exact(fh, length) if length else None
            return (kind, line, payload)
        return (kind, line, None)
    if kind == OP_FENCE:
        return (kind,)
    if kind in (OP_TXN_BEGIN, OP_TXN_END):
        (txn_id,) = struct.unpack("<Q", _read_exact(fh, 8))
        return (kind, txn_id)
    if kind == OP_COMPUTE:
        (ns,) = struct.unpack("<d", _read_exact(fh, 8))
        return (kind, ns)
    raise SimulationError(f"unknown opcode {kind} in trace file")


def trace_summary(ops: List[TraceOp]) -> dict:
    """Quick statistics of a trace (op mix, footprint, txn count)."""
    from collections import Counter

    from repro.txn.persist import OP_NAMES

    kinds = Counter(op[0] for op in ops)
    lines = {op[1] for op in ops if op[0] in (OP_LOAD, OP_STORE, OP_CLWB)}
    return {
        "ops": len(ops),
        "mix": {OP_NAMES[k]: v for k, v in sorted(kinds.items())},
        "distinct_lines": len(lines),
        "footprint_bytes": len(lines) * 64,
        "transactions": kinds.get(OP_TXN_BEGIN, 0),
    }
