"""Internal-consistency validation of simulation results.

A trace-driven model can silently drift (a counter not incremented, a path
double-counted) without any test failing loudly. :func:`validate_result`
cross-checks the bookkeeping invariants that must hold between independent
components after any completed run:

* conservation: every appended write was either issued or coalesced away
  (the queue drains empty);
* pairing: under write-through encryption, counter appends equal data
  appends (before coalescing);
* provenance: data appends at the queue equal persists at the secure
  memory layer;
* plausibility: latencies are non-negative, the hit rate is a
  probability, bank busy time fits inside the run.

Experiments call it in their loops (it is cheap) so a model regression
surfaces as a loud `ValidationError` with the violated invariant named,
not as a quietly wrong figure.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ReproError
from repro.sim.metrics import SimResult


class ValidationError(ReproError):
    """A bookkeeping invariant of the simulation was violated."""


def validate_result(
    result: SimResult,
    encrypted: bool | None = None,
    write_through: bool | None = None,
    n_banks: int = 8,
) -> List[str]:
    """Check cross-component invariants; returns the list of checks run.

    Raises :class:`ValidationError` naming the first violated invariant.
    ``encrypted``/``write_through`` enable the scheme-specific checks when
    the caller knows the configuration.
    """
    stats = result.stats
    checks: List[str] = []

    def ensure(condition: bool, name: str, detail: str = "") -> None:
        checks.append(name)
        if not condition:
            raise ValidationError(f"invariant {name!r} violated: {detail}")

    appends = stats.get("wq", "appends")
    issued = stats.get("wq", "issued")
    coalesced = stats.get("wq", "cwc_coalesced")
    adr = stats.get("wq", "adr_flushed")
    ensure(
        appends == issued + coalesced + adr,
        "write-conservation",
        f"appends={appends} issued={issued} coalesced={coalesced} adr={adr}",
    )

    data_appends = stats.get("wq", "data_appends")
    counter_appends = stats.get("wq", "counter_appends")
    ensure(
        appends == data_appends + counter_appends,
        "append-classification",
        f"{appends} != {data_appends}+{counter_appends}",
    )

    if encrypted is False:
        ensure(counter_appends == 0, "unsec-no-counters", f"{counter_appends}")
    if encrypted and write_through:
        # Every data write pairs a counter write; re-encryption and
        # counter-cache machinery never *reduce* counters below data.
        ensure(
            counter_appends >= data_appends,
            "write-through-pairing",
            f"ctr={counter_appends} < data={data_appends}",
        )

    persists = stats.get("secmem", "data_writes")
    if persists:
        ensure(
            data_appends >= persists,
            "persist-provenance",
            f"data_appends={data_appends} < persists={persists}",
        )

    ensure(
        all(lat >= 0 for lat in result.txn_latencies),
        "non-negative-latency",
    )
    hit_rate = result.counter_cache_hit_rate
    ensure(0.0 <= hit_rate <= 1.0, "hit-rate-range", f"{hit_rate}")

    if result.total_time_ns > 0:
        for bank in range(n_banks):
            busy = stats.get(f"bank.{bank}", "busy_ns")
            ensure(
                busy <= result.total_time_ns + 1e-6,
                "bank-busy-fits-run",
                f"bank {bank}: busy={busy} > total={result.total_time_ns}",
            )

    ensure(result.coalesced_counter_writes <= result.counter_writes, "coalesce-bound")
    return checks
