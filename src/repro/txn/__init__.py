"""Durable transactions over persistent memory.

The paper's workloads wrap every data-structure operation in an undo-log
durable transaction (Section 2.3, Table 1): *prepare* logs the old data,
*mutate* updates in place, *commit* invalidates the log entry; each stage
ends with cache-line flushes and a fence.

* :mod:`repro.txn.persist` — the persistence primitives as **memory
  domains**: the same data-structure code runs against a
  :class:`~repro.txn.persist.TraceDomain` (records a compact op trace for
  the timing simulator) or a :class:`~repro.txn.persist.DirectDomain`
  (drives a functional :class:`~repro.core.system.SecureMemorySystem` for
  crash experiments);
* :mod:`repro.txn.log` — the undo-log region: entry wire format with magic
  and checksum (so recovery can *detect* undecryptable entries), circular
  allocation, and the post-crash log scan;
* :mod:`repro.txn.transaction` — the transaction manager emitting the
  paper's exact prepare/mutate/commit sequence with crash probes at every
  stage boundary.
"""

from repro.txn.log import LogEntry, LogRegion, scan_log
from repro.txn.persist import (
    DirectDomain,
    MemoryDomain,
    OP_CLWB,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXN_BEGIN,
    OP_TXN_END,
    TraceDomain,
)
from repro.txn.transaction import TransactionManager

__all__ = [
    "LogEntry",
    "LogRegion",
    "scan_log",
    "DirectDomain",
    "MemoryDomain",
    "TraceDomain",
    "TransactionManager",
    "OP_CLWB",
    "OP_COMPUTE",
    "OP_FENCE",
    "OP_LOAD",
    "OP_STORE",
    "OP_TXN_BEGIN",
    "OP_TXN_END",
]
