"""The undo-log region: wire format, allocation, and post-crash scanning.

Each log entry occupies a whole number of lines:

* one 64 B **header** line: magic, transaction id, target address, length,
  state (valid / invalidated), and a checksum over all header fields;
* ``ceil(length / 64)`` **payload** lines holding the old data.

The checksum is what lets recovery *detect* an undecryptable entry: when a
crash loses the counters that encrypted the log (the paper's Table 1
mutate/commit rows for unprotected systems), decryption yields garbage, the
magic/checksum test fails, and the entry — along with the data it was
guarding — is unrecoverable. With SuperMem the log always decrypts and the
scan returns clean entries.

Entries are allocated bump-style and wrap around the region (a circular
log); by the time the cursor wraps, earlier transactions have committed and
their entries are invalid.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import SimulationError

LOG_MAGIC = 0x534D4C47  # "SMLG"
STATE_VALID = 1
STATE_INVALID = 0
#: Redo logging only: the transaction's commit record is written — replay
#: must (re)apply the logged new data.
STATE_COMMITTED = 2

#: Entry kinds: undo entries hold the *old* data (valid => roll back),
#: redo entries hold the *new* data (committed => roll forward).
KIND_UNDO = 0
KIND_REDO = 1

_HEADER_FMT = "<IIIIQQIQ"  # magic, state, kind, pad, txn_id, target, length, checksum
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


def _checksum(txn_id: int, target_addr: int, length: int, state: int, kind: int) -> int:
    """Order-sensitive 64-bit mix over the header fields."""
    value = 0xCBF29CE484222325
    for field in (LOG_MAGIC, state, kind, txn_id, target_addr, length):
        value ^= field & 0xFFFFFFFFFFFFFFFF
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


@dataclass
class LogEntry:
    """A parsed (or to-be-written) log entry."""

    txn_id: int
    target_addr: int
    length: int
    state: int = STATE_VALID
    #: Logged bytes: old data for undo entries, new data for redo entries.
    old_data: bytes = b""
    kind: int = KIND_UNDO
    #: Byte address of the header line in the log region.
    header_addr: int = -1

    @property
    def payload_lines(self) -> int:
        return (self.length + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE

    @property
    def total_lines(self) -> int:
        return 1 + self.payload_lines

    @property
    def valid(self) -> bool:
        return self.state == STATE_VALID

    def header_bytes(self) -> bytes:
        """The 64 B header line image."""
        packed = struct.pack(
            _HEADER_FMT,
            LOG_MAGIC,
            self.state,
            self.kind,
            0,
            self.txn_id,
            self.target_addr,
            self.length,
            _checksum(self.txn_id, self.target_addr, self.length, self.state, self.kind),
        )
        return packed + bytes(CACHE_LINE_SIZE - _HEADER_SIZE)

    @classmethod
    def parse_header(cls, data: bytes, header_addr: int = -1) -> Optional["LogEntry"]:
        """Parse a header line; returns None when it is not a clean header.

        Garbage (from an undecryptable log line) fails the magic or
        checksum test — this is the detection mechanism recovery relies on.
        """
        if len(data) < _HEADER_SIZE:
            return None
        magic, state, kind, _pad, txn_id, target_addr, length, checksum = (
            struct.unpack_from(_HEADER_FMT, data, 0)
        )
        if magic != LOG_MAGIC:
            return None
        if checksum != _checksum(txn_id, target_addr, length, state, kind):
            return None
        if state not in (STATE_VALID, STATE_INVALID, STATE_COMMITTED):
            return None
        if kind not in (KIND_UNDO, KIND_REDO):
            return None
        return cls(
            txn_id=txn_id,
            target_addr=target_addr,
            length=length,
            state=state,
            kind=kind,
            header_addr=header_addr,
        )


class LogRegion:
    """Circular allocator of log entries within a contiguous region."""

    def __init__(self, base_addr: int, size: int):
        if base_addr % CACHE_LINE_SIZE or size % CACHE_LINE_SIZE:
            raise SimulationError("log region must be line-aligned")
        if size < 2 * CACHE_LINE_SIZE:
            raise SimulationError("log region too small for any entry")
        self.base_addr = base_addr
        self.size = size
        self._cursor = 0

    @property
    def end_addr(self) -> int:
        return self.base_addr + self.size

    def allocate(self, entry_lines: int) -> int:
        """Reserve space for ``entry_lines`` lines; returns the header addr.

        Wraps to the start when the tail cannot fit the entry contiguously
        (entries never straddle the wrap point so the scanner stays simple).
        """
        need = entry_lines * CACHE_LINE_SIZE
        if need > self.size:
            raise SimulationError(
                f"log entry of {entry_lines} lines exceeds region size {self.size}"
            )
        if self._cursor + need > self.size:
            self._cursor = 0
        addr = self.base_addr + self._cursor
        self._cursor += need
        return addr

    def header_addresses(self) -> range:
        """Every line-aligned address in the region (scan candidates)."""
        return range(self.base_addr, self.end_addr, CACHE_LINE_SIZE)


def scan_log(
    region: LogRegion,
    read_line: Callable[[int], bytes],
) -> List[LogEntry]:
    """Walk the region and parse every clean header found.

    Parameters
    ----------
    region:
        The log region to scan.
    read_line:
        ``byte_addr -> 64 bytes`` — typically the recovered system's
        :meth:`~repro.core.recovery.RecoveredSystem.plaintext_of` adapted
        to byte addresses.

    Returns
    -------
    list of LogEntry
        Parsed entries (valid and invalidated), with ``old_data``
        populated from the payload lines. Corrupt headers are skipped;
        the *caller* decides whether a missing-but-needed entry means the
        state is unrecoverable.
    """
    entries: List[LogEntry] = []
    addr = region.base_addr
    while addr < region.end_addr:
        header = LogEntry.parse_header(read_line(addr), header_addr=addr)
        if header is None:
            addr += CACHE_LINE_SIZE
            continue
        payload = bytearray()
        for i in range(header.payload_lines):
            payload += read_line(addr + (1 + i) * CACHE_LINE_SIZE)
        header.old_data = bytes(payload[: header.length])
        entries.append(header)
        addr += header.total_lines * CACHE_LINE_SIZE
    return entries
