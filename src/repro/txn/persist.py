"""Persistence primitives as pluggable memory domains.

A *memory domain* exposes the operations a persistent data structure needs
— ``load``, ``store``, ``clwb``, ``sfence``, transaction markers — without
fixing what happens underneath. Two implementations:

``TraceDomain``
    Records a compact operation trace (plain tuples for speed) that the
    timing simulator replays through the CPU caches and the memory system.
    Optionally keeps functional line contents so traces can carry payloads.

``DirectDomain``
    Applies operations straight to a functional
    :class:`~repro.core.system.SecureMemorySystem`, modelling the volatile
    CPU-cache contents as a line buffer: stores stay volatile until
    ``clwb`` pushes the line into the persistence domain. This is the
    executor for crash experiments — a crash loses exactly the lines that
    were stored but never flushed.

Trace op encoding (tuples; first element is the opcode):

====================  =======================================
``(OP_LOAD, line)``         demand load of one line
``(OP_STORE, line)``        store touching one line
``(OP_CLWB, line, bytes)``  flush one line (payload may be None)
``(OP_FENCE,)``             sfence
``(OP_TXN_BEGIN, id)``      transaction start marker
``(OP_TXN_END, id)``        transaction end marker
``(OP_COMPUTE, ns)``        CPU work outside the memory system
====================  =======================================
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import SimulationError
from repro.core.system import SecureMemorySystem

OP_LOAD = 0
OP_STORE = 1
OP_CLWB = 2
OP_FENCE = 3
OP_TXN_BEGIN = 4
OP_TXN_END = 5
OP_COMPUTE = 6

#: Human-readable opcode names (debugging / trace dumps).
OP_NAMES = {
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_CLWB: "clwb",
    OP_FENCE: "sfence",
    OP_TXN_BEGIN: "txn_begin",
    OP_TXN_END: "txn_end",
    OP_COMPUTE: "compute",
}

TraceOp = Tuple


def lines_of_range(addr: int, size: int) -> range:
    """Line indices overlapped by ``[addr, addr+size)``."""
    if size <= 0:
        raise SimulationError(f"zero/negative access size at {addr:#x}")
    first = addr // CACHE_LINE_SIZE
    last = (addr + size - 1) // CACHE_LINE_SIZE
    return range(first, last + 1)


class MemoryDomain(abc.ABC):
    """The persistence interface data structures are written against."""

    #: Whether loads return real bytes (and stores require them).
    functional: bool = False

    @abc.abstractmethod
    def load(self, addr: int, size: int) -> Optional[bytes]:
        """Read ``size`` bytes at ``addr`` (emits read traffic)."""

    @abc.abstractmethod
    def store(self, addr: int, size: int, data: Optional[bytes] = None) -> None:
        """Write ``size`` bytes at ``addr`` (volatile until flushed)."""

    @abc.abstractmethod
    def clwb(self, addr: int, size: int = CACHE_LINE_SIZE) -> None:
        """Flush every line overlapping ``[addr, addr+size)``."""

    @abc.abstractmethod
    def sfence(self) -> None:
        """Order prior flushes before subsequent writes."""

    def peek(self, addr: int, size: int) -> Optional[bytes]:
        """Read ``size`` bytes at ``addr`` WITHOUT emitting read traffic.

        Workloads use this when they need current contents to compute a
        functional write (e.g. the array swap) but the corresponding
        timing-visible loads are emitted elsewhere — keeping the op
        stream identical between functional and timing-only traces.
        Defaults to :meth:`load` for domains whose loads are side-effect
        free.
        """
        return self.load(addr, size)

    def txn_begin(self, txn_id: int) -> None:  # noqa: B027 - optional hook
        """Mark a transaction start (trace bookkeeping only)."""

    def txn_end(self, txn_id: int) -> None:  # noqa: B027 - optional hook
        """Mark a transaction end."""

    def compute(self, ns: float) -> None:  # noqa: B027 - optional hook
        """Account CPU work outside the memory system."""

    def persist_store(self, addr: int, size: int, data: Optional[bytes] = None) -> None:
        """Convenience: store + clwb of the touched lines."""
        self.store(addr, size, data)
        self.clwb(addr, size)


class TraceDomain(MemoryDomain):
    """Records the operation stream for the timing simulator.

    Parameters
    ----------
    track_payloads:
        Keep functional line contents and attach them to CLWB ops. Needed
        only when the trace will drive a functional simulation; timing
        sweeps leave it off for speed.
    """

    def __init__(self, track_payloads: bool = False):
        self.ops: List[TraceOp] = []
        self.track_payloads = track_payloads
        self.functional = track_payloads
        self._content: Dict[int, bytearray] = {}

    # -- content helpers ------------------------------------------------

    def _line_buf(self, line: int) -> bytearray:
        buf = self._content.get(line)
        if buf is None:
            buf = bytearray(CACHE_LINE_SIZE)
            self._content[line] = buf
        return buf

    def _write_content(self, addr: int, data: bytes) -> None:
        offset = 0
        while offset < len(data):
            line = (addr + offset) // CACHE_LINE_SIZE
            within = (addr + offset) % CACHE_LINE_SIZE
            chunk = min(CACHE_LINE_SIZE - within, len(data) - offset)
            self._line_buf(line)[within : within + chunk] = data[
                offset : offset + chunk
            ]
            offset += chunk

    def _read_content(self, addr: int, size: int) -> bytes:
        out = bytearray()
        offset = 0
        while offset < size:
            line = (addr + offset) // CACHE_LINE_SIZE
            within = (addr + offset) % CACHE_LINE_SIZE
            chunk = min(CACHE_LINE_SIZE - within, size - offset)
            buf = self._content.get(line)
            piece = buf[within : within + chunk] if buf else bytes(chunk)
            out += piece
            offset += chunk
        return bytes(out)

    # -- MemoryDomain ----------------------------------------------------

    def load(self, addr: int, size: int) -> Optional[bytes]:
        append = self.ops.append
        for line in lines_of_range(addr, size):
            append((OP_LOAD, line))
        if self.track_payloads:
            return self._read_content(addr, size)
        return None

    def peek(self, addr: int, size: int) -> Optional[bytes]:
        """Current contents without recording any trace ops."""
        if self.track_payloads:
            return self._read_content(addr, size)
        return None

    def store(self, addr: int, size: int, data: Optional[bytes] = None) -> None:
        append = self.ops.append
        for line in lines_of_range(addr, size):
            append((OP_STORE, line))
        if self.track_payloads and data is not None:
            self._write_content(addr, data)

    def clwb(self, addr: int, size: int = CACHE_LINE_SIZE) -> None:
        append = self.ops.append
        for line in lines_of_range(addr, size):
            if self.track_payloads:
                append((OP_CLWB, line, bytes(self._line_buf(line))))
            else:
                append((OP_CLWB, line, None))

    def sfence(self) -> None:
        self.ops.append((OP_FENCE,))

    def txn_begin(self, txn_id: int) -> None:
        self.ops.append((OP_TXN_BEGIN, txn_id))

    def txn_end(self, txn_id: int) -> None:
        self.ops.append((OP_TXN_END, txn_id))

    def compute(self, ns: float) -> None:
        self.ops.append((OP_COMPUTE, ns))

    def take_ops(self) -> List[TraceOp]:
        """Detach and return the accumulated trace."""
        ops = self.ops
        self.ops = []
        return ops


class DirectDomain(MemoryDomain):
    """Drives a functional memory system, modelling volatile CPU caches.

    Stores land in a volatile line buffer; ``clwb`` persists the buffered
    line through :meth:`SecureMemorySystem.persist_line`. Loads prefer the
    volatile copy (cache hit) and otherwise read the persistent plaintext.
    Time advances by the durability latency of each flush, so the same
    driver doubles as a coarse timing harness in functional tests.
    """

    functional = True

    def __init__(self, system: SecureMemorySystem, core: int = 0):
        self.system = system
        self.core = core
        self.now: float = 0.0
        self._volatile: Dict[int, bytearray] = {}
        self._dirty: set[int] = set()
        #: Lines flushed at least once — the experiment's shadow universe.
        self.flushed_shadow: Dict[int, bytes] = {}

    def _line_buf(self, line: int) -> bytearray:
        buf = self._volatile.get(line)
        if buf is None:
            base = self.system.functional_read_plaintext(line)
            buf = bytearray(base)
            self._volatile[line] = buf
        return buf

    def load(self, addr: int, size: int) -> Optional[bytes]:
        out = bytearray()
        offset = 0
        while offset < size:
            line = (addr + offset) // CACHE_LINE_SIZE
            within = (addr + offset) % CACHE_LINE_SIZE
            chunk = min(CACHE_LINE_SIZE - within, size - offset)
            buf = self._volatile.get(line)
            if buf is None:
                piece = self.system.functional_read_plaintext(line)[
                    within : within + chunk
                ]
            else:
                piece = bytes(buf[within : within + chunk])
            out += piece
            offset += chunk
        return bytes(out)

    def store(self, addr: int, size: int, data: Optional[bytes] = None) -> None:
        if data is None:
            raise SimulationError("DirectDomain stores require real bytes")
        if len(data) != size:
            raise SimulationError(f"store size mismatch: {len(data)} != {size}")
        offset = 0
        while offset < size:
            line = (addr + offset) // CACHE_LINE_SIZE
            within = (addr + offset) % CACHE_LINE_SIZE
            chunk = min(CACHE_LINE_SIZE - within, size - offset)
            self._line_buf(line)[within : within + chunk] = data[
                offset : offset + chunk
            ]
            self._dirty.add(line)
            offset += chunk

    def clwb(self, addr: int, size: int = CACHE_LINE_SIZE) -> None:
        for line in lines_of_range(addr, size):
            if line not in self._dirty:
                continue  # clean line: clwb is a no-op at memory
            payload = bytes(self._volatile[line])
            result = self.system.persist_line(
                self.now, line, payload=payload, core=self.core
            )
            self._dirty.discard(line)
            self.now = max(self.now, result.durable_time) + 1.0
            self.flushed_shadow[line] = payload

    def sfence(self) -> None:
        # persist_line is synchronous in this driver; the fence only
        # advances time a little.
        self.now += 1.0

    def compute(self, ns: float) -> None:
        self.now += ns
