"""Durable transactions: the prepare / mutate / commit sequence of Table 1.

``TransactionManager.run`` executes one write-set as a durable transaction
against any :class:`~repro.txn.persist.MemoryDomain`:

1. **prepare** — read the old data, write a log entry (header + old data),
   flush every log line, fence;
2. **mutate** — write the new data in place, flush, fence;
3. **commit** — rewrite the header invalidated, flush, fence.

Crash probes fire at each stage boundary (``txn-after-prepare`` /
``txn-after-mutate`` / ``txn-after-commit``) and, through the memory
domain, inside every flush — which is how the Table 1 experiments crash
*during* a stage.

Recovery (:func:`recover_data_view`) replays the classic undo rule over a
crashed image: a *valid* log entry means its transaction did not commit, so
the old data is restored; an *invalidated* (or absent) entry leaves the
data region as found.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import SimulationError
from repro.core.crash import CrashController
from repro.core.recovery import RecoveredSystem
from repro.txn.log import (
    KIND_REDO,
    LogEntry,
    LogRegion,
    STATE_COMMITTED,
    STATE_INVALID,
    scan_log,
)
from repro.txn.persist import MemoryDomain

#: One write of a transaction: (byte address, size, new bytes or None).
WriteSpec = Tuple[int, int, Optional[bytes]]


@dataclass
class TxnStats:
    """Counts maintained by a TransactionManager."""

    committed: int = 0
    log_lines_written: int = 0
    data_lines_written: int = 0


class TransactionManager:
    """Runs durable transactions (undo or redo logging) on a memory domain.

    ``logging_mode="undo"`` (default, the paper's Table 1 protocol): log
    old data, mutate in place, invalidate. ``"redo"``: log new data, write
    a commit record (durability point), then mutate in place and
    invalidate — recovery rolls committed-but-unapplied entries forward.
    """

    def __init__(
        self,
        domain: MemoryDomain,
        log_region: LogRegion,
        crash: Optional[CrashController] = None,
        logging_mode: str = "undo",
    ):
        if logging_mode not in ("undo", "redo"):
            raise SimulationError(f"unknown logging mode {logging_mode!r}")
        self.domain = domain
        self.log = log_region
        self.crash_ctl = crash or CrashController()
        self.logging_mode = logging_mode
        self.stats = TxnStats()
        self._txn_ids = itertools.count(1)

    # ------------------------------------------------------------------

    def run(
        self,
        writes: Sequence[WriteSpec],
        reads: Sequence[Tuple[int, int]] = (),
    ) -> int:
        """Execute one durable transaction; returns its txn id.

        ``reads`` are the operation's traversal loads (e.g. a B-tree
        descent), performed inside the transaction window so they count
        toward its latency. Each write gets one log entry (header + old
        data), mirroring how a transaction logs each mutated object.
        """
        if not writes:
            raise SimulationError("empty transaction")
        txn_id = next(self._txn_ids)
        domain = self.domain
        domain.txn_begin(txn_id)
        for addr, size in reads:
            domain.load(addr, size)
        if self.logging_mode == "redo":
            self._run_redo(txn_id, writes)
        else:
            self._run_undo(txn_id, writes)
        domain.txn_end(txn_id)
        self.stats.committed += 1
        return txn_id

    def _run_undo(self, txn_id: int, writes: Sequence[WriteSpec]) -> None:
        domain = self.domain

        # ---- prepare: log the old data ------------------------------
        # Torn-entry safety: payload lines are persisted *before* the
        # header that makes the entry visible. A crash before the header
        # append leaves the entry invisible (stale/garbage header fails
        # the magic/checksum test) and the untouched data is consistent;
        # a crash after it finds a complete entry.
        entries: List[Tuple[int, LogEntry]] = []
        for addr, size, _new in writes:
            old = domain.load(addr, size)
            entry = LogEntry(
                txn_id=txn_id,
                target_addr=addr,
                length=size,
                old_data=old if old is not None else b"",
            )
            header_addr = self.log.allocate(entry.total_lines)
            entries.append((header_addr, entry))
            self._write_log_payload(header_addr, entry, old)
        domain.sfence()
        for header_addr, entry in entries:
            domain.store(header_addr, CACHE_LINE_SIZE, entry.header_bytes())
            domain.clwb(header_addr, CACHE_LINE_SIZE)
            self.stats.log_lines_written += 1
        domain.sfence()
        self.crash_ctl.probe("txn-after-prepare", detail=f"txn {txn_id}")

        # ---- mutate: update in place --------------------------------
        for addr, size, new in writes:
            domain.store(addr, size, new)
            domain.clwb(addr, size)
            self.stats.data_lines_written += len(
                range(addr // CACHE_LINE_SIZE, (addr + size - 1) // CACHE_LINE_SIZE + 1)
            )
        domain.sfence()
        self.crash_ctl.probe("txn-after-mutate", detail=f"txn {txn_id}")

        # ---- commit: invalidate the log entries ---------------------
        for header_addr, entry in entries:
            entry.state = STATE_INVALID
            domain.store(header_addr, CACHE_LINE_SIZE, entry.header_bytes())
            domain.clwb(header_addr, CACHE_LINE_SIZE)
        domain.sfence()
        self.crash_ctl.probe("txn-after-commit", detail=f"txn {txn_id}")

    def _run_redo(self, txn_id: int, writes: Sequence[WriteSpec]) -> None:
        """Redo protocol: log NEW data, commit record, then apply."""
        domain = self.domain

        # ---- prepare: log the new data (payload before header) -------
        entries: List[Tuple[int, LogEntry]] = []
        for addr, size, new in writes:
            entry = LogEntry(
                txn_id=txn_id,
                target_addr=addr,
                length=size,
                old_data=new if new is not None else b"",
                kind=KIND_REDO,
            )
            header_addr = self.log.allocate(entry.total_lines)
            entries.append((header_addr, entry))
            self._write_log_payload(header_addr, entry, new)
        domain.sfence()
        for header_addr, entry in entries:
            domain.store(header_addr, CACHE_LINE_SIZE, entry.header_bytes())
            domain.clwb(header_addr, CACHE_LINE_SIZE)
            self.stats.log_lines_written += 1
        domain.sfence()
        self.crash_ctl.probe("txn-after-prepare", detail=f"txn {txn_id}")

        # ---- commit record: the durability point ---------------------
        for header_addr, entry in entries:
            entry.state = STATE_COMMITTED
            domain.store(header_addr, CACHE_LINE_SIZE, entry.header_bytes())
            domain.clwb(header_addr, CACHE_LINE_SIZE)
        domain.sfence()
        self.crash_ctl.probe("txn-after-commit-record", detail=f"txn {txn_id}")

        # ---- apply: write the data in place --------------------------
        for addr, size, new in writes:
            domain.store(addr, size, new)
            domain.clwb(addr, size)
            self.stats.data_lines_written += len(
                range(addr // CACHE_LINE_SIZE, (addr + size - 1) // CACHE_LINE_SIZE + 1)
            )
        domain.sfence()
        self.crash_ctl.probe("txn-after-mutate", detail=f"txn {txn_id}")

        # ---- retire: invalidate the log entries ----------------------
        for header_addr, entry in entries:
            entry.state = STATE_INVALID
            domain.store(header_addr, CACHE_LINE_SIZE, entry.header_bytes())
            domain.clwb(header_addr, CACHE_LINE_SIZE)
        domain.sfence()
        self.crash_ctl.probe("txn-after-commit", detail=f"txn {txn_id}")

    def _write_log_payload(
        self, header_addr: int, entry: LogEntry, old: Optional[bytes]
    ) -> None:
        """Emit and flush the payload (old-data) lines of one log entry."""
        domain = self.domain
        payload_lines = entry.payload_lines
        for i in range(payload_lines):
            line_addr = header_addr + (1 + i) * CACHE_LINE_SIZE
            if old is not None:
                chunk = old[i * CACHE_LINE_SIZE : (i + 1) * CACHE_LINE_SIZE]
                chunk = chunk + bytes(CACHE_LINE_SIZE - len(chunk))
            else:
                chunk = None
            domain.store(line_addr, CACHE_LINE_SIZE, chunk)
        domain.clwb(
            header_addr + CACHE_LINE_SIZE, payload_lines * CACHE_LINE_SIZE
        )
        self.stats.log_lines_written += payload_lines


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """Outcome of log recovery over a crashed image."""

    #: Entries whose logged data was applied: rolled-back undo entries
    #: (valid, uncommitted) and rolled-forward redo entries (committed,
    #: possibly unapplied).
    undone: List[LogEntry] = field(default_factory=list)
    #: Entries found invalidated (committed transactions).
    committed: List[LogEntry] = field(default_factory=list)
    #: Restored data view: line index -> plaintext after undo.
    view: Dict[int, bytes] = field(default_factory=dict)


def recover_data_view(
    recovered: RecoveredSystem,
    log_region: LogRegion,
    data_lines: Sequence[int],
) -> RecoveryReport:
    """Replay undo recovery and materialise the post-recovery data view.

    Parameters
    ----------
    recovered:
        The decryption view of the durable image.
    log_region:
        Where the crashed system kept its undo log.
    data_lines:
        The data lines the caller cares about (the audit universe).
    """

    def read_line(byte_addr: int) -> bytes:
        return recovered.plaintext_of(byte_addr // CACHE_LINE_SIZE)

    report = RecoveryReport()
    report.view = {line: recovered.plaintext_of(line) for line in data_lines}

    def apply(entry: LogEntry) -> None:
        addr = entry.target_addr
        data = entry.old_data
        offset = 0
        while offset < entry.length:
            line = (addr + offset) // CACHE_LINE_SIZE
            within = (addr + offset) % CACHE_LINE_SIZE
            chunk = min(CACHE_LINE_SIZE - within, entry.length - offset)
            base = bytearray(report.view.get(line, recovered.plaintext_of(line)))
            base[within : within + chunk] = data[offset : offset + chunk]
            report.view[line] = bytes(base)
            offset += chunk

    for entry in scan_log(log_region, read_line):
        if entry.state == STATE_INVALID:
            report.committed.append(entry)
            continue
        if entry.kind == KIND_REDO:
            if entry.state == STATE_COMMITTED:
                # Committed but possibly unapplied: roll the new data
                # forward (idempotent if it was already in place).
                apply(entry)
                report.undone.append(entry)
            else:
                # Uncommitted redo entry: the data region was never
                # touched — nothing to do.
                report.committed.append(entry)
            continue
        # Valid undo entry => the transaction never committed: roll back.
        apply(entry)
        report.undone.append(entry)
    return report
