"""The paper's five transactional microbenchmarks.

Each workload is a real persistent data structure running against a
:class:`~repro.txn.persist.MemoryDomain` through the undo-log transaction
manager, so the access locality the paper's results hinge on (Section 5.4's
discussion of Figure 17) is produced by actual structure behaviour:

* **array** — random entry swaps: poor spatial locality across
  transactions;
* **queue** — enqueue/dequeue over a ring: perfectly sequential;
* **btree** — B-tree whose nodes pack multiple items contiguously: good
  locality;
* **hashtable** — inserts at hashed slots: poor locality;
* **rbtree** — one item per node, pointer-chasing inserts with
  recolouring/rotations: poor locality plus scattered fix-up writes.

The *transaction request size* (256 B / 1 KB / 4 KB in Figures 13 and 15)
is the ``request_size`` parameter: the payload bytes one transaction
writes.

:func:`repro.workloads.generator.generate_trace` wires a workload to a
:class:`~repro.txn.persist.TraceDomain` and returns the op stream for the
timing simulator.
"""

from repro.workloads.array import ArrayWorkload
from repro.workloads.base import Workload, WORKLOAD_NAMES
from repro.workloads.btree import BTreeWorkload
from repro.workloads.generator import build_workload, generate_trace
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.heap import PersistentHeap
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload

__all__ = [
    "ArrayWorkload",
    "Workload",
    "WORKLOAD_NAMES",
    "BTreeWorkload",
    "build_workload",
    "generate_trace",
    "HashTableWorkload",
    "PersistentHeap",
    "QueueWorkload",
    "RBTreeWorkload",
]
