"""Array workload: random entry swaps (paper Section 5).

A flat array of fixed-size entries; each transaction swaps two randomly
chosen entries. One swap writes two entries, so the entry size is half the
transaction request size. Random indices give the poor cross-transaction
spatial locality the paper observes for this workload (Figure 17's
counter-cache discussion), while the two entries themselves are contiguous
runs of lines — which is why CWC still coalesces within each entry's
counter writes.
"""

from __future__ import annotations

from repro.workloads.base import Workload


class ArrayWorkload(Workload):
    """Random swaps over a persistent array."""

    name = "array"

    def setup(self) -> None:
        self.entry_size = max(64, self.request_size // 2)
        self.n_entries = max(4, self.footprint // self.entry_size)
        self.base = self.heap.alloc(self.n_entries * self.entry_size)

    def entry_addr(self, index: int) -> int:
        """Byte address of entry ``index``."""
        return self.base + index * self.entry_size

    def run_op(self) -> None:
        """Swap two random entries in one durable transaction."""
        i = self.rng.randrange(self.n_entries)
        j = self.rng.randrange(self.n_entries)
        while j == i:
            j = self.rng.randrange(self.n_entries)
        # Both modes emit the same op stream — the swap's traversal reads
        # go through ``manager.run(reads=...)`` inside the transaction and
        # the prepare stage emits the old-data loads. Functional mode
        # additionally needs the current contents to compute the swapped
        # values, read via the trace-invisible ``peek`` so the trace stays
        # bit-identical to timing mode (tests/sim/test_fidelity.py).
        data_i = self.domain.peek(self.entry_addr(i), self.entry_size)
        data_j = self.domain.peek(self.entry_addr(j), self.entry_size)
        writes = [
            (self.entry_addr(i), self.entry_size, data_j),
            (self.entry_addr(j), self.entry_size, data_i),
        ]
        reads = (
            (self.entry_addr(i), self.entry_size),
            (self.entry_addr(j), self.entry_size),
        )
        self.manager.run(writes, reads=reads)
