"""Workload interface shared by the five microbenchmarks."""

from __future__ import annotations

import abc
import random
from typing import ClassVar, Optional

from repro.txn.transaction import TransactionManager
from repro.workloads.heap import PersistentHeap

#: Registry order matching the paper's figures.
WORKLOAD_NAMES = ("array", "queue", "btree", "hashtable", "rbtree")


class Workload(abc.ABC):
    """One transactional microbenchmark.

    Parameters
    ----------
    manager:
        The transaction manager (which carries the memory domain).
    heap:
        Allocator for the structure's persistent storage.
    request_size:
        Payload bytes one transaction writes (the paper's 256 B / 1 KB /
        4 KB knob).
    footprint:
        Approximate bytes of persistent data the structure should occupy.
        The paper sizes this to one memory bank per program.
    seed:
        Seed for the workload's private RNG (full determinism).
    """

    name: ClassVar[str] = "abstract"

    def __init__(
        self,
        manager: TransactionManager,
        heap: PersistentHeap,
        request_size: int = 1024,
        footprint: int = 1 << 20,
        seed: int = 1,
    ):
        if request_size < 64:
            raise ValueError("request_size must be at least one line (64 B)")
        self.manager = manager
        self.domain = manager.domain
        self.heap = heap
        self.request_size = request_size
        self.footprint = footprint
        self.rng = random.Random(seed)
        self._payload_tag = 0
        self._functional = self.domain.functional

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def setup(self) -> None:
        """Allocate persistent storage and build the initial structure."""

    @abc.abstractmethod
    def run_op(self) -> None:
        """Execute one transactional operation."""

    def run_ops(self, n: int) -> None:
        """Execute ``n`` operations."""
        for _ in range(n):
            self.run_op()

    # ------------------------------------------------------------------

    def payload(self, size: int) -> Optional[bytes]:
        """Deterministic per-write content (None in timing-only mode).

        Content is only materialised when the domain is functional:
        timing traces carry no bytes, which keeps generation fast.
        """
        self._payload_tag += 1
        if not self._functional:
            return None
        tag = self._payload_tag
        stamp = tag.to_bytes(8, "little")
        reps = (size + 7) // 8
        return (stamp * reps)[:size]
