"""B-tree workload: inserts into a B+-tree with slotted nodes.

Leaves store multiple fixed-size items contiguously (a slotted page: the
item is written once into a free slot; the sorted key array references
slots), so one insert writes the item, the leaf's key-area lines, and the
header — all within one node. That contiguity is the "good spatial
locality" the paper credits the B-tree with (Section 5.4). Leaf splits move
half the slots to a fresh leaf and update the parent, producing the
occasional large transaction a real B-tree has.

The Python-side mirror (keys, slot maps, children) handles navigation; the
memory domain sees the loads of every visited node and the transactional
writes of every mutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.common.address import CACHE_LINE_SIZE
from repro.workloads.base import Workload

#: Fan-out of internal nodes.
INNER_FANOUT = 16


def _key_area_lines(n_keys: int) -> int:
    """Lines needed for ``n_keys`` 8-byte keys."""
    return (n_keys * 8 + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE


class _Leaf:
    __slots__ = ("header_addr", "keys_addr", "items_addr", "keys", "slot_of", "free")

    def __init__(self, header_addr: int, keys_addr: int, items_addr: int, order: int):
        self.header_addr = header_addr
        self.keys_addr = keys_addr
        self.items_addr = items_addr
        self.keys: List[int] = []  # sorted
        self.slot_of: Dict[int, int] = {}
        self.free: List[int] = list(range(order - 1, -1, -1))


class _Inner:
    __slots__ = ("header_addr", "keys_addr", "keys", "children")

    def __init__(self, header_addr: int, keys_addr: int):
        self.header_addr = header_addr
        self.keys_addr = keys_addr
        self.keys: List[int] = []
        self.children: List[Union["_Inner", _Leaf]] = []


class BTreeWorkload(Workload):
    """Random-key inserts into a persistent B+-tree."""

    name = "btree"

    def setup(self) -> None:
        self.item_size = self.request_size
        # Items per leaf: pack roughly a page of payload, at least 4.
        self.order = max(4, 4096 // self.item_size)
        self._leaf_key_lines = _key_area_lines(self.order)
        self._inner_key_lines = _key_area_lines(INNER_FANOUT)
        self.root: Union[_Inner, _Leaf] = self._new_leaf()
        self.n_items = 0
        # Bound the footprint: cap the key universe so steady state stays
        # near the requested footprint (reinserts overwrite).
        max_items = max(8, self.footprint // self.item_size)
        self._key_universe = max_items

    # ------------------------------------------------------------------
    # Node allocation
    # ------------------------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        header = self.heap.alloc_lines(1)
        keys = self.heap.alloc_lines(self._leaf_key_lines)
        items = self.heap.alloc(self.order * self.item_size)
        return _Leaf(header, keys, items, self.order)

    def _new_inner(self) -> _Inner:
        header = self.heap.alloc_lines(1)
        keys = self.heap.alloc_lines(self._inner_key_lines)
        return _Inner(header, keys)

    def _item_addr(self, leaf: _Leaf, slot: int) -> int:
        return leaf.items_addr + slot * self.item_size

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------

    def run_op(self) -> None:
        """Insert (or overwrite) a random key in one durable transaction."""
        key = self.rng.randrange(self._key_universe)
        reads: List[Tuple[int, int]] = []
        writes: List[Tuple[int, int, Optional[bytes]]] = []
        self._insert(self.root, key, reads, writes, parent=None)
        self.manager.run(writes, reads=reads)

    # ------------------------------------------------------------------
    # B+-tree mechanics
    # ------------------------------------------------------------------

    def _visit(self, node: Union[_Inner, _Leaf], reads: List[Tuple[int, int]]) -> None:
        """Record the loads of descending through ``node``."""
        key_lines = (
            self._leaf_key_lines if isinstance(node, _Leaf) else self._inner_key_lines
        )
        reads.append((node.header_addr, CACHE_LINE_SIZE))
        reads.append((node.keys_addr, key_lines * CACHE_LINE_SIZE))

    def _insert(
        self,
        node: Union[_Inner, _Leaf],
        key: int,
        reads: List[Tuple[int, int]],
        writes: List[Tuple[int, int, Optional[bytes]]],
        parent: Optional[_Inner],
    ) -> None:
        self._visit(node, reads)
        if isinstance(node, _Inner):
            index = self._child_index(node, key)
            self._insert(node.children[index], key, reads, writes, parent=node)
            return
        self._leaf_insert(node, key, writes, parent)

    @staticmethod
    def _child_index(node: _Inner, key: int) -> int:
        index = 0
        while index < len(node.keys) and key >= node.keys[index]:
            index += 1
        return index

    def _leaf_insert(
        self,
        leaf: _Leaf,
        key: int,
        writes: List[Tuple[int, int, Optional[bytes]]],
        parent: Optional[_Inner],
    ) -> None:
        if key in leaf.slot_of:
            # Overwrite in place: item slot plus header (version stamp).
            slot = leaf.slot_of[key]
            writes.append(
                (self._item_addr(leaf, slot), self.item_size, self.payload(self.item_size))
            )
            writes.append((leaf.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
            return
        if not leaf.free:
            left = leaf
            right = self._split_leaf(leaf, parent, writes)
            leaf = right if (right.keys and key >= right.keys[0]) else left
        slot = leaf.free.pop()
        leaf.slot_of[key] = slot
        self._sorted_insert(leaf.keys, key)
        self.n_items += 1
        # item slot + key-area lines (the sorted array shifts) + header
        key_area = self._leaf_key_lines * CACHE_LINE_SIZE
        writes.append(
            (self._item_addr(leaf, slot), self.item_size, self.payload(self.item_size))
        )
        writes.append((leaf.keys_addr, key_area, self.payload(key_area)))
        writes.append((leaf.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))

    @staticmethod
    def _sorted_insert(keys: List[int], key: int) -> int:
        import bisect

        position = bisect.bisect_left(keys, key)
        keys.insert(position, key)
        return position

    def _split_leaf(
        self,
        leaf: _Leaf,
        parent: Optional[_Inner],
        writes: List[Tuple[int, int, Optional[bytes]]],
    ) -> _Leaf:
        """Move the upper half of ``leaf`` into a fresh sibling.

        Returns the new sibling; both halves end up with free slots and
        the caller picks the correct target by key.
        """
        sibling = self._new_leaf()
        half = len(leaf.keys) // 2
        moved = leaf.keys[half:]
        leaf.keys = leaf.keys[:half]
        for key in moved:
            old_slot = leaf.slot_of.pop(key)
            new_slot = sibling.free.pop()
            sibling.slot_of[key] = new_slot
            sibling.keys.append(key)
            # move the item: read from the old slot, write to the new one
            if self._functional:
                data = self.domain.load(self._item_addr(leaf, old_slot), self.item_size)
            else:
                self.domain.load(self._item_addr(leaf, old_slot), self.item_size)
                data = None
            writes.append((self._item_addr(sibling, new_slot), self.item_size, data))
            leaf.free.append(old_slot)
        split_key = sibling.keys[0]
        # sibling metadata + old leaf metadata
        writes.append(
            (
                sibling.keys_addr,
                self._leaf_key_lines * CACHE_LINE_SIZE,
                self.payload(self._leaf_key_lines * CACHE_LINE_SIZE),
            )
        )
        writes.append((sibling.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
        writes.append((leaf.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
        self._link_sibling(leaf, sibling, split_key, parent, writes)
        return sibling

    def _link_sibling(
        self,
        left: _Leaf,
        right: _Leaf,
        split_key: int,
        parent: Optional[_Inner],
        writes: List[Tuple[int, int, Optional[bytes]]],
    ) -> None:
        if parent is None:
            new_root = self._new_inner()
            new_root.keys = [split_key]
            new_root.children = [left, right]
            self.root = new_root
            writes.append(
                (
                    new_root.keys_addr,
                    self._inner_key_lines * CACHE_LINE_SIZE,
                    self.payload(self._inner_key_lines * CACHE_LINE_SIZE),
                )
            )
            writes.append(
                (new_root.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE))
            )
            return
        index = self._child_index(parent, split_key)
        parent.keys.insert(index, split_key)
        parent.children.insert(index + 1, right)
        writes.append(
            (
                parent.keys_addr,
                self._inner_key_lines * CACHE_LINE_SIZE,
                self.payload(self._inner_key_lines * CACHE_LINE_SIZE),
            )
        )
        writes.append((parent.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
        if len(parent.keys) >= INNER_FANOUT:
            self._split_inner(parent, writes)

    def _split_inner(
        self, node: _Inner, writes: List[Tuple[int, int, Optional[bytes]]]
    ) -> None:
        """Split a full inner node (root-growing, single-level for clarity).

        A full reproduction of recursive inner splits adds little to the
        memory traffic shape; this handles the common case of root growth
        and flattens deeper cascades by allowing oversized inner nodes to
        split lazily on the next insert through them.
        """
        half = len(node.keys) // 2
        split_key = node.keys[half]
        right = self._new_inner()
        right.keys = node.keys[half + 1 :]
        right.children = node.children[half + 1 :]
        node.keys = node.keys[:half]
        node.children = node.children[: half + 1]
        writes.append(
            (
                right.keys_addr,
                self._inner_key_lines * CACHE_LINE_SIZE,
                self.payload(self._inner_key_lines * CACHE_LINE_SIZE),
            )
        )
        writes.append((right.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
        writes.append((node.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)))
        if self.root is node:
            new_root = self._new_inner()
            new_root.keys = [split_key]
            new_root.children = [node, right]
            self.root = new_root
            writes.append(
                (new_root.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE))
            )
        else:
            parent = self._find_parent(self.root, node)
            index = self._child_index(parent, split_key)
            parent.keys.insert(index, split_key)
            parent.children.insert(index + 1, right)
            writes.append(
                (parent.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE))
            )

    def _find_parent(self, current: Union[_Inner, _Leaf], target: _Inner) -> _Inner:
        if isinstance(current, _Leaf):
            raise LookupError("target not found")
        for child in current.children:
            if child is target:
                return current
        index = self._child_index(current, target.keys[0] if target.keys else 0)
        return self._find_parent(current.children[index], target)
