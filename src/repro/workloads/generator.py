"""Wiring helpers: workload -> trace, and the standard experiment setup.

:func:`generate_trace` builds the full stack for one program — heap, log
region, trace domain, transaction manager, workload — runs the setup phase
(discarded), runs ``n_ops`` measured operations, and returns the op
stream plus metadata. The log region is allocated *first*, so logs and
data live in different pages (different banks), matching how a real
allocator would lay out a transactional application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Type

from repro.common.errors import ConfigError
from repro.txn.log import LogRegion
from repro.txn.persist import TraceDomain, TraceOp
from repro.txn.transaction import TransactionManager
from repro.workloads.array import ArrayWorkload
from repro.workloads.base import Workload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.heap import PersistentHeap
from repro.workloads.mixed import MixedWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload

_REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        ArrayWorkload,
        QueueWorkload,
        BTreeWorkload,
        HashTableWorkload,
        RBTreeWorkload,
        MixedWorkload,
    )
}

#: Pages reserved for the undo log of one program.
LOG_PAGES = 16


def workload_class(name: str) -> Type[Workload]:
    """Look up a workload class by its paper name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


def build_workload(
    name: str,
    manager: TransactionManager,
    heap: PersistentHeap,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    seed: int = 1,
) -> Workload:
    """Construct and set up one workload instance."""
    workload = workload_class(name)(
        manager,
        heap,
        request_size=request_size,
        footprint=footprint,
        seed=seed,
    )
    workload.setup()
    return workload


@dataclass
class GeneratedTrace:
    """A measured op stream plus the context that produced it."""

    ops: List[TraceOp]
    workload_name: str
    request_size: int
    footprint: int
    n_ops: int
    seed: int
    #: Ops emitted during setup/warmup (replayed unmeasured to warm caches).
    warmup_ops: List[TraceOp] = field(default_factory=list)
    #: Lazily-built flat replay arrays (:class:`repro.sim.batch.TraceArrays`)
    #: for ``ops``/``warmup_ops``. Populated by
    #: :func:`repro.sim.trace_cache.trace_arrays` so one decode serves
    #: every replay of a cached trace; excluded from equality (pure
    #: derived data).
    replay_arrays: object = field(default=None, repr=False, compare=False)
    warmup_replay_arrays: object = field(default=None, repr=False, compare=False)
    #: Lazily-recorded hierarchy outcome streams
    #: (:class:`repro.sim.batch.ReplayOutcomes`) keyed by cache geometry;
    #: populated by :func:`repro.sim.trace_cache.store_trace_outcomes`.
    #: The CPU cache walk is scheme-independent, so one recording serves
    #: every scheme of a sweep. Pure derived data, excluded from equality.
    replay_outcomes: object = field(default=None, repr=False, compare=False)


def generate_trace(
    name: str,
    n_ops: int,
    request_size: int = 1024,
    footprint: int = 1 << 20,
    heap_base: int = 0,
    heap_capacity: int | None = None,
    seed: int = 1,
    warmup_ops: int = 0,
    track_payloads: bool = False,
) -> GeneratedTrace:
    """Generate the trace of one program running ``n_ops`` transactions.

    Parameters
    ----------
    name:
        Workload name (``array``/``queue``/``btree``/``hashtable``/``rbtree``).
    n_ops:
        Measured transactional operations.
    request_size:
        Transaction request size in bytes (paper: 256/1024/4096).
    footprint:
        Target persistent footprint of the structure.
    heap_base / heap_capacity:
        Region of the physical space this program owns (multi-program runs
        give each program its own region). Capacity defaults to
        ``4 * footprint`` for allocator headroom (trees allocate nodes
        beyond the steady-state footprint).
    warmup_ops:
        Operations run before measurement begins; their ops are returned
        separately so the simulator can warm caches without timing them.
    track_payloads:
        Attach line payloads to CLWB ops (functional traces).
    """
    if heap_capacity is None:
        heap_capacity = 4 * footprint + (LOG_PAGES + 16) * 4096
    heap = PersistentHeap(capacity=heap_capacity, base=heap_base)
    log_base = heap.alloc_pages(LOG_PAGES)
    log = LogRegion(log_base, LOG_PAGES * 4096)
    domain = TraceDomain(track_payloads=track_payloads)
    manager = TransactionManager(domain, log)
    workload = build_workload(
        name,
        manager,
        heap,
        request_size=request_size,
        footprint=footprint,
        seed=seed,
    )
    domain.take_ops()  # discard setup traffic
    workload.run_ops(warmup_ops)
    warmup = domain.take_ops()
    workload.run_ops(n_ops)
    return GeneratedTrace(
        ops=domain.take_ops(),
        workload_name=name,
        request_size=request_size,
        footprint=footprint,
        n_ops=n_ops,
        seed=seed,
        warmup_ops=warmup,
    )
