"""Hash table workload: inserts into randomly hashed slots.

An open-addressing table of fixed-size slots, each holding one item of
``request_size`` bytes behind a one-line header. Inserting probes linearly
from the hashed home slot (loads), then writes the item and its header.
Hashed destinations are uniformly scattered — the poor spatial locality
the paper observes for this workload.
"""

from __future__ import annotations

from typing import Dict

from repro.common.address import CACHE_LINE_SIZE
from repro.workloads.base import Workload


class HashTableWorkload(Workload):
    """Open-addressing hash table with linear probing."""

    name = "hashtable"

    #: Keep the table at most this full so probe chains stay short.
    MAX_LOAD_FACTOR = 0.7

    def setup(self) -> None:
        self.item_size = self.request_size
        self.slot_size = CACHE_LINE_SIZE + self.item_size  # header + item
        self.n_slots = max(8, self.footprint // self.slot_size)
        self.base = self.heap.alloc(self.n_slots * self.slot_size)
        #: slot -> key (volatile mirror of occupancy).
        self.occupancy: Dict[int, int] = {}
        self._key_universe = 1 << 30

    def slot_addr(self, slot: int) -> int:
        """Byte address of slot ``slot`` (its header line)."""
        return self.base + slot * self.slot_size

    def _hash(self, key: int) -> int:
        # Fibonacci hashing: cheap, deterministic, well spread.
        return ((key * 0x9E3779B97F4A7C15) >> 13) % self.n_slots

    def run_op(self) -> None:
        """Insert (or update) one key in one durable transaction."""
        if len(self.occupancy) >= self.MAX_LOAD_FACTOR * self.n_slots:
            # Steady state: update an existing key instead of growing.
            key = self.rng.choice(list(self.occupancy.values()))
        else:
            key = self.rng.randrange(self._key_universe)
        home = self._hash(key)
        reads = []
        slot = home
        # Linear probe: read headers until the key's slot or a free one.
        for _ in range(self.n_slots):
            reads.append((self.slot_addr(slot), CACHE_LINE_SIZE))
            occupant = self.occupancy.get(slot)
            if occupant is None or occupant == key:
                break
            slot = (slot + 1) % self.n_slots
        self.occupancy[slot] = key
        writes = [
            # header (key, valid bit) and the item payload
            (self.slot_addr(slot), CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)),
            (
                self.slot_addr(slot) + CACHE_LINE_SIZE,
                self.item_size,
                self.payload(self.item_size),
            ),
        ]
        self.manager.run(writes, reads=reads)
