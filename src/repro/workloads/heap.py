"""A bump allocator over the persistent address space.

Workloads and the log region allocate from one :class:`PersistentHeap`.
Allocation is deliberately simple — contiguous, line-aligned bump
allocation — because that is exactly the paper's premise about operating
systems giving applications contiguous physical regions (Section 3.3):
consecutive allocations land in consecutive pages and therefore adjacent
banks.
"""

from __future__ import annotations

from repro.common.address import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import SimulationError


class PersistentHeap:
    """Line-aligned bump allocator over ``[base, base + capacity)``."""

    def __init__(self, capacity: int, base: int = 0):
        if capacity <= 0:
            raise SimulationError("heap capacity must be positive")
        self.base = base
        self.capacity = capacity
        self._cursor = base

    @property
    def end(self) -> int:
        return self.base + self.capacity

    @property
    def used(self) -> int:
        return self._cursor - self.base

    @property
    def free(self) -> int:
        return self.end - self._cursor

    def alloc(self, nbytes: int, align: int = CACHE_LINE_SIZE) -> int:
        """Reserve ``nbytes`` aligned to ``align``; returns the address."""
        if nbytes <= 0:
            raise SimulationError(f"allocation of {nbytes} bytes")
        if align <= 0 or (align & (align - 1)):
            raise SimulationError(f"alignment must be a power of two, got {align}")
        start = (self._cursor + align - 1) & ~(align - 1)
        if start + nbytes > self.end:
            raise SimulationError(
                f"heap exhausted: need {nbytes} at {start:#x}, end {self.end:#x}"
            )
        self._cursor = start + nbytes
        return start

    def alloc_lines(self, n_lines: int) -> int:
        """Reserve ``n_lines`` whole cache lines."""
        return self.alloc(n_lines * CACHE_LINE_SIZE, align=CACHE_LINE_SIZE)

    def alloc_pages(self, n_pages: int) -> int:
        """Reserve ``n_pages`` whole pages, page-aligned."""
        return self.alloc(n_pages * PAGE_SIZE, align=PAGE_SIZE)
