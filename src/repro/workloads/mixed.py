"""Mixed read/write workload with zipfian key popularity (YCSB-like).

The paper's five microbenchmarks are write-dominated (that is where the
counter-persistence problem lives). This additional workload exercises the
*read* path — counter-cache hits overlapping OTP generation with data
fetches (Figure 2b) — with a configurable read ratio and a zipfian
popularity skew, the standard cloud-store access model.

A read operation is a plain lookup (loads only, no transaction); a write
is a durable transactional update of the item, like the other workloads.
"""

from __future__ import annotations

import bisect
import itertools
from typing import List

from repro.common.address import CACHE_LINE_SIZE
from repro.workloads.base import Workload


class ZipfSampler:
    """Zipf(theta) sampling over ``n`` items via inverse-CDF lookup."""

    def __init__(self, n: int, theta: float = 0.99):
        if n <= 0:
            raise ValueError("need at least one item")
        if theta <= 0:
            raise ValueError("theta must be positive")
        weights = [1.0 / (rank**theta) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf: List[float] = list(itertools.accumulate(w / total for w in weights))
        self.n = n
        self.theta = theta

    def sample(self, rng) -> int:
        """Draw one item index (0 = most popular)."""
        return bisect.bisect_left(self._cdf, rng.random())


class MixedWorkload(Workload):
    """Zipfian reads and transactional writes over a flat item table."""

    name = "mixed"

    #: Fraction of operations that are reads (YCSB-B-like default).
    read_ratio: float = 0.8
    #: Zipfian skew.
    zipf_theta: float = 0.99

    def setup(self) -> None:
        self.item_size = self.request_size
        self.slot_size = CACHE_LINE_SIZE + self.item_size
        self.n_items = max(8, self.footprint // self.slot_size)
        self.base = self.heap.alloc(self.n_items * self.slot_size)
        self.zipf = ZipfSampler(self.n_items, theta=self.zipf_theta)
        self.reads_done = 0
        self.writes_done = 0

    def item_addr(self, index: int) -> int:
        return self.base + index * self.slot_size

    def run_op(self) -> None:
        index = self.zipf.sample(self.rng)
        if self.rng.random() < self.read_ratio:
            # Plain lookup: header + item loads, no persistence.
            self.domain.load(self.item_addr(index), self.slot_size)
            self.reads_done += 1
            return
        writes = [
            (self.item_addr(index), CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)),
            (
                self.item_addr(index) + CACHE_LINE_SIZE,
                self.item_size,
                self.payload(self.item_size),
            ),
        ]
        self.manager.run(writes)
        self.writes_done += 1
