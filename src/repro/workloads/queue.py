"""Queue workload: enqueue/dequeue over a persistent ring buffer.

Items live in a contiguous ring; a metadata line holds head/tail. Each
transaction enqueues one item of ``request_size`` bytes (and dequeues when
full, touching only metadata). Consecutive operations write consecutive
addresses — the perfectly sequential locality that makes this workload
insensitive to counter-cache size in Figure 17 and the best case for CWC.
"""

from __future__ import annotations

import struct

from repro.common.address import CACHE_LINE_SIZE
from repro.workloads.base import Workload


class QueueWorkload(Workload):
    """A persistent FIFO ring of fixed-size items."""

    name = "queue"

    def setup(self) -> None:
        self.item_size = self.request_size
        self.capacity = max(4, self.footprint // self.item_size)
        self.meta_addr = self.heap.alloc_lines(1)
        self.ring_base = self.heap.alloc(self.capacity * self.item_size)
        # Volatile mirror of the persistent head/tail.
        self.head = 0
        self.tail = 0
        self.count = 0

    def item_addr(self, slot: int) -> int:
        """Byte address of ring slot ``slot``."""
        return self.ring_base + slot * self.item_size

    def _meta_bytes(self):
        if not self._functional:
            return None
        packed = struct.pack("<QQQ", self.head, self.tail, self.count)
        return packed + bytes(CACHE_LINE_SIZE - len(packed))

    def run_op(self) -> None:
        """Enqueue one item (dequeuing first when the ring is full)."""
        if self.count == self.capacity:
            self.head = (self.head + 1) % self.capacity
            self.count -= 1
        slot = self.tail
        self.tail = (self.tail + 1) % self.capacity
        self.count += 1
        writes = [
            (self.item_addr(slot), self.item_size, self.payload(self.item_size)),
            (self.meta_addr, CACHE_LINE_SIZE, self._meta_bytes()),
        ]
        self.manager.run(writes)
