"""Red-black tree workload: one item per node, full rebalancing.

Classic red-black insertion with recolouring and rotations. Each node is a
one-line header (key, colour, pointers) plus an item of ``request_size``
bytes. The insert transaction writes the new node, its parent's pointer
line, and the headers touched by fix-up — scattered single-line writes to
pointer-chased addresses, the paper's worst-locality workload ("the
structure of one item per node in the RB-tree exhibits poor spatial
locality", Section 5.4).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.common.address import CACHE_LINE_SIZE
from repro.workloads.base import Workload

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "color", "left", "right", "parent", "header_addr", "item_addr")

    def __init__(self, key: int, header_addr: int, item_addr: int):
        self.key = key
        self.color = RED
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None
        self.header_addr = header_addr
        self.item_addr = item_addr


class RBTreeWorkload(Workload):
    """Random-key inserts into a persistent red-black tree."""

    name = "rbtree"

    def setup(self) -> None:
        self.item_size = self.request_size
        self.node_size = CACHE_LINE_SIZE + self.item_size
        self.root: Optional[_Node] = None
        max_items = max(8, self.footprint // self.node_size)
        self._key_universe = max_items * 4
        self.n_nodes = 0

    # ------------------------------------------------------------------

    def _new_node(self, key: int) -> _Node:
        header = self.heap.alloc_lines(1)
        item = self.heap.alloc(self.item_size)
        self.n_nodes += 1
        return _Node(key, header, item)

    def _touch(self, node: _Node, dirtied: Set[_Node]) -> None:
        """Mark a node's header as modified by this transaction."""
        dirtied.add(node)

    def run_op(self) -> None:
        """Insert one random key (update in place on duplicates)."""
        key = self.rng.randrange(self._key_universe)
        reads: List[Tuple[int, int]] = []
        dirtied: Set[_Node] = set()
        new_item_writes: List[Tuple[int, int, Optional[bytes]]] = []

        # BST descent (loads one header per visited node).
        parent = None
        current = self.root
        while current is not None:
            reads.append((current.header_addr, CACHE_LINE_SIZE))
            if key == current.key:
                # Update in place: rewrite the item and stamp the header.
                writes = [
                    (current.item_addr, self.item_size, self.payload(self.item_size)),
                    (current.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE)),
                ]
                self.manager.run(writes, reads=reads)
                return
            parent = current
            current = current.left if key < current.key else current.right

        node = self._new_node(key)
        node.parent = parent
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
            self._touch(parent, dirtied)
        else:
            parent.right = node
            self._touch(parent, dirtied)
        self._touch(node, dirtied)
        new_item_writes.append(
            (node.item_addr, self.item_size, self.payload(self.item_size))
        )

        self._fix_insert(node, dirtied)

        writes = new_item_writes + [
            (n.header_addr, CACHE_LINE_SIZE, self.payload(CACHE_LINE_SIZE))
            for n in sorted(dirtied, key=lambda n: n.header_addr)
        ]
        self.manager.run(writes, reads=reads)

    # ------------------------------------------------------------------
    # Red-black fix-up (CLRS insertion rebalancing)
    # ------------------------------------------------------------------

    def _fix_insert(self, node: _Node, dirtied: Set[_Node]) -> None:
        while node.parent is not None and node.parent.color is RED:
            parent = node.parent
            grand = parent.parent
            if grand is None:
                break
            if parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    for n in (parent, uncle, grand):
                        self._touch(n, dirtied)
                    node = grand
                    continue
                if node is parent.right:
                    node = parent
                    self._rotate_left(node, dirtied)
                    parent = node.parent
                    grand = parent.parent if parent else None
                if parent and grand:
                    parent.color = BLACK
                    grand.color = RED
                    self._touch(parent, dirtied)
                    self._touch(grand, dirtied)
                    self._rotate_right(grand, dirtied)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    for n in (parent, uncle, grand):
                        self._touch(n, dirtied)
                    node = grand
                    continue
                if node is parent.left:
                    node = parent
                    self._rotate_right(node, dirtied)
                    parent = node.parent
                    grand = parent.parent if parent else None
                if parent and grand:
                    parent.color = BLACK
                    grand.color = RED
                    self._touch(parent, dirtied)
                    self._touch(grand, dirtied)
                    self._rotate_left(grand, dirtied)
        if self.root is not None and self.root.color is RED:
            self.root.color = BLACK
            self._touch(self.root, dirtied)

    def _rotate_left(self, node: _Node, dirtied: Set[_Node]) -> None:
        pivot = node.right
        if pivot is None:
            return
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
            self._touch(pivot.left, dirtied)
        pivot.parent = node.parent
        if node.parent is None:
            self.root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
            self._touch(node.parent, dirtied)
        else:
            node.parent.right = pivot
            self._touch(node.parent, dirtied)
        pivot.left = node
        node.parent = pivot
        self._touch(node, dirtied)
        self._touch(pivot, dirtied)

    def _rotate_right(self, node: _Node, dirtied: Set[_Node]) -> None:
        pivot = node.left
        if pivot is None:
            return
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
            self._touch(pivot.right, dirtied)
        pivot.parent = node.parent
        if node.parent is None:
            self.root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
            self._touch(node.parent, dirtied)
        else:
            node.parent.left = pivot
            self._touch(node.parent, dirtied)
        pivot.right = node
        node.parent = pivot
        self._touch(node, dirtied)
        self._touch(pivot, dirtied)

    # ------------------------------------------------------------------
    # Validation helpers (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> int:
        """Verify BST order + red-black rules; returns black height."""
        if self.root is None:
            return 0
        assert self.root.color is BLACK, "root must be black"
        return self._check(self.root, lo=None, hi=None)

    def _check(self, node: Optional[_Node], lo, hi) -> int:
        if node is None:
            return 1
        assert lo is None or node.key > lo
        assert hi is None or node.key < hi
        if node.color is RED:
            for child in (node.left, node.right):
                assert child is None or child.color is BLACK, "red-red violation"
        left_black = self._check(node.left, lo, node.key)
        right_black = self._check(node.right, node.key, hi)
        assert left_black == right_black, "black-height mismatch"
        return left_black + (1 if node.color is BLACK else 0)
