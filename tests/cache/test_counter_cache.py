"""Tests for the counter cache's write policies and crash behaviour."""

import pytest

from repro.common.config import CounterCacheConfig, CounterCacheMode
from repro.common.stats import Stats
from repro.cache.counter_cache import CounterCache


def make_cc(mode, size=8 * 64, assoc=8, battery=False):
    stats = Stats()
    config = CounterCacheConfig(
        size=size,
        assoc=assoc,
        latency_cycles=8,
        mode=mode,
        battery_backed=battery,
    )
    return CounterCache(config, stats), stats


class TestWriteThrough:
    def test_never_dirty(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH)
        cc.access(0, update=True)
        cc.access(0, update=True)
        assert not cc.is_dirty(0)

    def test_miss_requires_fetch(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH)
        hit, wb, fetch = cc.access(0, update=False)
        assert (hit, wb, fetch) == (False, None, True)
        hit, wb, fetch = cc.access(0, update=True)
        assert (hit, wb, fetch) == (True, None, False)

    def test_evictions_never_write_back(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH, size=2 * 64, assoc=2)
        writebacks = []
        for page in range(10):
            _, wb, _ = cc.access(page, update=True)
            if wb is not None:
                writebacks.append(wb)
        assert writebacks == []

    def test_crash_loses_nothing(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH)
        for page in range(4):
            cc.access(page, update=True)
        flushed, lost = cc.crash()
        assert flushed == [] and lost == []


class TestWriteBack:
    def test_update_marks_dirty(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_BACK)
        cc.access(0, update=True)
        assert cc.is_dirty(0)
        cc.access(1, update=False)
        assert not cc.is_dirty(1)

    def test_dirty_eviction_writes_back(self):
        cc, stats = make_cc(CounterCacheMode.WRITE_BACK, size=2 * 64, assoc=2)
        cc.access(0, update=True)
        cc.access(2, update=True)  # same set (2 sets: pages 0,2 -> set 0)
        _, wb, _ = cc.access(4, update=True)
        assert wb == 0
        assert stats.get("cc", "writebacks") == 1

    def test_crash_without_battery_loses_dirty(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_BACK)
        cc.access(0, update=True)
        cc.access(1, update=False)
        flushed, lost = cc.crash()
        assert flushed == [] and lost == [0]

    def test_crash_with_battery_flushes_dirty(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_BACK, battery=True)
        cc.access(0, update=True)
        flushed, lost = cc.crash()
        assert flushed == [0] and lost == []

    def test_drain_dirty_cleans(self):
        cc, _ = make_cc(CounterCacheMode.WRITE_BACK)
        cc.access(0, update=True)
        cc.access(1, update=True)
        assert sorted(cc.drain_dirty()) == [0, 1]
        assert not cc.is_dirty(0)
        assert cc.contains(0)


def test_hit_rate():
    cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH)
    cc.access(0, update=False)
    cc.access(0, update=False)
    cc.access(0, update=False)
    cc.access(1, update=False)
    assert cc.hit_rate == pytest.approx(0.5)


def test_len_counts_resident_lines():
    cc, _ = make_cc(CounterCacheMode.WRITE_THROUGH)
    for page in range(3):
        cc.access(page, update=False)
    assert len(cc) == 3
