"""Tests for the L1/L2/L3 hierarchy and persistence instructions."""

import pytest

from repro.common.config import CacheConfig, TimingConfig
from repro.common.stats import Stats
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sram import SetAssociativeCache


def small_hierarchy(stats=None):
    """Tiny hierarchy so evictions are easy to force.

    L1: 4 lines (1 set x 4), L2: 8 lines, L3: 16 lines.
    """
    stats = stats or Stats()
    return (
        CacheHierarchy(
            l1=CacheConfig(size=4 * 64, assoc=4, latency_cycles=2),
            l2=CacheConfig(size=8 * 64, assoc=8, latency_cycles=16),
            l3=CacheConfig(size=16 * 64, assoc=16, latency_cycles=30),
            timing=TimingConfig(),
            stats=stats,
        ),
        stats,
    )


def test_cold_read_misses_everywhere():
    h, _ = small_hierarchy()
    outcome = h.read(0)
    assert outcome.hit_level is None
    # visited all three levels: 2+16+30 cycles at 2 GHz = 24 ns
    assert outcome.latency_ns == pytest.approx(24.0)


def test_second_read_hits_l1():
    h, _ = small_hierarchy()
    h.read(0)
    outcome = h.read(0)
    assert outcome.hit_level == 1
    assert outcome.latency_ns == pytest.approx(1.0)  # 2 cycles @ 2 GHz


def test_l1_eviction_leaves_line_in_l2():
    h, _ = small_hierarchy()
    h.read(0)
    # fill L1 (1 set x 4 ways) with conflicting lines to evict line 0
    for line in range(1, 5):
        h.read(line)
    outcome = h.read(0)
    assert outcome.hit_level in (2, 3)


def test_write_then_read_hits_dirty():
    h, _ = small_hierarchy()
    h.write(7)
    assert h.l1.is_dirty(7)
    outcome = h.read(7)
    assert outcome.hit_level == 1


def test_dirty_eviction_cascades_to_memory():
    """Writing more distinct lines than L3 holds must produce write-backs."""
    h, stats = small_hierarchy()
    writebacks = []
    for line in range(64):
        outcome = h.write(line)
        writebacks.extend(outcome.memory_writebacks)
    assert writebacks, "L3 overflow of dirty lines must reach memory"
    assert stats.get("hierarchy", "memory_writebacks") == len(writebacks)


def test_clean_eviction_never_reaches_memory():
    h, _ = small_hierarchy()
    writebacks = []
    for line in range(64):
        outcome = h.read(line)
        writebacks.extend(outcome.memory_writebacks)
    assert writebacks == []


def test_clwb_dirty_line():
    h, _ = small_hierarchy()
    h.write(3)
    assert h.clwb(3) is True
    # line stays resident, now clean
    assert h.l1.contains(3)
    assert not h.l1.is_dirty(3)
    # second clwb is a no-op at memory
    assert h.clwb(3) is False


def test_clwb_absent_line():
    h, _ = small_hierarchy()
    assert h.clwb(42) is False


def test_clflush_invalidates():
    h, _ = small_hierarchy()
    h.write(3)
    assert h.clflush(3) is True
    assert not h.l1.contains(3)
    outcome = h.read(3)
    assert outcome.hit_level is None


def test_lose_all_volatile_state_reports_dirty():
    h, _ = small_hierarchy()
    h.write(1)
    h.write(2)
    h.read(3)
    h.clwb(2)
    lost = h.lose_all_volatile_state()
    assert lost == [1]
    assert not h.l1.contains(1)


def test_shared_l3_between_cores():
    stats = Stats()
    shared = SetAssociativeCache(
        CacheConfig(size=16 * 64, assoc=16, latency_cycles=30), stats, "l3"
    )
    mk = lambda: CacheHierarchy(
        l1=CacheConfig(size=4 * 64, assoc=4, latency_cycles=2),
        l2=CacheConfig(size=8 * 64, assoc=8, latency_cycles=16),
        l3=CacheConfig(size=16 * 64, assoc=16, latency_cycles=30),
        timing=TimingConfig(),
        stats=stats,
        shared_l3=shared,
    )
    core0, core1 = mk(), mk()
    core0.read(9)
    outcome = core1.read(9)
    assert outcome.hit_level == 3  # misses private L1/L2, hits shared L3


def test_total_sram_latency():
    h, _ = small_hierarchy()
    assert h.total_sram_latency_ns == pytest.approx(24.0)
