"""Edge-interaction tests for the cache hierarchy."""

from repro.common.config import CacheConfig, TimingConfig
from repro.common.stats import Stats
from repro.cache.hierarchy import CacheHierarchy


def tiny():
    stats = Stats()
    h = CacheHierarchy(
        l1=CacheConfig(size=2 * 64, assoc=2, latency_cycles=2),
        l2=CacheConfig(size=4 * 64, assoc=4, latency_cycles=16),
        l3=CacheConfig(size=8 * 64, assoc=8, latency_cycles=30),
        timing=TimingConfig(),
        stats=stats,
    )
    return h, stats


def test_dirty_line_survives_l1_eviction_then_clwb_finds_it():
    """A dirty line pushed from L1 into L2 must still be flushed by clwb."""
    h, _ = tiny()
    h.write(0)
    h.write(2)  # fills L1's only set
    h.write(4)  # evicts line 0 (dirty) into L2
    assert not h.l1.contains(0)
    assert h.l2.is_dirty(0)
    assert h.clwb(0) is True  # found the dirty copy in L2


def test_hit_in_l2_refills_l1():
    h, _ = tiny()
    h.read(0)
    h.read(2)
    h.read(4)  # line 0 falls to L2
    outcome = h.read(0)
    assert outcome.hit_level in (2, 3)
    assert h.l1.contains(0)  # refilled


def test_clflush_then_rewrite_is_miss_then_dirty():
    h, _ = tiny()
    h.write(0)
    h.clflush(0)
    outcome = h.write(0)
    assert outcome.hit_level is None
    assert h.l1.is_dirty(0)


def test_writeback_cascade_depth():
    """Dirty data must never be silently dropped: filling all levels with
    dirty lines produces exactly the overflow as memory write-backs."""
    h, stats = tiny()
    n = 32
    for line in range(n):
        h.write(line)
    resident_dirty = (
        sum(1 for _ in h.l1.dirty_lines())
        + sum(1 for _ in h.l2.dirty_lines())
        + sum(1 for _ in h.l3.dirty_lines())
    )
    written_back = int(stats.get("hierarchy", "memory_writebacks"))
    assert resident_dirty + written_back == n


def test_clwb_counts():
    h, stats = tiny()
    h.write(0)
    h.clwb(0)
    h.clwb(0)  # clean now
    assert stats.get("hierarchy", "clwb") == 2
    assert stats.get("hierarchy", "clwb_dirty") == 1
