"""Tests for the generic set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.common.stats import Stats
from repro.cache.sram import SetAssociativeCache


def make_cache(size=4096, assoc=4):
    """64-line default: 16 sets x 4 ways."""
    stats = Stats()
    cache = SetAssociativeCache(
        CacheConfig(size=size, assoc=assoc, latency_cycles=1), stats, "t"
    )
    return cache, stats


def test_miss_then_hit():
    cache, stats = make_cache()
    hit, _ = cache.access(5, write=False)
    assert hit is False
    hit, _ = cache.access(5, write=False)
    assert hit is True
    assert stats.get("t", "hits") == 1
    assert stats.get("t", "misses") == 1


def test_write_marks_dirty():
    cache, _ = make_cache()
    cache.access(5, write=True)
    assert cache.is_dirty(5)
    cache.access(6, write=False)
    assert not cache.is_dirty(6)


def test_read_after_write_stays_dirty():
    cache, _ = make_cache()
    cache.access(5, write=True)
    cache.access(5, write=False)
    assert cache.is_dirty(5)


def test_lru_eviction_order():
    cache, _ = make_cache(size=4 * 64, assoc=4)  # one set, 4 ways
    for line in range(4):
        cache.access(line, write=False)
    cache.access(0, write=False)  # 0 becomes MRU; 1 is now LRU
    _, evicted = cache.access(100, write=False)
    assert evicted is not None and evicted.line == 1


def test_eviction_reports_dirtiness():
    cache, stats = make_cache(size=4 * 64, assoc=4)
    cache.access(0, write=True)
    for line in range(1, 4):
        cache.access(line, write=False)
    _, evicted = cache.access(4, write=False)
    assert evicted.line == 0 and evicted.dirty
    assert stats.get("t", "dirty_evictions") == 1


def test_sets_are_independent():
    cache, _ = make_cache(size=2 * 4 * 64, assoc=4)  # 2 sets
    # lines 0,2,4,... map to set 0; 1,3,5,... to set 1
    for line in (0, 2, 4, 6):
        cache.access(line, write=False)
    _, evicted = cache.access(1, write=False)  # other set has room
    assert evicted is None


def test_clean_keeps_line_resident():
    cache, _ = make_cache()
    cache.access(5, write=True)
    assert cache.clean(5) is True
    assert cache.contains(5)
    assert not cache.is_dirty(5)
    assert cache.clean(5) is False  # already clean


def test_clean_absent_line():
    cache, _ = make_cache()
    assert cache.clean(99) is False


def test_invalidate_removes_line():
    cache, _ = make_cache()
    cache.access(5, write=True)
    assert cache.invalidate(5) is True
    assert not cache.contains(5)
    assert cache.invalidate(5) is False


def test_fill_does_not_count_access():
    cache, stats = make_cache()
    cache.fill(7)
    assert stats.get("t", "accesses") == 0
    assert cache.contains(7)


def test_fill_existing_line_merges_dirty():
    cache, _ = make_cache()
    cache.fill(7, dirty=False)
    cache.fill(7, dirty=True)
    assert cache.is_dirty(7)
    cache.fill(7, dirty=False)  # cannot un-dirty via fill
    assert cache.is_dirty(7)


def test_mark_dirty():
    cache, _ = make_cache()
    assert cache.mark_dirty(3) is False
    cache.fill(3)
    assert cache.mark_dirty(3) is True
    assert cache.is_dirty(3)


def test_flush_all_returns_dirty_lines():
    cache, _ = make_cache()
    cache.access(1, write=True)
    cache.access(2, write=False)
    cache.access(3, write=True)
    lost = cache.flush_all()
    assert sorted(lost) == [1, 3]
    assert len(cache) == 0


def test_dirty_lines_iterator():
    cache, _ = make_cache()
    cache.access(1, write=True)
    cache.access(2, write=False)
    assert set(cache.dirty_lines()) == {1}
    assert set(cache.resident_lines()) == {1, 2}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.booleans()), max_size=300))
def test_property_capacity_never_exceeded(ops):
    cache, _ = make_cache(size=8 * 64, assoc=2)  # 4 sets x 2 ways = 8 lines
    for line, write in ops:
        cache.access(line, write)
        assert len(cache) <= 8


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_property_most_recent_access_is_resident(lines):
    cache, _ = make_cache(size=4 * 64, assoc=4)
    for line in lines:
        cache.access(line, write=False)
        assert cache.contains(line)
