"""Tests for physical address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.address import (
    AddressMap,
    CACHE_LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
)
from repro.common.errors import AddressError, ConfigError

CAPACITY = 8 << 20  # 8 MB, 8 banks => 1 MB per bank


@pytest.fixture
def amap():
    return AddressMap(capacity=CAPACITY, n_banks=8)


def test_constants_are_consistent():
    assert PAGE_SIZE % CACHE_LINE_SIZE == 0
    assert LINES_PER_PAGE == PAGE_SIZE // CACHE_LINE_SIZE == 64


def test_basic_sizes(amap):
    assert amap.n_lines == CAPACITY // 64
    assert amap.n_pages == CAPACITY // 4096
    assert amap.bank_size == CAPACITY // 8


def test_line_of_addr_and_back(amap):
    assert amap.line_of_addr(0) == 0
    assert amap.line_of_addr(63) == 0
    assert amap.line_of_addr(64) == 1
    assert amap.line_addr(5) == 320


def test_align_line(amap):
    assert amap.align_line(0) == 0
    assert amap.align_line(70) == 64
    assert amap.align_line(64) == 64


def test_page_mapping(amap):
    assert amap.page_of_addr(0) == 0
    assert amap.page_of_addr(PAGE_SIZE) == 1
    assert amap.page_of_line(0) == 0
    assert amap.page_of_line(LINES_PER_PAGE) == 1


def test_line_in_page_is_minor_counter_slot(amap):
    assert amap.line_in_page(0) == 0
    assert amap.line_in_page(LINES_PER_PAGE - 1) == LINES_PER_PAGE - 1
    assert amap.line_in_page(LINES_PER_PAGE) == 0


def test_lines_of_page(amap):
    lines = amap.lines_of_page(3)
    assert len(lines) == LINES_PER_PAGE
    assert lines[0] == 3 * LINES_PER_PAGE
    assert all(amap.page_of_line(line) == 3 for line in lines)


def test_pages_interleave_across_banks(amap):
    """Consecutive pages must land in consecutive banks (Section 3.3)."""
    banks = [amap.bank_of_page(p) for p in range(16)]
    assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7]


def test_lines_within_page_share_bank(amap):
    for line in amap.lines_of_page(5):
        assert amap.bank_of_line(line) == amap.bank_of_page(5)


def test_bank_of_addr_matches_page(amap):
    addr = 3 * PAGE_SIZE + 100
    assert amap.bank_of_addr(addr) == amap.bank_of_page(3)


def test_row_of_line_groups_lines(amap):
    rows = {amap.row_of_line(line) for line in amap.lines_of_page(2)}
    assert len(rows) == 1  # row_size == PAGE_SIZE by default


def test_out_of_range_address_raises(amap):
    with pytest.raises(AddressError):
        amap.check_addr(CAPACITY)
    with pytest.raises(AddressError):
        amap.check_addr(-1)
    with pytest.raises(AddressError):
        amap.line_of_addr(CAPACITY + 5)


def test_invalid_geometry_raises():
    with pytest.raises(ConfigError):
        AddressMap(capacity=0, n_banks=8)
    with pytest.raises(ConfigError):
        AddressMap(capacity=1000, n_banks=8)  # not a multiple
    with pytest.raises(ConfigError):
        AddressMap(capacity=8 << 20, n_banks=0)
    with pytest.raises(ConfigError):
        AddressMap(capacity=8 << 20, n_banks=8, row_size=100)


@given(st.integers(min_value=0, max_value=CAPACITY - 1))
def test_property_line_page_consistency(addr):
    amap = AddressMap(capacity=CAPACITY, n_banks=8)
    line = amap.line_of_addr(addr)
    assert amap.page_of_line(line) == amap.page_of_addr(addr)
    assert amap.line_addr(line) <= addr < amap.line_addr(line) + CACHE_LINE_SIZE


@given(st.integers(min_value=0, max_value=(CAPACITY // 64) - 1))
def test_property_bank_in_range(line):
    amap = AddressMap(capacity=CAPACITY, n_banks=8)
    assert 0 <= amap.bank_of_line(line) < 8
