"""Tests for the bank-interleaving policies."""

import pytest

from repro.common.address import AddressMap, CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError

CAPACITY = 8 << 20


def test_unknown_mapping_rejected():
    with pytest.raises(ConfigError):
        AddressMap(capacity=CAPACITY, n_banks=8, bank_mapping="hash")


class TestPageMapping:
    amap = AddressMap(capacity=CAPACITY, n_banks=8, bank_mapping="page")

    def test_page_rotation(self):
        assert [self.amap.bank_of_page(p) for p in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1,
        ]

    def test_lines_of_page_share_bank(self):
        banks = {self.amap.bank_of_line(line) for line in self.amap.lines_of_page(3)}
        assert banks == {3}


class TestLineMapping:
    amap = AddressMap(capacity=CAPACITY, n_banks=8, bank_mapping="line")

    def test_consecutive_lines_rotate(self):
        assert [self.amap.bank_of_line(line) for line in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1,
        ]

    def test_page_spans_all_banks(self):
        banks = {self.amap.bank_of_line(line) for line in self.amap.lines_of_page(0)}
        assert banks == set(range(8))

    def test_nominal_page_bank_still_defined(self):
        assert self.amap.bank_of_page(3) == 3


class TestContiguousMapping:
    amap = AddressMap(capacity=CAPACITY, n_banks=8, bank_mapping="contiguous")

    def test_slab_ownership(self):
        slab = CAPACITY // 8
        assert self.amap.bank_of_addr(0) == 0
        assert self.amap.bank_of_addr(slab - 1) == 0
        assert self.amap.bank_of_addr(slab) == 1
        assert self.amap.bank_of_addr(CAPACITY - 1) == 7

    def test_page_bank_consistent_with_lines(self):
        page = (CAPACITY // 8) // PAGE_SIZE + 1  # a page inside bank 1
        line_banks = {
            self.amap.bank_of_line(line) for line in self.amap.lines_of_page(page)
        }
        assert line_banks == {self.amap.bank_of_page(page)} == {1}


def test_memory_config_plumbs_mapping():
    amap = MemoryConfig(capacity=CAPACITY, bank_mapping="line").address_map()
    assert amap.bank_mapping == "line"
    assert amap.bank_of_line(1) == 1


def test_simulation_runs_under_each_mapping():
    import dataclasses

    from repro.common.config import SimConfig
    from repro.core.schemes import Scheme, scheme_config
    from repro.sim.simulator import Simulator
    from repro.workloads.generator import generate_trace

    trace = generate_trace("queue", n_ops=10, request_size=256, footprint=128 << 10)
    totals = {}
    for mapping in ("page", "line", "contiguous"):
        cfg = dataclasses.replace(
            scheme_config(
                Scheme.SUPERMEM,
                SimConfig(memory=MemoryConfig(capacity=CAPACITY, bank_mapping=mapping)),
            ),
            functional=False,
        )
        result = Simulator(cfg).run(list(trace.ops))
        totals[mapping] = result.total_time_ns
    # All three complete; contiguous (one busy bank) must be slowest or
    # equal for a sequential workload.
    assert totals["contiguous"] >= totals["line"] - 1e-6
