"""Tests for the configuration dataclasses."""

import pytest

from repro.common.config import (
    CacheConfig,
    CounterCacheConfig,
    CounterCacheMode,
    CounterPlacementPolicy,
    MemoryConfig,
    SimConfig,
    TimingConfig,
)
from repro.common.errors import ConfigError


def test_default_sim_config_matches_paper_table2():
    cfg = SimConfig()
    assert cfg.l1.size == 32 << 10 and cfg.l1.latency_cycles == 2
    assert cfg.l2.size == 512 << 10 and cfg.l2.latency_cycles == 16
    assert cfg.l3.size == 4 << 20 and cfg.l3.latency_cycles == 30
    assert cfg.counter_cache.size == 256 << 10
    assert cfg.counter_cache.assoc == 8
    assert cfg.counter_cache.latency_cycles == 8
    assert cfg.memory.n_banks == 8
    assert cfg.memory.write_queue_entries == 32
    assert cfg.timing.aes_cycles == 24
    assert cfg.minor_counter_bits == 7


def test_timing_paper_latencies():
    t = TimingConfig()
    assert t.trcd_ns == 48.0
    assert t.tcl_ns == 15.0
    assert t.tcwd_ns == 13.0
    assert t.tfaw_ns == 50.0
    assert t.twtr_ns == 7.5
    assert t.twr_ns == 300.0
    assert t.read_service_ns == 63.0
    assert t.write_service_ns == pytest.approx(361.0)
    assert t.aes_ns == pytest.approx(12.0)  # 24 cycles @ 2 GHz


def test_writes_dominate_reads():
    """PCM's slow cell writes are the premise of the whole paper."""
    t = TimingConfig()
    assert t.write_service_ns > 4 * t.read_service_ns


def test_cycles_to_ns():
    t = TimingConfig(cpu_freq_ghz=2.0)
    assert t.cycles_to_ns(30) == 15.0


def test_cache_geometry():
    cache = CacheConfig(size=32 << 10, assoc=8, latency_cycles=2)
    assert cache.n_sets == 64
    assert cache.n_lines == 512


def test_cache_invalid_geometry():
    with pytest.raises(ConfigError):
        CacheConfig(size=1000, assoc=8, latency_cycles=2)
    with pytest.raises(ConfigError):
        CacheConfig(size=0, assoc=8, latency_cycles=2)
    with pytest.raises(ConfigError):
        CacheConfig(size=32 << 10, assoc=8, latency_cycles=-1)


def test_counter_cache_reach():
    """A 256 KB counter cache covers 16 MB of data (4096 pages)."""
    cc = CounterCacheConfig(size=256 << 10, assoc=8, latency_cycles=8)
    assert cc.n_lines == 4096
    assert cc.reach_bytes == 16 << 20
    assert cc.mode is CounterCacheMode.WRITE_THROUGH


def test_memory_config_rejects_tiny_write_queue():
    with pytest.raises(ConfigError):
        MemoryConfig(write_queue_entries=1)


def test_address_map_roundtrip():
    cfg = SimConfig(memory=MemoryConfig(capacity=16 << 20, n_banks=8))
    amap = cfg.address_map()
    assert amap.capacity == 16 << 20
    assert amap.n_banks == 8


def test_invalid_timing_rejected():
    with pytest.raises(ConfigError):
        TimingConfig(twr_ns=0)
    with pytest.raises(ConfigError):
        TimingConfig(aes_cycles=-1)


def test_invalid_minor_bits_rejected():
    with pytest.raises(ConfigError):
        SimConfig(minor_counter_bits=0)
    with pytest.raises(ConfigError):
        SimConfig(minor_counter_bits=32)


def test_placement_policy_values():
    assert CounterPlacementPolicy.SINGLE_BANK.value == "single-bank"
    assert CounterPlacementPolicy.SAME_BANK.value == "same-bank"
    assert CounterPlacementPolicy.XBANK.value == "xbank"


def test_configs_are_frozen():
    cfg = SimConfig()
    with pytest.raises(AttributeError):
        cfg.encrypted = False
    with pytest.raises(AttributeError):
        cfg.timing.twr_ns = 1.0
