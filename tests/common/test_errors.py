"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AddressError,
    ConfigError,
    CrashInjected,
    ReproError,
    SecurityError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc_type",
    [ConfigError, SimulationError, SecurityError, AddressError, CrashInjected],
)
def test_all_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_crash_injected_message_with_point():
    exc = CrashInjected("txn-after-mutate", detail="txn 7")
    assert exc.point == "txn-after-mutate"
    assert "txn-after-mutate" in str(exc)
    assert "txn 7" in str(exc)


def test_crash_injected_bare():
    exc = CrashInjected()
    assert exc.point == ""
    assert "crash injected" in str(exc)


def test_one_handler_catches_everything():
    for exc_type in (ConfigError, SecurityError, CrashInjected):
        try:
            raise exc_type("boom")
        except ReproError:
            pass
