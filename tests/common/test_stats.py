"""Tests for the statistics registry."""

from repro.common.stats import Stats


def test_inc_and_get():
    s = Stats()
    s.inc("wq", "appends")
    s.inc("wq", "appends", 2)
    assert s.get("wq", "appends") == 3


def test_get_default():
    s = Stats()
    assert s.get("nothing", "here") == 0
    assert s.get("nothing", "here", default=7) == 7


def test_set_overwrites():
    s = Stats()
    s.inc("a", "x", 10)
    s.set("a", "x", 3)
    assert s.get("a", "x") == 3


def test_maximize():
    s = Stats()
    s.maximize("wq", "peak", 5)
    s.maximize("wq", "peak", 3)
    s.maximize("wq", "peak", 9)
    assert s.get("wq", "peak") == 9


def test_namespace_view():
    s = Stats()
    s.inc("bank.0", "reads", 3)
    s.inc("bank.0", "writes", 4)
    s.inc("bank.1", "reads", 9)
    assert s.namespace("bank.0") == {"reads": 3, "writes": 4}


def test_ratio():
    s = Stats()
    s.inc("cc", "hits", 3)
    s.inc("cc", "accesses", 4)
    assert s.ratio("cc", "hits", "accesses") == 0.75
    assert s.ratio("cc", "hits", "missing-denominator") == 0.0


def test_merge_adds():
    a, b = Stats(), Stats()
    a.inc("x", "n", 1)
    b.inc("x", "n", 2)
    b.inc("y", "m", 5)
    a.merge(b)
    assert a.get("x", "n") == 3
    assert a.get("y", "m") == 5


def test_reset():
    s = Stats()
    s.inc("x", "n", 3)
    s.reset()
    assert s.get("x", "n") == 0


def test_iteration_is_sorted():
    s = Stats()
    s.inc("b", "z")
    s.inc("a", "y")
    order = [(space, counter) for space, counter, _ in s]
    assert order == [("a", "y"), ("b", "z")]


def test_format_filters_by_prefix():
    s = Stats()
    s.inc("bank.0", "writes", 2)
    s.inc("wq", "appends", 1)
    text = s.format(prefix="bank")
    assert "bank.0.writes = 2" in text
    assert "wq" not in text


def test_integer_values_render_without_decimals():
    s = Stats()
    s.inc("a", "n", 2.0)
    assert s.get("a", "n") == 2
    assert isinstance(s.get("a", "n"), int)
