"""Tests for the statistics registry."""

from repro.common.stats import Stats


def test_inc_and_get():
    s = Stats()
    s.inc("wq", "appends")
    s.inc("wq", "appends", 2)
    assert s.get("wq", "appends") == 3


def test_get_default():
    s = Stats()
    assert s.get("nothing", "here") == 0
    assert s.get("nothing", "here", default=7) == 7


def test_set_overwrites():
    s = Stats()
    s.inc("a", "x", 10)
    s.set("a", "x", 3)
    assert s.get("a", "x") == 3


def test_maximize():
    s = Stats()
    s.maximize("wq", "peak", 5)
    s.maximize("wq", "peak", 3)
    s.maximize("wq", "peak", 9)
    assert s.get("wq", "peak") == 9


def test_namespace_view():
    s = Stats()
    s.inc("bank.0", "reads", 3)
    s.inc("bank.0", "writes", 4)
    s.inc("bank.1", "reads", 9)
    assert s.namespace("bank.0") == {"reads": 3, "writes": 4}


def test_ratio():
    s = Stats()
    s.inc("cc", "hits", 3)
    s.inc("cc", "accesses", 4)
    assert s.ratio("cc", "hits", "accesses") == 0.75
    assert s.ratio("cc", "hits", "missing-denominator") == 0.0


def test_merge_adds():
    a, b = Stats(), Stats()
    a.inc("x", "n", 1)
    b.inc("x", "n", 2)
    b.inc("y", "m", 5)
    a.merge(b)
    assert a.get("x", "n") == 3
    assert a.get("y", "m") == 5


def test_reset():
    s = Stats()
    s.inc("x", "n", 3)
    s.reset()
    assert s.get("x", "n") == 0


def test_iteration_is_sorted():
    s = Stats()
    s.inc("b", "z")
    s.inc("a", "y")
    order = [(space, counter) for space, counter, _ in s]
    assert order == [("a", "y"), ("b", "z")]


def test_format_filters_by_prefix():
    s = Stats()
    s.inc("bank.0", "writes", 2)
    s.inc("wq", "appends", 1)
    text = s.format(prefix="bank")
    assert "bank.0.writes = 2" in text
    assert "wq" not in text


def test_integer_values_render_without_decimals():
    s = Stats()
    s.inc("a", "n", 2.0)
    assert s.get("a", "n") == 2
    assert isinstance(s.get("a", "n"), int)


# -- merge edge cases ------------------------------------------------------


def test_merge_empty_other_is_identity():
    a = Stats()
    a.inc("x", "n", 4)
    before = a.snapshot()
    a.merge(Stats())
    assert a.snapshot() == before


def test_merge_into_empty_copies_everything():
    a, b = Stats(), Stats()
    b.inc("x", "n", 2)
    b.set("y", "m", 1.5)
    a.merge(b)
    assert a.snapshot() == b.snapshot()


def test_merge_does_not_alias_source():
    a, b = Stats(), Stats()
    b.inc("x", "n", 2)
    a.merge(b)
    b.inc("x", "n", 10)
    assert a.get("x", "n") == 2


def test_merge_mixes_float_and_int():
    a, b = Stats(), Stats()
    a.inc("x", "n", 1)
    b.inc("x", "n", 0.5)
    a.merge(b)
    assert a.get("x", "n") == 1.5


def test_self_merge_doubles():
    a = Stats()
    a.inc("x", "n", 3)
    a.merge(a)
    assert a.get("x", "n") == 6


# -- maximize edge cases ---------------------------------------------------


def test_maximize_keeps_existing_on_tie():
    s = Stats()
    s.maximize("wq", "peak", 5)
    s.maximize("wq", "peak", 5)
    assert s.get("wq", "peak") == 5


def test_maximize_with_negative_values():
    s = Stats()
    s.maximize("t", "coldest", -10)
    s.maximize("t", "coldest", -3)
    assert s.get("t", "coldest") == -3
    # A first negative observation is kept even though it is < 0.
    s2 = Stats()
    s2.maximize("t", "coldest", -10)
    assert s2.get("t", "coldest") == -10


def test_maximize_after_inc_respects_running_value():
    s = Stats()
    s.inc("wq", "peak", 7)
    s.maximize("wq", "peak", 3)
    assert s.get("wq", "peak") == 7
    s.maximize("wq", "peak", 9)
    assert s.get("wq", "peak") == 9


# -- format prefix filtering edge cases ------------------------------------


def test_format_empty_prefix_includes_everything():
    s = Stats()
    s.inc("bank.0", "writes", 1)
    s.inc("wq", "appends", 1)
    text = s.format()
    assert "bank.0.writes = 1" in text
    assert "wq.appends = 1" in text


def test_format_prefix_is_plain_string_prefix_not_namespace_match():
    """'bank.1' matches both 'bank.1' and 'bank.10' — prefix semantics."""
    s = Stats()
    s.inc("bank.1", "writes", 1)
    s.inc("bank.10", "writes", 2)
    s.inc("bank.2", "writes", 3)
    text = s.format(prefix="bank.1")
    assert "bank.1.writes = 1" in text
    assert "bank.10.writes = 2" in text
    assert "bank.2" not in text


def test_format_unmatched_prefix_is_empty():
    s = Stats()
    s.inc("wq", "appends", 1)
    assert s.format(prefix="nothing") == ""


def test_format_on_empty_stats_is_empty():
    assert Stats().format() == ""


def test_format_renders_floats_to_four_places():
    s = Stats()
    s.set("cc", "rate", 0.123456)
    assert "cc.rate = 0.1235" in s.format()
