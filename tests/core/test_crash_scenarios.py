"""Crash-consistency scenarios (paper Figures 4 and 6, Section 3.2).

These tests drive the *functional* memory system, inject power failures at
the architecturally interesting instants, and check whether the durable
state decrypts to a consistent value. They are the executable version of
the paper's motivation:

* Figure 4a/4b — persisting only one of (data, counter) makes the line
  undecryptable;
* Figure 6 — a write-through counter cache *without* the staging register
  has a crash window between the counter append and the data append;
* Figure 7 — with the register, data+counter enter the ADR domain
  atomically, so every crash leaves every line decryptable.
"""

import dataclasses

import pytest

from repro.common.config import (
    CounterCacheConfig,
    CounterCacheMode,
    MemoryConfig,
    SimConfig,
)
from repro.common.errors import CrashInjected
from repro.core.recovery import RecoveredSystem
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem

V1 = bytes([0x11] * 64)
V2 = bytes([0x22] * 64)
V3 = bytes([0x33] * 64)


def make_system(scheme=Scheme.SUPERMEM, **overrides):
    base = SimConfig(memory=MemoryConfig(capacity=8 << 20))
    cfg = dataclasses.replace(scheme_config(scheme, base), **overrides)
    return SecureMemorySystem(cfg)


class TestSuperMemAtomicity:
    def test_crash_after_persist_recovers_new_value(self):
        sys = make_system()
        sys.persist_line(0.0, line=0, payload=V1)
        image = sys.crash()
        recovered = RecoveredSystem(image)
        assert recovered.plaintext_of(0) == V1

    def test_crash_between_writes_recovers_prefix(self):
        sys = make_system()
        sys.persist_line(0.0, line=0, payload=V1)
        sys.persist_line(10.0, line=1, payload=V2)
        image = sys.crash()
        recovered = RecoveredSystem(image)
        assert recovered.plaintext_of(0) == V1
        assert recovered.plaintext_of(1) == V2
        assert recovered.plaintext_of(2) == bytes(64)  # never written

    def test_overwrite_then_crash_recovers_latest(self):
        sys = make_system()
        sys.persist_line(0.0, line=0, payload=V1)
        sys.persist_line(10.0, line=0, payload=V2)
        image = sys.crash()
        assert RecoveredSystem(image).audit_against_shadow({0: V2}) == {}

    @pytest.mark.parametrize("crash_at", range(1, 9))
    def test_every_crash_point_is_consistent(self, crash_at):
        """Property of Figure 7: wherever the crash lands, every line's
        durable image decrypts to one of its written versions."""
        sys = make_system()
        sys.crash_ctl.arm("after-pair-append", occurrence=crash_at)
        versions = {}
        try:
            for i, payload in enumerate([V1, V2, V3] * 3):
                line = i % 4
                # Record the attempt first: an in-flight write may or may
                # not be durable when the crash lands.
                versions.setdefault(line, [bytes(64)]).append(payload)
                sys.persist_line(float(i), line=line, payload=payload)
        except CrashInjected:
            pass
        image = sys.crash()
        recovered = RecoveredSystem(image)
        for line in range(4):
            allowed = versions.get(line, [bytes(64)])
            assert recovered.plaintext_of(line) in allowed


class TestBrokenBaselineNoRegister:
    """Figure 6: write-through without the staging register."""

    def test_gap_crash_makes_line_undecryptable(self):
        sys = make_system(atomicity_register=False)
        sys.persist_line(0.0, line=0, payload=V1)  # completes fine
        sys.drain()
        # Arm the window between counter append and data append of the
        # next write to line 0 (occurrence counting restarts at arm).
        sys.crash_ctl.arm("wt-no-register-gap", occurrence=1)
        with pytest.raises(CrashInjected):
            sys.persist_line(100.0, line=0, payload=V2)
        image = sys.crash()
        recovered = RecoveredSystem(image)
        got = recovered.plaintext_of(0)
        # The new counter is durable but the new data is not: the old
        # ciphertext no longer decrypts, and the new value never arrived.
        assert got != V1 and got != V2

    def test_no_crash_no_corruption(self):
        """The broken design is only broken *across* crashes."""
        sys = make_system(atomicity_register=False)
        sys.persist_line(0.0, line=0, payload=V1)
        sys.persist_line(10.0, line=0, payload=V2)
        image = sys.crash()
        assert RecoveredSystem(image).plaintext_of(0) == V2


class TestWriteBackWithoutBattery:
    """Figure 4b: data persisted, counter still in a volatile WB cache."""

    def make_wb(self, battery: bool):
        base = SimConfig(
            memory=MemoryConfig(capacity=8 << 20),
            counter_cache=CounterCacheConfig(
                size=256 << 10,
                assoc=8,
                latency_cycles=8,
                mode=CounterCacheMode.WRITE_BACK,
                battery_backed=battery,
            ),
        )
        return SecureMemorySystem(base)

    def test_crash_loses_dirty_counters(self):
        sys = self.make_wb(battery=False)
        sys.persist_line(0.0, line=0, payload=V1)
        image = sys.crash()
        recovered = RecoveredSystem(image)
        # Data reached NVM (via ADR) but its counter died in SRAM: the
        # stored counter is stale (zero) and decryption yields garbage.
        assert recovered.plaintext_of(0) != V1

    def test_battery_flush_saves_counters(self):
        sys = self.make_wb(battery=True)
        sys.persist_line(0.0, line=0, payload=V1)
        image = sys.crash()
        assert RecoveredSystem(image).plaintext_of(0) == V1

    def test_orderly_shutdown_is_always_safe(self):
        sys = self.make_wb(battery=False)
        sys.persist_line(0.0, line=0, payload=V1)
        image = sys.orderly_shutdown()
        assert RecoveredSystem(image).plaintext_of(0) == V1


class TestUnsecCrash:
    def test_unencrypted_lines_need_no_counters(self):
        sys = make_system(Scheme.UNSEC)
        sys.persist_line(0.0, line=0, payload=V1)
        image = sys.crash()
        assert RecoveredSystem(image).plaintext_of(0) == V1


class TestAdrDomain:
    def test_queued_writes_survive(self):
        """Entries still sitting in the write queue are durable (ADR)."""
        sys = make_system()
        # saturate one bank so appends stay queued
        for i in range(6):
            sys.persist_line(0.0, line=i, payload=V1)
        assert len(sys.controller.wq) > 0
        image = sys.crash()
        recovered = RecoveredSystem(image)
        for i in range(6):
            assert recovered.plaintext_of(i) == V1
