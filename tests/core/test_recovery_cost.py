"""Unit tests for the timed recovery-cost model.

Covers the meter's charging mechanics (bank occupancy, bus, AES,
freeze), the scenario driver's parameter validation, and the Section 6
cost shapes the model exists to produce: SuperMem flat in capacity, the
SCA scan linear, Osiris pricing a trial per written line, and the log /
RSR knobs moving only SuperMem's own terms.
"""

import pytest

from repro.common.config import MemoryConfig, SimConfig
from repro.common.errors import ConfigError, SimulationError
from repro.core.recovery_cost import (
    RecoveryMeter,
    recovery_trace_events,
    run_recovery_scenario,
)
from repro.core.schemes import Scheme
from repro.obs.events import CAT_RECOVERY, PH_COMPLETE, PH_INSTANT


def _config(capacity=8 << 20):
    return SimConfig(memory=MemoryConfig(capacity=capacity))


class TestRecoveryMeter:
    def test_single_read_costs_the_bank_service_time(self):
        config = _config()
        meter = RecoveryMeter(config)
        meter.nvm_read(0)
        assert meter.time_ns == config.timing.read_service_ns
        assert meter.nvm_reads == 1
        assert meter.data_line_reads == 1
        assert meter.counter_line_reads == 0

    def test_counter_flag_classifies_the_read(self):
        meter = RecoveryMeter(_config())
        meter.nvm_read(0, counter=True)
        assert meter.counter_line_reads == 1
        assert meter.data_line_reads == 0

    def test_write_costs_more_than_read(self):
        config = _config()
        read_meter, write_meter = RecoveryMeter(config), RecoveryMeter(config)
        read_meter.nvm_read(0)
        write_meter.nvm_write(0)
        assert write_meter.time_ns > read_meter.time_ns
        assert write_meter.time_ns == config.timing.write_service_ns

    def test_same_bank_serialises_and_different_banks_overlap(self):
        config = _config()
        amap = config.address_map()
        same, cross = RecoveryMeter(config), RecoveryMeter(config)
        lines = amap.lines_of_page(0)
        same.nvm_read(lines[0])
        same.nvm_read(lines[1])  # one page = one bank
        other_page = next(
            p for p in range(1, amap.n_pages)
            if amap.bank_of_line(amap.lines_of_page(p)[0]) != amap.bank_of_line(lines[0])
        )
        cross.nvm_read(lines[0])
        cross.nvm_read(amap.lines_of_page(other_page)[0])
        assert same.time_ns >= 2 * config.timing.read_service_ns
        assert cross.time_ns < same.time_ns

    def test_aes_accumulates_on_the_crypto_timeline(self):
        config = _config()
        meter = RecoveryMeter(config)
        meter.aes(100)
        assert meter.aes_ops == 100
        assert meter.time_ns == 100 * config.timing.aes_ns

    def test_charge_image_read_classifies_by_region(self):
        config = _config()
        meter = RecoveryMeter(config)
        meter.charge_image_read(0)
        meter.charge_image_read(config.address_map().n_lines)
        assert meter.data_line_reads == 1
        assert meter.counter_line_reads == 1

    def test_freeze_stops_all_accounting(self):
        meter = RecoveryMeter(_config())
        meter.nvm_read(0)
        before = meter.time_ns
        meter.freeze()
        meter.nvm_read(1)
        meter.nvm_write(2)
        meter.aes(10)
        assert meter.time_ns == before
        assert meter.nvm_reads == 1
        assert meter.aes_ops == 0

    def test_requires_a_configuration(self):
        with pytest.raises(SimulationError):
            RecoveryMeter(None)


class TestScenarioValidation:
    def test_rejects_out_of_range_dirty_frac(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ConfigError):
                run_recovery_scenario(Scheme.SUPERMEM, dirty_frac=bad)

    def test_rejects_unknown_rsr_mode(self):
        with pytest.raises(ConfigError):
            run_recovery_scenario(Scheme.SUPERMEM, rsr="bogus")

    def test_rejects_degenerate_log(self):
        with pytest.raises(ConfigError):
            run_recovery_scenario(Scheme.SUPERMEM, log_lines=1)


def _scenario(scheme, **kwargs):
    kwargs.setdefault("n_txns", 8)
    report, recovered, shadow = run_recovery_scenario(scheme, **kwargs)
    return report, recovered, shadow


class TestSectionSixShapes:
    def test_supermem_recovery_is_flat_in_capacity(self):
        small, _, _ = _scenario(Scheme.SUPERMEM, base_config=_config(8 << 20))
        large, _, _ = _scenario(Scheme.SUPERMEM, base_config=_config(32 << 20))
        assert large.time_ns <= small.time_ns * 1.2

    def test_sca_scan_is_linear_in_capacity(self):
        small, _, _ = _scenario(Scheme.SCA, base_config=_config(8 << 20))
        large, _, _ = _scenario(Scheme.SCA, base_config=_config(32 << 20))
        assert large.counter_region_lines == 4 * small.counter_region_lines
        assert large.time_ns > 2 * small.time_ns

    def test_ordering_supermem_cheapest_on_same_parameters(self):
        config = _config(16 << 20)
        supermem, _, _ = _scenario(Scheme.SUPERMEM, base_config=config)
        sca, _, _ = _scenario(Scheme.SCA, base_config=config)
        osiris, _, _ = _scenario(Scheme.OSIRIS, base_config=config)
        assert supermem.time_ns <= sca.time_ns
        assert supermem.time_ns <= osiris.time_ns

    def test_osiris_prices_a_trial_per_written_line(self):
        report, _, _ = _scenario(Scheme.OSIRIS)
        assert report.trial_decryptions >= report.written_data_lines - report.log_lines_scanned
        assert report.trial_decryptions > 0

    def test_log_size_is_supermem_growth_term(self):
        short, _, _ = _scenario(Scheme.SUPERMEM, log_lines=128)
        long, _, _ = _scenario(Scheme.SUPERMEM, log_lines=512)
        assert short.log_lines_scanned == 128
        assert long.log_lines_scanned == 512
        assert long.time_ns > short.time_ns

    def test_armed_rsr_adds_a_bounded_resume(self):
        off, _, _ = _scenario(Scheme.SUPERMEM, rsr="off")
        armed, _, _ = _scenario(Scheme.SUPERMEM, rsr="armed")
        assert off.rsr_lines_resumed == 0
        assert armed.rsr_lines_resumed > 0
        assert armed.time_ns > off.time_ns
        assert armed.nvm_writes >= armed.rsr_lines_resumed

    def test_supermem_audit_is_clean_and_free(self):
        report, recovered, shadow = _scenario(Scheme.SUPERMEM)
        reads_before = recovered.meter.nvm_reads if recovered.meter else None
        assert recovered.audit_against_shadow(shadow) == {}
        if recovered.meter is not None:  # frozen: the audit was free
            assert recovered.meter.nvm_reads == reads_before
        assert report.time_ns > 0


class TestReportShape:
    def test_phases_are_ordered_and_cover_the_total(self):
        report, _, _ = _scenario(Scheme.SCA)
        assert [name for name, _, _ in report.phases][0] == "counter-scan"
        last_end = 0.0
        for _name, start, end in report.phases:
            assert start >= last_end or start == pytest.approx(last_end)
            assert end >= start
            last_end = end
        assert last_end == pytest.approx(report.time_ns)

    def test_to_dict_round_trips_every_counter(self):
        report, _, _ = _scenario(Scheme.SUPERMEM)
        record = report.to_dict()
        assert record["path"] == "supermem"
        assert record["time_ns"] == report.time_ns
        assert record["log_lines_scanned"] == report.log_lines_scanned
        assert isinstance(record["phases"], list)

    def test_trace_events_mirror_the_phases(self):
        report, _, _ = _scenario(Scheme.SUPERMEM, rsr="armed")
        events = recovery_trace_events(report)
        completes = [e for e in events if e.ph == PH_COMPLETE]
        instants = [e for e in events if e.ph == PH_INSTANT]
        assert len(completes) == len(report.phases)
        assert len(instants) == 1
        assert all(e.cat == CAT_RECOVERY for e in events)
