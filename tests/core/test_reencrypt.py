"""Tests for minor-counter overflow, page re-encryption, and RSR recovery."""

import dataclasses

import pytest

from repro.common.address import LINES_PER_PAGE
from repro.common.config import MemoryConfig, SimConfig
from repro.common.errors import CrashInjected
from repro.core.recovery import RecoveredSystem
from repro.core.reencrypt import RSRRecord
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem

PAYLOAD = bytes([0xAB] * 64)


def make_system(**overrides):
    base = SimConfig(memory=MemoryConfig(capacity=8 << 20))
    cfg = dataclasses.replace(scheme_config(Scheme.SUPERMEM, base), **overrides)
    return SecureMemorySystem(cfg)


class TestRSRRecord:
    def test_serialises_to_20_bytes(self):
        """The paper's battery-cost argument: the RSR is 20 bytes."""
        rsr = RSRRecord(page=1, old_major=2)
        assert RSRRecord.SIZE_BYTES == 20
        assert len(rsr.to_bytes()) == 20

    def test_roundtrip(self):
        rsr = RSRRecord(page=77, old_major=123456)
        rsr.mark_done(0)
        rsr.mark_done(63)
        parsed = RSRRecord.from_bytes(rsr.to_bytes())
        assert parsed.page == 77
        assert parsed.old_major == 123456
        assert parsed.done == rsr.done

    def test_pending_slots(self):
        rsr = RSRRecord(page=0, old_major=0)
        for slot in range(10):
            rsr.mark_done(slot)
        assert rsr.pending_slots() == list(range(10, LINES_PER_PAGE))
        assert not rsr.complete

    def test_complete(self):
        rsr = RSRRecord(page=0, old_major=0)
        for slot in range(LINES_PER_PAGE):
            rsr.mark_done(slot)
        assert rsr.complete


class TestOverflowTriggersReencryption:
    def test_128th_write_reencrypts(self):
        sys = make_system()
        results = [sys.persist_line(float(i), line=0, payload=PAYLOAD) for i in range(127)]
        assert not any(r.reencrypted for r in results)
        result = sys.persist_line(1000.0, line=0, payload=PAYLOAD)
        assert result.reencrypted
        assert sys.stats.get("secmem", "page_reencryptions") == 1

    def test_content_survives_reencryption(self):
        sys = make_system()
        # put distinct content on several lines of page 0
        contents = {line: bytes([line] * 64) for line in range(1, 5)}
        for line, payload in contents.items():
            sys.persist_line(0.0, line=line, payload=payload)
        # force overflow on line 0
        for i in range(128):
            sys.persist_line(float(i), line=0, payload=PAYLOAD)
        for line, payload in contents.items():
            assert sys.read_line(10**6, line=line).payload == payload
        assert sys.read_line(10**6, line=0).payload == PAYLOAD

    def test_major_counter_advances(self):
        sys = make_system()
        for i in range(128):
            sys.persist_line(float(i), line=0, payload=PAYLOAD)
        assert sys.counters.block(0).major == 1
        assert sys.counters.block(0).minors[0] == 1  # re-bumped after reset

    def test_crash_after_reencryption_is_consistent(self):
        sys = make_system()
        contents = {line: bytes([line + 1] * 64) for line in range(1, 4)}
        for line, payload in contents.items():
            sys.persist_line(0.0, line=line, payload=payload)
        for i in range(128):
            sys.persist_line(float(i), line=0, payload=PAYLOAD)
        image = sys.crash()
        recovered = RecoveredSystem(image)
        shadow = dict(contents)
        shadow[0] = PAYLOAD
        assert recovered.audit_against_shadow(shadow) == {}


class TestCrashDuringReencryption:
    def drive_to_mid_reencryption_crash(self, rsr_adr: bool, crash_slot: int = 20):
        sys = make_system(rsr_adr=rsr_adr)
        contents = {line: bytes([(line % 250) + 1] * 64) for line in range(64)}
        for line, payload in contents.items():
            sys.persist_line(0.0, line=line, payload=payload)
        for i in range(126):  # line 0 now at minor 127
            sys.persist_line(float(i), line=0, payload=PAYLOAD)
        contents[0] = PAYLOAD
        sys.crash_ctl.arm("reencrypt-line-done", occurrence=crash_slot)
        with pytest.raises(CrashInjected):
            sys.persist_line(10**6, line=0, payload=PAYLOAD)
        return sys.crash(), contents

    def test_rsr_present_in_image_when_adr_protected(self):
        image, _ = self.drive_to_mid_reencryption_crash(rsr_adr=True)
        assert image.rsr is not None
        assert image.rsr.page == 0
        assert 0 < len(image.rsr.pending_slots()) < LINES_PER_PAGE

    def test_resume_completes_the_page(self):
        image, contents = self.drive_to_mid_reencryption_crash(rsr_adr=True)
        recovered = RecoveredSystem(image)
        resumed = recovered.resume_reencryption()
        assert resumed == len(range(20, 64))
        assert recovered.audit_against_shadow(contents) == {}
        assert recovered.image.rsr is None

    def test_pending_lines_readable_even_before_resume(self):
        """The RSR lets recovery decrypt pending lines with the old major."""
        image, contents = self.drive_to_mid_reencryption_crash(rsr_adr=True)
        recovered = RecoveredSystem(image)
        assert recovered.audit_against_shadow(contents) == {}

    def test_without_adr_rsr_pending_lines_are_garbage(self):
        """The broken baseline of Section 3.4.4: RSR lost on crash."""
        image, contents = self.drive_to_mid_reencryption_crash(rsr_adr=False)
        assert image.rsr is None
        recovered = RecoveredSystem(image)
        mismatches = recovered.audit_against_shadow(contents)
        assert mismatches, "losing the RSR must corrupt pending lines"

    def test_crash_at_various_slots_recoverable(self):
        for slot in (1, 5, 33, 63):
            image, contents = self.drive_to_mid_reencryption_crash(
                rsr_adr=True, crash_slot=slot
            )
            recovered = RecoveredSystem(image)
            recovered.resume_reencryption()
            assert recovered.audit_against_shadow(contents) == {}
