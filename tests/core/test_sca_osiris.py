"""Tests for the related-work baselines: SCA and Osiris (Section 6)."""

import dataclasses

import pytest

from repro.common.config import MemoryConfig, SimConfig
from repro.common.errors import SimulationError
from repro.core.osiris import OsirisRecovery
from repro.core.recovery import RecoveredSystem
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem

PAYLOADS = [bytes([tag]) * 64 for tag in range(1, 9)]


def make_system(scheme, **overrides):
    base = SimConfig(memory=MemoryConfig(capacity=8 << 20))
    cfg = dataclasses.replace(scheme_config(scheme, base), **overrides)
    return SecureMemorySystem(cfg)


class TestSchemeAssembly:
    def test_sca_config(self):
        cfg = scheme_config(Scheme.SCA)
        assert cfg.sca_mode is True
        assert cfg.counter_cache.battery_backed is False
        assert cfg.counter_cache.mode.value == "write-back"

    def test_osiris_config(self):
        cfg = scheme_config(Scheme.OSIRIS)
        assert cfg.osiris_stop_loss == 4
        assert cfg.counter_cache.battery_backed is False

    def test_labels(self):
        assert Scheme.SCA.label == "SCA"
        assert Scheme.OSIRIS.label == "Osiris"


class TestSCA:
    def test_persistent_writes_pair_counter(self):
        sys = make_system(Scheme.SCA)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0], persistent=True)
        assert sys.stats.get("secmem", "sca_pairs") == 1
        assert sys.stats.get("wq", "counter_appends") == 1

    def test_evictions_skip_counter(self):
        sys = make_system(Scheme.SCA)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0], persistent=False)
        assert sys.stats.get("wq", "counter_appends") == 0
        assert sys.counter_cache.is_dirty(0)

    def test_persistent_write_cleans_counter_line(self):
        sys = make_system(Scheme.SCA)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0], persistent=False)
        assert sys.counter_cache.is_dirty(0)
        sys.persist_line(1.0, line=1, payload=PAYLOADS[1], persistent=True)
        assert not sys.counter_cache.is_dirty(0)  # same page, persisted

    def test_crash_preserves_persistent_writes(self):
        sys = make_system(Scheme.SCA)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0], persistent=True)
        sys.persist_line(1.0, line=1, payload=PAYLOADS[1], persistent=True)
        recovered = RecoveredSystem(sys.crash())
        assert recovered.plaintext_of(0) == PAYLOADS[0]
        assert recovered.plaintext_of(1) == PAYLOADS[1]

    def test_crash_may_lose_eviction_written_lines(self):
        """The SCA trade-off: unannotated (eviction) writes are not
        counter-atomic; after a crash they can be garbage."""
        sys = make_system(Scheme.SCA)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0], persistent=True)
        # Re-write the same line via the eviction path: counter bumps in
        # SRAM only, data reaches NVM with the new pad.
        sys.persist_line(1.0, line=0, payload=PAYLOADS[1], persistent=False)
        recovered = RecoveredSystem(sys.crash())
        got = recovered.plaintext_of(0)
        assert got != PAYLOADS[1]  # stored counter is stale


class TestOsiris:
    def test_stop_loss_persists_every_nth_counter(self):
        sys = make_system(Scheme.OSIRIS)
        for i in range(8):
            sys.persist_line(float(i), line=i % 2, payload=PAYLOADS[i])
        # 8 updates of page 0's counter block at stop-loss 4 => 2 writes.
        assert sys.stats.get("secmem", "osiris_stop_loss_writes") == 2
        assert sys.stats.get("wq", "counter_appends") == 2

    def test_osiris_writes_fewer_counters_than_wt(self):
        wt = make_system(Scheme.WT_BASE)
        osiris = make_system(Scheme.OSIRIS)
        for i in range(16):
            wt.persist_line(float(i), line=i % 4, payload=PAYLOADS[i % 8])
            osiris.persist_line(float(i), line=i % 4, payload=PAYLOADS[i % 8])
        assert (
            osiris.stats.get("wq", "counter_appends")
            < wt.stats.get("wq", "counter_appends")
        )

    def test_recovery_repairs_stale_counters(self):
        sys = make_system(Scheme.OSIRIS)
        # 6 updates to line 0: counters persisted at updates 4; the last
        # 2 bumps are lost with the cache on a crash.
        for i in range(6):
            sys.persist_line(float(i), line=0, payload=PAYLOADS[i])
        image = sys.crash()
        recovery = OsirisRecovery(image)
        report = recovery.recover()
        assert report.failed_lines == []
        assert report.repaired_lines >= 1
        assert recovery.plaintext_of(0, report) == PAYLOADS[5]

    def test_clean_counters_need_one_trial(self):
        sys = make_system(Scheme.OSIRIS)
        for i in range(4):  # exactly one stop-loss period
            sys.persist_line(float(i), line=0, payload=PAYLOADS[i])
        image = sys.crash()
        report = OsirisRecovery(image).recover()
        assert report.failed_lines == []
        assert report.counters  # line 0 recovered
        assert OsirisRecovery(image).plaintext_of(0, report) == PAYLOADS[3]

    def test_recovery_work_scales_with_written_lines(self):
        """The paper's Section 6 claim: recovery time grows with memory."""
        trials = []
        for n_lines in (8, 32):
            sys = make_system(Scheme.OSIRIS)
            for i in range(n_lines):
                sys.persist_line(float(i), line=i, payload=PAYLOADS[i % 8])
            report = OsirisRecovery(sys.crash()).recover()
            assert report.failed_lines == []
            trials.append(report.trial_decryptions)
        assert trials[1] > 3 * trials[0]

    def test_supermem_needs_no_counter_recovery(self):
        """Contrast: strict persistence recovers counters for free."""
        sys = make_system(Scheme.SUPERMEM)
        for i in range(8):
            sys.persist_line(float(i), line=i, payload=PAYLOADS[i])
        recovered = RecoveredSystem(sys.crash())
        for i in range(8):
            assert recovered.plaintext_of(i) == PAYLOADS[i]

    def test_recovery_rejects_non_osiris_image(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=PAYLOADS[0])
        with pytest.raises(SimulationError):
            OsirisRecovery(sys.crash())
