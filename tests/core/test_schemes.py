"""Tests for scheme assembly."""

import pytest

from repro.common.config import (
    CounterCacheMode,
    CounterPlacementPolicy,
    MemoryConfig,
    SimConfig,
)
from repro.core.schemes import EVALUATED_SCHEMES, Scheme, scheme_config


def test_all_evaluated_schemes_present():
    assert len(EVALUATED_SCHEMES) == 7
    assert EVALUATED_SCHEMES[0] is Scheme.UNSEC
    assert EVALUATED_SCHEMES[-1] is Scheme.SUPERMEM_BMT
    assert EVALUATED_SCHEMES[-2] is Scheme.SUPERMEM


def test_labels_match_paper():
    assert Scheme.UNSEC.label == "Unsec"
    assert Scheme.WB_IDEAL.label == "WB"
    assert Scheme.WT_BASE.label == "WT"
    assert Scheme.WT_CWC.label == "WT+CWC"
    assert Scheme.WT_XBANK.label == "WT+XBank"
    assert Scheme.SUPERMEM.label == "SuperMem"
    assert Scheme.SUPERMEM_BMT.label == "SuperMem+BMT"


def test_unsec_disables_encryption():
    cfg = scheme_config(Scheme.UNSEC)
    assert cfg.encrypted is False
    assert cfg.cwc_enabled is False


def test_wb_ideal_is_battery_backed_write_back():
    cfg = scheme_config(Scheme.WB_IDEAL)
    assert cfg.encrypted
    assert cfg.counter_cache.mode is CounterCacheMode.WRITE_BACK
    assert cfg.counter_cache.battery_backed is True
    assert cfg.counter_placement is CounterPlacementPolicy.SINGLE_BANK
    assert cfg.cwc_enabled is False


def test_wt_base_is_write_through_single_bank():
    cfg = scheme_config(Scheme.WT_BASE)
    assert cfg.counter_cache.mode is CounterCacheMode.WRITE_THROUGH
    assert cfg.counter_cache.battery_backed is False
    assert cfg.counter_placement is CounterPlacementPolicy.SINGLE_BANK
    assert cfg.cwc_enabled is False


def test_wt_cwc_adds_coalescing_only():
    cfg = scheme_config(Scheme.WT_CWC)
    assert cfg.cwc_enabled is True
    assert cfg.counter_placement is CounterPlacementPolicy.SINGLE_BANK


def test_wt_xbank_adds_placement_only():
    cfg = scheme_config(Scheme.WT_XBANK)
    assert cfg.cwc_enabled is False
    assert cfg.counter_placement is CounterPlacementPolicy.XBANK


def test_supermem_combines_both():
    cfg = scheme_config(Scheme.SUPERMEM)
    assert cfg.cwc_enabled is True
    assert cfg.counter_placement is CounterPlacementPolicy.XBANK
    assert cfg.counter_cache.mode is CounterCacheMode.WRITE_THROUGH


def test_supermem_bmt_is_supermem_plus_tree():
    cfg = scheme_config(Scheme.SUPERMEM_BMT)
    base = scheme_config(Scheme.SUPERMEM)
    assert cfg.integrity_tree is True
    assert base.integrity_tree is False
    # Everything else matches plain SuperMem: the scheme is strictly
    # additive.
    assert cfg.cwc_enabled is True
    assert cfg.counter_placement is CounterPlacementPolicy.XBANK
    assert cfg.counter_cache.mode is CounterCacheMode.WRITE_THROUGH


def test_base_geometry_is_preserved():
    base = SimConfig(memory=MemoryConfig(capacity=16 << 20, write_queue_entries=64))
    for scheme in EVALUATED_SCHEMES:
        cfg = scheme_config(scheme, base)
        assert cfg.memory.capacity == 16 << 20
        assert cfg.memory.write_queue_entries == 64


def test_counter_cache_geometry_preserved():
    base = SimConfig()
    for scheme in EVALUATED_SCHEMES[1:]:
        cfg = scheme_config(scheme, base)
        assert cfg.counter_cache.size == base.counter_cache.size
        assert cfg.counter_cache.assoc == base.counter_cache.assoc
