"""Tests for the SecureMemorySystem write and read paths."""

import pytest

from repro.common.address import LINES_PER_PAGE
from repro.common.config import MemoryConfig, SimConfig
from repro.common.errors import SimulationError
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import CounterStore, SecureMemorySystem

LINE_BYTES = bytes(range(64))


def make_system(scheme=Scheme.SUPERMEM, functional=True, **mem_kwargs):
    mem_kwargs.setdefault("capacity", 8 << 20)
    mem_kwargs.setdefault("write_queue_entries", 32)
    base = SimConfig(memory=MemoryConfig(**mem_kwargs), functional=functional)
    import dataclasses

    cfg = dataclasses.replace(scheme_config(scheme, base), functional=functional)
    return SecureMemorySystem(cfg)


class TestCounterStore:
    def test_split_geometry(self):
        store = CounterStore("split")
        assert store.lines_per_block == 64
        assert store.block_key_of_line(65) == 1
        assert store.slot_of_line(65) == 1

    def test_monolithic_geometry(self):
        store = CounterStore("monolithic")
        assert store.lines_per_block == 8
        assert store.block_key_of_line(9) == 1

    def test_bump_advances_counter(self):
        store = CounterStore("split")
        before = store.counter_of_line(10)
        key, slot, overflow = store.bump(10)
        assert overflow is False
        assert store.counter_of_line(10) == before + 1

    def test_overflow_after_127_bumps(self):
        store = CounterStore("split")
        for _ in range(127):
            _, _, overflow = store.bump(0)
            assert overflow is False
        _, _, overflow = store.bump(0)
        assert overflow is True

    def test_unknown_organization_rejected(self):
        with pytest.raises(SimulationError):
            CounterStore("quantum")

    def test_serialize_roundtrip(self):
        store = CounterStore("split")
        store.bump(3)
        image = store.serialize_block(0)
        other = CounterStore("split")
        other.load_block(0, image)
        assert other.counter_of_line(3) == store.counter_of_line(3)


class TestUnsecWritePath:
    def test_no_counter_traffic(self):
        sys = make_system(Scheme.UNSEC)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        sys.drain()
        assert sys.stats.get("wq", "counter_appends") == 0
        assert sys.stats.get("wq", "data_appends") == 1

    def test_payload_stored_in_clear(self):
        sys = make_system(Scheme.UNSEC)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        sys.drain()
        assert sys.controller.nvm.read_line(0) == LINE_BYTES


class TestWriteThroughPath:
    def test_each_write_appends_pair(self):
        sys = make_system(Scheme.WT_BASE)
        for i in range(4):
            sys.persist_line(0.0, line=i, payload=LINE_BYTES)
        assert sys.stats.get("wq", "data_appends") == 4
        assert sys.stats.get("wq", "counter_appends") == 4
        assert sys.stats.get("wq", "pair_appends") == 4

    def test_payload_is_encrypted_in_nvm(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        sys.drain()
        stored = sys.controller.nvm.read_line(0)
        assert stored != LINE_BYTES

    def test_functional_read_roundtrip(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        result = sys.read_line(100.0, line=0)
        assert result.payload == LINE_BYTES

    def test_rewrite_uses_fresh_counter(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        first = sys.controller.read_payload(0)
        sys.persist_line(1000.0, line=0, payload=LINE_BYTES)
        second = sys.controller.read_payload(0)
        assert first != second  # same plaintext, different pad

    def test_never_written_line_reads_zero(self):
        sys = make_system(Scheme.SUPERMEM)
        result = sys.read_line(0.0, line=100)
        assert result.payload == bytes(64)

    def test_counter_writes_go_to_xbank(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)  # page 0, bank 0
        counter_entries = [e for e in sys.controller.wq if e.is_counter]
        issued_ok = sys.stats.get("wq", "counter_appends") == 1
        assert issued_ok
        if counter_entries:  # may have drained already
            assert counter_entries[0].bank == 4

    def test_counter_writes_single_bank_for_wt_base(self):
        sys = make_system(Scheme.WT_BASE, write_queue_entries=64)
        for page in range(3):
            sys.persist_line(0.0, line=page * LINES_PER_PAGE, payload=LINE_BYTES)
        banks = {e.bank for e in sys.controller.wq if e.is_counter}
        assert banks <= {7}

    def test_cwc_reduces_counter_appends_in_queue(self):
        sys = make_system(Scheme.SUPERMEM, write_queue_entries=64)
        # 8 lines of the same page: 8 counter appends, 7 coalesced
        for i in range(8):
            sys.persist_line(0.0, line=i, payload=LINE_BYTES)
        assert sys.stats.get("wq", "cwc_coalesced") >= 6
        counter_entries = [e for e in sys.controller.wq if e.is_counter]
        assert len(counter_entries) <= 2

    def test_timing_only_mode_stores_no_payloads(self):
        sys = make_system(Scheme.SUPERMEM, functional=False)
        sys.persist_line(0.0, line=0)
        sys.drain()
        assert not sys.controller.nvm.contains(0)
        assert sys.controller.nvm.wear_of(0) == 1


class TestWriteBackPath:
    def test_data_only_appends(self):
        sys = make_system(Scheme.WB_IDEAL)
        for i in range(4):
            sys.persist_line(0.0, line=i, payload=LINE_BYTES)
        assert sys.stats.get("wq", "data_appends") == 4
        assert sys.stats.get("wq", "counter_appends") == 0

    def test_functional_roundtrip(self):
        sys = make_system(Scheme.WB_IDEAL)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        result = sys.read_line(100.0, line=0)
        assert result.payload == LINE_BYTES

    def test_dirty_eviction_emits_counter_write(self):
        # Counter cache with 2 lines only: third distinct page evicts.
        import dataclasses

        from repro.common.config import CounterCacheConfig, CounterCacheMode

        base = SimConfig(
            memory=MemoryConfig(capacity=8 << 20),
            counter_cache=CounterCacheConfig(
                size=2 * 64,
                assoc=2,
                latency_cycles=8,
                mode=CounterCacheMode.WRITE_BACK,
                battery_backed=True,
            ),
        )
        sys = SecureMemorySystem(base)
        for page in range(3):
            sys.persist_line(0.0, line=page * LINES_PER_PAGE, payload=LINE_BYTES)
        assert sys.stats.get("wq", "counter_appends") == 1


class TestReadPath:
    def test_counter_cache_hit_after_write(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        result = sys.read_line(10_000.0, line=1)  # same page counter
        assert result.counter_cache_hit is True

    def test_counter_cache_miss_on_cold_page(self):
        sys = make_system(Scheme.SUPERMEM)
        result = sys.read_line(0.0, line=0)
        assert result.counter_cache_hit is False

    def test_miss_costs_more_than_hit(self):
        sys = make_system(Scheme.SUPERMEM)
        cold = sys.read_line(0.0, line=0)
        cold_latency = cold.finish_time - 0.0
        warm = sys.read_line(10_000.0, line=2)
        warm_latency = warm.finish_time - 10_000.0
        assert warm_latency < cold_latency

    def test_unsec_read_has_no_counter_machinery(self):
        sys = make_system(Scheme.UNSEC)
        sys.read_line(0.0, line=0)
        assert sys.stats.get("cc", "accesses") == 0


class TestLifecycle:
    def test_use_after_crash_raises(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        sys.crash()
        with pytest.raises(SimulationError):
            sys.persist_line(1.0, line=1, payload=LINE_BYTES)

    def test_orderly_shutdown_persists_wb_counters(self):
        sys = make_system(Scheme.WB_IDEAL)
        sys.persist_line(0.0, line=0, payload=LINE_BYTES)
        image = sys.orderly_shutdown()
        ctr_line = sys.amap.n_lines + 0
        assert ctr_line in image.nvm
