"""Edge-path tests for SecureMemorySystem not covered elsewhere."""

import dataclasses

import pytest

from repro.common.config import (
    CounterCacheConfig,
    CounterCacheMode,
    MemoryConfig,
    SimConfig,
)
from repro.core.recovery import RecoveredSystem
from repro.core.schemes import Scheme, scheme_config
from repro.core.system import SecureMemorySystem

PAYLOAD = bytes([0x77]) * 64


def make_system(scheme=Scheme.SUPERMEM, **overrides):
    base = SimConfig(memory=MemoryConfig(capacity=8 << 20))
    cfg = dataclasses.replace(scheme_config(scheme, base), **overrides)
    return SecureMemorySystem(cfg)


class TestCheckpointCounters:
    def test_noop_for_write_through(self):
        sys = make_system(Scheme.SUPERMEM)
        sys.persist_line(0.0, 0, payload=PAYLOAD)
        assert sys.checkpoint_counters() == 0

    def test_persists_dirty_counters_in_wb(self):
        base = SimConfig(
            memory=MemoryConfig(capacity=8 << 20),
            counter_cache=CounterCacheConfig(
                size=256 << 10,
                assoc=8,
                latency_cycles=8,
                mode=CounterCacheMode.WRITE_BACK,
                battery_backed=False,
            ),
        )
        sys = SecureMemorySystem(base)
        sys.persist_line(0.0, 0, payload=PAYLOAD)
        assert sys.checkpoint_counters() == 1
        # After the checkpoint, a crash is safe even without a battery.
        recovered = RecoveredSystem(sys.crash())
        assert recovered.plaintext_of(0) == PAYLOAD


class TestReadPathDetails:
    def test_read_forwarded_from_wq_functionally(self):
        sys = make_system()
        # Saturate bank 0 so the write stays queued, then read it back.
        for i in range(6):
            sys.persist_line(0.0, i, payload=bytes([i + 1]) * 64)
        result = sys.read_line(0.0, 5)
        assert result.payload == bytes([6]) * 64

    def test_read_after_drain_still_decrypts(self):
        sys = make_system()
        sys.persist_line(0.0, 0, payload=PAYLOAD)
        sys.drain()
        assert sys.read_line(10**6, 0).payload == PAYLOAD

    def test_wb_read_miss_evicting_dirty_counter_writes_back(self):
        base = SimConfig(
            memory=MemoryConfig(capacity=8 << 20),
            counter_cache=CounterCacheConfig(
                size=2 * 64,  # 2 lines: tiny, forces eviction
                assoc=2,
                latency_cycles=8,
                mode=CounterCacheMode.WRITE_BACK,
                battery_backed=True,
            ),
        )
        sys = SecureMemorySystem(base)
        # Dirty two counter lines (pages 0 and 2 -> same set).
        sys.persist_line(0.0, 0 * 64, payload=PAYLOAD)
        sys.persist_line(1.0, 2 * 64, payload=PAYLOAD)
        before = sys.stats.get("wq", "counter_appends")
        # Read from page 4: fills the set, evicting a dirty counter line.
        sys.read_line(100.0, 4 * 64)
        assert sys.stats.get("wq", "counter_appends") == before + 1


class TestMonolithicEndToEnd:
    def test_functional_roundtrip(self):
        base = scheme_config(
            Scheme.SUPERMEM, SimConfig(memory=MemoryConfig(capacity=8 << 20))
        )
        sys = SecureMemorySystem(base, counter_organization="monolithic")
        for i in range(20):
            sys.persist_line(float(i), i, payload=bytes([i + 1]) * 64)
        for i in range(20):
            assert sys.read_line(10**6, i).payload == bytes([i + 1]) * 64

    def test_no_overflow_ever(self):
        base = scheme_config(
            Scheme.SUPERMEM, SimConfig(memory=MemoryConfig(capacity=8 << 20))
        )
        sys = SecureMemorySystem(base, counter_organization="monolithic")
        for i in range(200):
            sys.persist_line(float(i), 0, payload=PAYLOAD)
        assert sys.stats.get("secmem", "page_reencryptions") == 0

    def test_reencryption_rejected(self):
        from repro.common.errors import SimulationError

        base = scheme_config(
            Scheme.SUPERMEM, SimConfig(memory=MemoryConfig(capacity=8 << 20))
        )
        sys = SecureMemorySystem(base, counter_organization="monolithic")
        with pytest.raises(SimulationError):
            sys.reencrypt_page(0.0, 0)


class TestReencryptionUnderWriteBack:
    def test_wb_overflow_reencrypts_and_reads_back(self):
        sys = make_system(Scheme.WB_IDEAL)
        sys.persist_line(0.0, 1, payload=PAYLOAD)
        for i in range(128):
            sys.persist_line(float(i), 0, payload=PAYLOAD)
        assert sys.stats.get("secmem", "page_reencryptions") == 1
        assert sys.read_line(10**6, 0).payload == PAYLOAD
        assert sys.read_line(10**6, 1).payload == PAYLOAD


class TestStatsHygiene:
    def test_unsec_never_touches_crypto_stats(self):
        sys = make_system(Scheme.UNSEC)
        sys.persist_line(0.0, 0, payload=PAYLOAD)
        sys.read_line(10.0, 0)
        assert sys.stats.get("cc", "accesses") == 0
        assert sys.stats.get("secmem", "counter_fetches") == 0

    def test_counter_fetch_counted_once_per_miss(self):
        sys = make_system()
        sys.persist_line(0.0, 0, payload=PAYLOAD)  # miss: fetch
        sys.persist_line(1.0, 1, payload=PAYLOAD)  # same page: hit
        assert sys.stats.get("secmem", "counter_fetches") == 1
