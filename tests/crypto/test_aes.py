"""AES-128 correctness against FIPS-197 test vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.crypto.aes import AES128


def test_fips197_appendix_b_vector():
    """FIPS-197 Appendix B worked example."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert AES128(key).encrypt_block(plaintext) == expected


def test_fips197_appendix_c_vector():
    """FIPS-197 Appendix C.1 (key 000102...0f)."""
    key = bytes(range(16))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    cipher = AES128(key)
    assert cipher.encrypt_block(plaintext) == expected
    assert cipher.decrypt_block(expected) == plaintext


def test_decrypt_inverts_encrypt():
    cipher = AES128(b"0123456789abcdef")
    block = bytes(range(16))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_different_keys_differ():
    block = bytes(16)
    a = AES128(b"A" * 16).encrypt_block(block)
    b = AES128(b"B" * 16).encrypt_block(block)
    assert a != b


def test_encryption_not_identity():
    cipher = AES128(b"k" * 16)
    block = bytes(16)
    assert cipher.encrypt_block(block) != block


def test_wrong_key_length_rejected():
    with pytest.raises(ConfigError):
        AES128(b"short")
    with pytest.raises(ConfigError):
        AES128(b"x" * 32)


def test_wrong_block_length_rejected():
    cipher = AES128(b"k" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"tiny")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"y" * 17)


@settings(max_examples=25, deadline=None)
@given(
    st.binary(min_size=16, max_size=16),
    st.binary(min_size=16, max_size=16),
)
def test_property_roundtrip(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=16, max_size=16))
def test_property_deterministic(block):
    cipher = AES128(b"deterministickey")
    assert cipher.encrypt_block(block) == cipher.encrypt_block(block)
