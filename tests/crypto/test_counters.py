"""Tests for the split-counter and monolithic counter blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import LINES_PER_PAGE
from repro.crypto.counters import (
    CounterBlock,
    MINOR_COUNTER_MAX,
    MonolithicCounterBlock,
)


def test_block_starts_zeroed():
    block = CounterBlock()
    assert block.major == 0
    assert block.minors == [0] * LINES_PER_PAGE


def test_minor_counter_max_is_7_bits():
    assert MINOR_COUNTER_MAX == 127
    assert CounterBlock().minor_max == 127


def test_bump_increments_minor():
    block = CounterBlock()
    assert block.bump(3) is False
    assert block.minors[3] == 1
    assert block.minors[4] == 0


def test_encryption_counter_combines_major_and_minor():
    block = CounterBlock(major=2)
    block.minors[5] = 9
    assert block.encryption_counter(5) == (2 << 7) | 9


def test_bump_reports_overflow_at_127():
    block = CounterBlock()
    for _ in range(MINOR_COUNTER_MAX):
        assert block.bump(0) is False
    assert block.minors[0] == 127
    assert block.bump(0) is True
    # saturated, not wrapped; counter unchanged until re-encryption
    assert block.minors[0] == 127


def test_start_reencryption_bumps_major_and_keeps_minors():
    """Minors survive the major bump: they are zeroed one at a time as
    their lines are re-encrypted, which is what keeps a mid-re-encryption
    crash recoverable (old major from the RSR + old minors from NVM)."""
    block = CounterBlock(major=4)
    block.minors[0] = 127
    block.minors[1] = 50
    old = block.start_reencryption()
    assert old == 4
    assert block.major == 5
    assert block.minors[0] == 127 and block.minors[1] == 50
    block.reset_minor(0)
    assert block.minors[0] == 0 and block.minors[1] == 50


def test_reencryption_never_reuses_encryption_counter():
    """After re-encryption every line's combined counter must be fresh."""
    block = CounterBlock()
    seen = set()
    for slot in range(LINES_PER_PAGE):
        seen.add(block.encryption_counter(slot))
    # drive slot 0 to overflow
    for _ in range(MINOR_COUNTER_MAX):
        block.bump(0)
        assert block.encryption_counter(0) not in seen
        seen.add(block.encryption_counter(0))
    assert block.bump(0) is True
    block.start_reencryption()
    for slot in range(LINES_PER_PAGE):
        assert block.encryption_counter(slot) not in seen


def test_serialization_fits_one_line():
    block = CounterBlock(major=123456789)
    block.minors = [i % 128 for i in range(LINES_PER_PAGE)]
    image = block.to_bytes()
    assert len(image) == 64


def test_serialization_roundtrip():
    block = CounterBlock(major=(1 << 63) + 7)
    block.minors = [(i * 37) % 128 for i in range(LINES_PER_PAGE)]
    parsed = CounterBlock.from_bytes(block.to_bytes())
    assert parsed.major == block.major
    assert parsed.minors == block.minors


def test_copy_is_independent():
    block = CounterBlock()
    dup = block.copy()
    block.bump(0)
    assert dup.minors[0] == 0


def test_rejects_wrong_minor_count():
    with pytest.raises(Exception):
        CounterBlock(minors=[0] * 10)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.lists(
        st.integers(min_value=0, max_value=127),
        min_size=LINES_PER_PAGE,
        max_size=LINES_PER_PAGE,
    ),
)
def test_property_roundtrip(major, minors):
    block = CounterBlock(major=major, minors=list(minors))
    parsed = CounterBlock.from_bytes(block.to_bytes())
    assert parsed.major == major
    assert parsed.minors == minors


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=LINES_PER_PAGE - 1), max_size=200))
def test_property_counters_monotone_nondecreasing(slots):
    """Bumping never decreases any encryption counter."""
    block = CounterBlock()
    previous = [block.encryption_counter(s) for s in range(LINES_PER_PAGE)]
    for slot in slots:
        if block.bump(slot):
            block.start_reencryption()
        current = [block.encryption_counter(s) for s in range(LINES_PER_PAGE)]
        assert all(c >= p for c, p in zip(current, previous)) or block.minors == [
            0
        ] * LINES_PER_PAGE
        previous = current


class TestMonolithic:
    def test_never_overflows(self):
        block = MonolithicCounterBlock()
        for _ in range(500):
            assert block.bump(0) is False
        assert block.encryption_counter(0) == 500

    def test_eight_counters_per_line(self):
        assert MonolithicCounterBlock.LINES_PER_BLOCK == 8
        assert len(MonolithicCounterBlock().counters) == 8

    def test_serialization_roundtrip(self):
        block = MonolithicCounterBlock(counters=[i * 1000 for i in range(8)])
        parsed = MonolithicCounterBlock.from_bytes(block.to_bytes())
        assert parsed.counters == block.counters
        assert len(block.to_bytes()) == 64

    def test_copy_is_independent(self):
        block = MonolithicCounterBlock()
        dup = block.copy()
        block.bump(1)
        assert dup.counters[1] == 0
