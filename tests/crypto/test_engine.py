"""Tests for the pluggable pad engines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.crypto.engine import AESPadEngine, PRFPadEngine, make_engine


@pytest.fixture(params=["prf", "aes"])
def engine(request):
    key = b"0123456789abcdef" if request.param == "aes" else b"prf-key"
    return make_engine(request.param, key)


def test_pad_length(engine):
    assert len(engine.pad(0, 0)) == CACHE_LINE_SIZE


def test_pad_deterministic(engine):
    assert engine.pad(12, 34) == engine.pad(12, 34)


def test_pad_differs_by_address(engine):
    assert engine.pad(1, 7) != engine.pad(2, 7)


def test_pad_differs_by_counter(engine):
    assert engine.pad(1, 7) != engine.pad(1, 8)


def test_pad_not_trivial(engine):
    pad = engine.pad(5, 5)
    assert pad != bytes(CACHE_LINE_SIZE)
    assert len(set(pad)) > 4  # not a constant fill


def test_make_engine_rejects_unknown():
    with pytest.raises(ConfigError):
        make_engine("rot13", b"key")


def test_aes_engine_needs_16_byte_key():
    with pytest.raises(ConfigError):
        AESPadEngine(b"short")


def test_prf_engine_needs_nonempty_key():
    with pytest.raises(ConfigError):
        PRFPadEngine(b"")


def test_engines_produce_independent_streams():
    """Different keys must give unrelated pads."""
    a = PRFPadEngine(b"key-a").pad(1, 1)
    b = PRFPadEngine(b"key-b").pad(1, 1)
    assert a != b


def test_large_counter_values_supported():
    engine = PRFPadEngine(b"key")
    big = (1 << 62) + 3
    assert engine.pad(0, big) != engine.pad(0, big - 1)


def test_aes_engine_counter_wraps_at_56_bits():
    """The AES seed packs a 56-bit counter; values beyond that alias."""
    engine = AESPadEngine(b"0123456789abcdef")
    assert engine.pad(0, 1 << 56) == engine.pad(0, 0)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=1 << 40),
    st.integers(min_value=0, max_value=1 << 40),
)
def test_property_prf_unique_per_counter(addr, counter):
    engine = PRFPadEngine(b"property-key")
    assert engine.pad(addr, counter) != engine.pad(addr, counter + 1)
