"""Pad-memo correctness: caching must be semantically invisible.

The pad engines memoize ``(line_addr, counter) -> pad`` (bounded FIFO).
Pads are pure functions of the key, so the memo may only ever save
recomputation — these tests pin that down differentially:

* a memo hit returns exactly the recomputed pad (reuse detection);
* a tiny memo under heavy eviction pressure never serves a stale pad
  (every lookup equals an uncached engine over a random access stream);
* batch ``pads()`` equals per-pair ``pad()`` and does not pollute the
  memo;
* ``memo_entries=0`` disables caching; negative sizes are rejected.
"""

import random

import pytest

from repro.common.errors import ConfigError
from repro.crypto.engine import AESPadEngine, PRFPadEngine

KEY = bytes(range(16))

ENGINES = [AESPadEngine, PRFPadEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestMemoTransparency:
    def test_hit_equals_recompute(self, engine_cls):
        warm = engine_cls(KEY)
        cold = engine_cls(KEY, memo_entries=0)
        first = warm.pad(0x40, 7)
        again = warm.pad(0x40, 7)  # memo hit
        assert first == again
        assert again == cold.pad(0x40, 7)

    def test_distinct_inputs_distinct_pads(self, engine_cls):
        engine = engine_cls(KEY)
        assert engine.pad(1, 1) != engine.pad(1, 2)
        assert engine.pad(1, 1) != engine.pad(2, 1)

    def test_tiny_memo_never_stale(self, engine_cls):
        """Eviction-pressure differential against an uncached engine."""
        rng = random.Random(1234)
        tiny = engine_cls(KEY, memo_entries=2)
        uncached = engine_cls(KEY, memo_entries=0)
        # Few distinct keys + tiny memo => constant hits, misses, and
        # FIFO evictions interleaved.
        keys = [(rng.randrange(8), rng.randrange(4)) for _ in range(200)]
        for line, counter in keys:
            assert tiny.pad(line, counter) == uncached.pad(line, counter)
        assert len(tiny._memo) <= 2

    def test_batch_matches_individual(self, engine_cls):
        engine = engine_cls(KEY)
        pairs = [(line, counter) for line in range(5) for counter in range(3)]
        batch = engine.pads(pairs)
        assert batch == [engine_cls(KEY).pad(*pair) for pair in pairs]

    def test_batch_skips_memo(self, engine_cls):
        engine = engine_cls(KEY)
        engine.pads([(9, 9), (10, 10)])
        assert (9, 9) not in engine._memo

    def test_zero_disables_memo(self, engine_cls):
        engine = engine_cls(KEY, memo_entries=0)
        engine.pad(3, 3)
        assert engine._memo == {}

    def test_negative_memo_rejected(self, engine_cls):
        with pytest.raises(ConfigError):
            engine_cls(KEY, memo_entries=-1)


def test_engines_disagree_with_each_other():
    """AES and PRF are different constructions — guard against one
    silently delegating to the other."""
    assert AESPadEngine(KEY).pad(5, 5) != PRFPadEngine(KEY).pad(5, 5)
