"""Tests for the memory-authentication extension (MACs + Merkle tree)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, SecurityError
from repro.crypto.integrity import IntegrityEngine, LineMAC, MerkleCounterTree

CT = bytes(range(64))


class TestLineMAC:
    def test_verify_roundtrip(self):
        mac = LineMAC(b"key")
        tag = mac.compute(5, 7, CT)
        assert mac.verify(5, 7, CT, tag)

    def test_ciphertext_tamper_detected(self):
        mac = LineMAC(b"key")
        tag = mac.compute(5, 7, CT)
        tampered = bytes([CT[0] ^ 1]) + CT[1:]
        assert not mac.verify(5, 7, tampered, tag)

    def test_replay_with_old_counter_detected(self):
        """The MAC binds the counter: replaying stale (ct, mac) fails once
        the counter has advanced."""
        mac = LineMAC(b"key")
        old_tag = mac.compute(5, 7, CT)
        assert not mac.verify(5, 8, CT, old_tag)

    def test_relocation_detected(self):
        mac = LineMAC(b"key")
        tag = mac.compute(5, 7, CT)
        assert not mac.verify(6, 7, CT, tag)

    def test_key_matters(self):
        tag = LineMAC(b"key-a").compute(1, 1, CT)
        assert not LineMAC(b"key-b").verify(1, 1, CT, tag)

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigError):
            LineMAC(b"")


class TestMerkleCounterTree:
    def test_rounds_up_to_power_of_two(self):
        assert MerkleCounterTree(5).n_leaves == 8
        assert MerkleCounterTree(8).n_leaves == 8
        assert MerkleCounterTree(1).n_leaves == 1

    def test_update_changes_root(self):
        tree = MerkleCounterTree(8)
        before = tree.root
        tree.update_leaf(3, b"block-image")
        assert tree.root != before

    def test_same_content_same_root(self):
        a, b = MerkleCounterTree(8), MerkleCounterTree(8)
        for i in range(8):
            a.update_leaf(i, bytes([i]) * 64)
            b.update_leaf(i, bytes([i]) * 64)
        assert a.root == b.root

    def test_audit_path_verifies(self):
        tree = MerkleCounterTree(8)
        image = b"counter-block-3"
        tree.update_leaf(3, image)
        path = tree.audit_path(3)
        assert len(path) == tree.depth
        assert MerkleCounterTree.verify_path(image, path, tree.root)

    def test_audit_path_rejects_tampered_leaf(self):
        tree = MerkleCounterTree(8)
        tree.update_leaf(3, b"honest")
        path = tree.audit_path(3)
        assert not MerkleCounterTree.verify_path(b"forged", path, tree.root)

    def test_invalid_index_rejected(self):
        tree = MerkleCounterTree(4)
        with pytest.raises(ConfigError):
            tree.update_leaf(4, b"x")
        with pytest.raises(ConfigError):
            tree.audit_path(-1)

    def test_zero_leaves_rejected(self):
        with pytest.raises(ConfigError):
            MerkleCounterTree(0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=15),
        st.binary(min_size=1, max_size=64),
    )
    def test_property_every_leaf_verifies_after_updates(self, index, image):
        tree = MerkleCounterTree(16)
        tree.update_leaf(index, image)
        assert MerkleCounterTree.verify_path(
            image, tree.audit_path(index), tree.root
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=100),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 30),
                st.binary(min_size=1, max_size=64),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_property_roundtrip_any_leaf_count(self, n_leaves, writes):
        """update_leaf/audit_path/verify_path round-trip for arbitrary —
        including non-power-of-two — leaf counts: after a random write
        sequence every leaf's *final* image verifies, and no forged image
        does."""
        tree = MerkleCounterTree(n_leaves)
        final = {}
        for raw_index, image in writes:
            index = raw_index % tree.n_leaves
            tree.update_leaf(index, image)
            final[index] = image
        for index, image in final.items():
            path = tree.audit_path(index)
            assert len(path) == tree.depth
            assert MerkleCounterTree.verify_path(image, path, tree.root)
            forged = bytes([image[0] ^ 0x5A]) + image[1:]
            assert not MerkleCounterTree.verify_path(forged, path, tree.root)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=100), st.integers())
    def test_property_out_of_range_index_contract(self, n_leaves, index):
        """Every index outside ``0..n_leaves-1`` (after power-of-two
        rounding) is a ConfigError from both update and audit; every
        index inside is accepted."""
        tree = MerkleCounterTree(n_leaves)
        if 0 <= index < tree.n_leaves:
            tree.update_leaf(index, b"ok")
            assert tree.audit_path(index) is not None
        else:
            with pytest.raises(ConfigError):
                tree.update_leaf(index, b"x")
            with pytest.raises(ConfigError):
                tree.audit_path(index)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 30),
                st.binary(min_size=1, max_size=64),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_property_untouched_sibling_subtree_is_stable(
        self, depth_pow, writes
    ):
        """Updates confined to the left half never move the right
        sibling subtree: re-auditing any untouched right-half leaf is
        read-only (root unchanged) and its path hashes are identical
        before and after the left-half write storm."""
        n_leaves = 1 << depth_pow
        half = n_leaves // 2
        tree = MerkleCounterTree(n_leaves)
        right_paths_before = {
            leaf: tree.audit_path(leaf)[:-1]  # drop the shared top sibling
            for leaf in range(half, n_leaves)
        }
        for raw_index, image in writes:
            tree.update_leaf(raw_index % half, image)  # left half only
        root_after = tree.root
        for leaf in range(half, n_leaves):
            path = tree.audit_path(leaf)
            # Audits are pure reads: the root never moves.
            assert tree.root == root_after
            # Within the untouched right subtree every sibling hash is
            # exactly what it was before the writes; only the topmost
            # sibling (the left subtree's summary) may have changed.
            assert path[:-1] == right_paths_before[leaf]
            # And the never-written leaf still verifies as the
            # empty-block marker under the *new* root.
            assert MerkleCounterTree.verify_path(
                b"empty-counter-block", path, tree.root
            )


class TestIntegrityEngine:
    def test_honest_read_verifies(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        engine.on_write(0, 1, CT, block_key=0, block_image=b"blk")
        engine.verify_read(0, 1, CT)  # no raise

    def test_tampered_read_raises(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        engine.on_write(0, 1, CT)
        with pytest.raises(SecurityError):
            engine.verify_read(0, 1, bytes(64))

    def test_replay_raises(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        engine.on_write(0, 1, CT)
        engine.on_write(0, 2, bytes(reversed(CT)))  # newer version
        with pytest.raises(SecurityError):
            engine.verify_read(0, 1, CT)  # replay of version 1

    def test_unknown_line_raises(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        with pytest.raises(SecurityError):
            engine.verify_read(99, 0, CT)

    def test_counter_block_verification(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        engine.on_write(0, 1, CT, block_key=2, block_image=b"honest-block")
        engine.verify_counter_block(2, b"honest-block")
        with pytest.raises(SecurityError):
            engine.verify_counter_block(2, b"tampered-block")

    def test_work_counters(self):
        engine = IntegrityEngine(n_counter_blocks=16)
        engine.on_write(0, 1, CT, block_key=0, block_image=b"b")
        engine.verify_read(0, 1, CT)
        assert engine.mac_computations == 2
        assert engine.tree_updates == 1
