"""Tests for line-level counter-mode encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import CACHE_LINE_SIZE
from repro.common.errors import SecurityError
from repro.crypto.otp import LineCipher, xor_bytes

LINE = bytes(range(64))


def test_xor_bytes_roundtrip():
    pad = bytes(reversed(range(64)))
    assert xor_bytes(xor_bytes(LINE, pad), pad) == LINE


def test_xor_bytes_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"abc")


@pytest.fixture(params=["prf", "aes"])
def cipher(request):
    return LineCipher(key=b"test-key-0123456", engine_kind=request.param)


def test_encrypt_decrypt_roundtrip(cipher):
    ct = cipher.encrypt(10, 5, LINE)
    assert ct != LINE
    assert cipher.decrypt(10, 5, ct) == LINE


def test_wrong_counter_fails_to_decrypt(cipher):
    """The crash-consistency hazard of Figure 4: stale counter => garbage."""
    ct = cipher.encrypt(10, 5, LINE)
    assert cipher.decrypt(10, 4, ct) != LINE


def test_wrong_address_fails_to_decrypt(cipher):
    ct = cipher.encrypt(10, 5, LINE)
    assert cipher.decrypt(11, 5, ct) != LINE


def test_same_plaintext_different_counters_differ(cipher):
    """Consecutive writes of identical content must produce distinct
    ciphertext (defence against the single-line dictionary attack)."""
    assert cipher.encrypt(1, 1, LINE) != cipher.encrypt(1, 2, LINE)


def test_same_plaintext_different_lines_differ(cipher):
    """Identical content at two addresses must look different (defence
    against the cross-line dictionary attack of Figure 1)."""
    assert cipher.encrypt(1, 1, LINE) != cipher.encrypt(2, 1, LINE)


def test_wrong_line_size_rejected(cipher):
    with pytest.raises(ValueError):
        cipher.encrypt(0, 0, b"short")
    with pytest.raises(ValueError):
        cipher.decrypt(0, 0, b"x" * 65)


def test_pad_reuse_detection():
    cipher = LineCipher(track_pad_reuse=True)
    cipher.encrypt(7, 3, LINE)
    with pytest.raises(SecurityError):
        cipher.encrypt(7, 3, LINE)
    # different counter is fine
    cipher.encrypt(7, 4, LINE)


def test_engines_interoperate_with_selves_only():
    prf = LineCipher(key=b"k1", engine_kind="prf")
    aes = LineCipher(key=b"k1", engine_kind="aes")
    ct = prf.encrypt(0, 0, LINE)
    assert prf.decrypt(0, 0, ct) == LINE
    assert aes.decrypt(0, 0, ct) != LINE


@settings(max_examples=40, deadline=None)
@given(
    st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE),
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_property_roundtrip(data, addr, counter):
    cipher = LineCipher(key=b"prop-key")
    assert cipher.decrypt(addr, counter, cipher.encrypt(addr, counter, data)) == data
